"""Applier throughput: sequential vs threads vs processes executors.

Measures the labeling execution engine (:mod:`repro.labeling.engine`) on a
streamed synthetic candidate set under two LF workloads:

* ``cpu`` — each LF does real computation (iterated blake2b hashing), the
  regime where the ``processes`` backend wins, but only when more than one
  CPU is actually available;
* ``latency`` — each LF call waits a fixed delay before voting, modeling the
  I/O-bound LF suites of production deployments (knowledge-base lookups,
  database queries, external services).  Pool backends overlap the waits, so
  the speedup materializes even on a single core.

Every backend must produce an identical label matrix — the benchmark asserts
it — and the records feed the ``applier_throughput`` section of the
``BENCH_*.json`` snapshot written by ``scripts/run_benchmarks.py``.

``run_applier_throughput`` is importable; the pytest entry point keeps the
speedup assertions conservative because wall-clock ratios on loaded CI boxes
are noisy.
"""

import hashlib
import os
import time

import numpy as np

from repro.datasets.synthetic import stream_synthetic_candidates
from repro.labeling.applier import LFApplier
from repro.labeling.engine import available_workers
from repro.labeling.lf import LabelingFunction


class _HashVoteBody:
    """CPU-bound LF body: iterated hashing, then the precomputed vote."""

    def __init__(self, index: int, rounds: int = 25) -> None:
        self.index = index
        self.rounds = rounds

    def __call__(self, candidate) -> int:
        digest = str(candidate.uid).encode("utf-8")
        for _ in range(self.rounds):
            digest = hashlib.blake2b(digest, digest_size=16).digest()
        return int(candidate.votes[self.index])


class _LatencyVoteBody:
    """Latency-bound LF body: a fixed wait (simulated I/O), then the vote."""

    def __init__(self, index: int, delay_seconds: float = 150e-6) -> None:
        self.index = index
        self.delay_seconds = delay_seconds

    def __call__(self, candidate) -> int:
        time.sleep(self.delay_seconds)
        return int(candidate.votes[self.index])


def _workload_lfs(workload: str, num_lfs: int) -> list[LabelingFunction]:
    body = {"cpu": _HashVoteBody, "latency": _LatencyVoteBody}[workload]
    return [
        LabelingFunction(f"{workload}_lf_{j}", body(j), source_type="synthetic")
        for j in range(num_lfs)
    ]


#: workload -> (num_candidates, num_lfs); sized so the sequential run takes
#: a few hundred milliseconds, enough to dominate pool startup.
DEFAULT_CONFIGS = {
    "cpu": (2000, 20),
    "latency": (700, 10),
}


def run_applier_throughput(
    configs=None, workers: int = 2, chunk_size: int = 64, seed: int = 0
):
    """Time each executor backend on each workload; return one record each.

    All three backends consume a fresh candidate generator (never a
    materialized list) and must emit an identical sparse label matrix.
    """
    configs = dict(DEFAULT_CONFIGS if configs is None else configs)
    records = []
    for workload, (num_candidates, num_lfs) in configs.items():
        lfs = _workload_lfs(workload, num_lfs)

        def stream():
            return stream_synthetic_candidates(
                num_points=num_candidates,
                num_lfs=num_lfs,
                propensity=0.1,
                seed=seed,
            )

        timings: dict[str, float] = {}
        matrices = {}
        for backend in ("sequential", "threads", "processes"):
            applier = LFApplier(
                lfs, chunk_size=chunk_size, backend=backend, num_workers=workers
            )
            start = time.perf_counter()
            matrices[backend] = applier.apply(stream(), sparse=True)
            timings[backend] = time.perf_counter() - start
        identical = all(
            np.array_equal(matrices["sequential"].values, matrices[backend].values)
            for backend in ("threads", "processes")
        )
        records.append(
            {
                "workload": workload,
                "num_candidates": num_candidates,
                "num_lfs": num_lfs,
                "workers": workers,
                "chunk_size": chunk_size,
                "available_cpus": available_workers(),
                "sequential_seconds": timings["sequential"],
                "threads_seconds": timings["threads"],
                "processes_seconds": timings["processes"],
                "threads_speedup": timings["sequential"] / max(timings["threads"], 1e-12),
                "processes_speedup": timings["sequential"] / max(timings["processes"], 1e-12),
                "identical": identical,
            }
        )
    return records


def format_records(records) -> str:
    header = (
        f"{'workload':>9} {'cands':>6} {'LFs':>4} {'workers':>7} {'seq s':>8} "
        f"{'thr s':>8} {'proc s':>8} {'thr x':>6} {'proc x':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['workload']:>9} {r['num_candidates']:>6} {r['num_lfs']:>4} "
            f"{r['workers']:>7} {r['sequential_seconds']:>8.3f} {r['threads_seconds']:>8.3f} "
            f"{r['processes_seconds']:>8.3f} {r['threads_speedup']:>6.2f} "
            f"{r['processes_speedup']:>7.2f}"
        )
    return "\n".join(lines)


def test_applier_throughput(run_once):
    records = run_once(run_applier_throughput)
    print("\n[Applier throughput]\n" + format_records(records))
    by_workload = {record["workload"]: record for record in records}
    for record in records:
        # Hard invariant: every backend emits the same label matrix.
        assert record["identical"]
    # The latency-bound workload shows parallel speedup at >= 2 workers
    # regardless of core count (workers overlap waits, not computation).
    # Wall-clock ratios flake on loaded machines, so the margins are
    # conservative; set REPRO_BENCH_SKIP_SPEEDUP=1 to record numbers without
    # gating on them at all.
    if os.environ.get("REPRO_BENCH_SKIP_SPEEDUP") == "1":
        return
    latency = by_workload["latency"]
    assert latency["threads_speedup"] > 1.05, latency
    assert latency["processes_speedup"] > 1.0, latency
    # CPU-bound speedup needs real cores; only assert when they exist.
    cpu = by_workload["cpu"]
    if cpu["available_cpus"] >= 2:
        assert cpu["processes_speedup"] > 1.05, cpu
