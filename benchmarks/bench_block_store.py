"""Crash-safe block store: mmap replay of durable work vs recomputing it.

The PR-9 BENCH section.  One synthetic streaming text task is run three
ways:

* **recompute** — the plain streaming pipeline, no checkpointing: every
  chunk is labeled + featurized and every end-model epoch trained from
  scratch (the cost a crash used to re-pay in full);
* **checkpointed** — the same run with ``checkpoint_dir`` set: each chunk
  block and end-model epoch is durably persisted as it completes (the
  write-amplification price of crash safety);
* **resume** — a second run over the now-complete store: every chunk
  replays as read-only ``np.memmap`` views and the end model restores from
  the last epoch snapshot, so the pipeline re-derives its result with zero
  LF executions and zero training epochs.

Besides wall-clock the record carries **peak traced memory** for the
recompute and resume paths (``tracemalloc``, which numpy allocations
report into) — replay never materializes candidates, so its peak tracks
the block nnz — and the value-parity deltas the differential crash suite
guarantees at test sizes, re-checked here at benchmark scale: the
checkpointed and resumed runs must match the recompute run bit for bit.

``run_block_store_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``block_store`` section of the ``BENCH_*.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` regression gate
checks.
"""

import tempfile
import time
import tracemalloc

import numpy as np

from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

DEFAULT_NUM_CANDIDATES = 20_000
DEFAULT_NUM_TEST = 2_000
DEFAULT_NUM_LFS = 10
DEFAULT_NUM_FEATURES = 256


def _measure(func):
    """Run ``func`` under tracemalloc; return (result, seconds, peak bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = func()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def run_block_store_benchmark(
    num_candidates: int = DEFAULT_NUM_CANDIDATES,
    num_test: int = DEFAULT_NUM_TEST,
    num_lfs: int = DEFAULT_NUM_LFS,
    num_features: int = DEFAULT_NUM_FEATURES,
    generative_epochs: int = 5,
    discriminative_epochs: int = 5,
    seed: int = 0,
):
    """Time recompute vs checkpointed-fresh vs mmap-replay resume runs."""
    lfs = text_vote_lfs(num_lfs)
    test_gold = stream_text_gold(num_test, seed=seed + 1)

    def make_config(checkpoint_dir=None) -> PipelineConfig:
        return PipelineConfig(
            use_optimizer=False,
            generative_epochs=generative_epochs,
            discriminative_epochs=discriminative_epochs,
            num_features=num_features,
            streaming=True,
            seed=seed,
            checkpoint_dir=checkpoint_dir,
        )

    def run(checkpoint_dir=None):
        pipeline = SnorkelPipeline(lfs=lfs, config=make_config(checkpoint_dir))
        return pipeline.run_streams(
            stream_text_candidates(
                num_points=num_candidates, num_lfs=num_lfs, seed=seed
            ),
            stream_text_candidates(num_points=num_test, num_lfs=num_lfs, seed=seed + 1),
            test_gold,
        )

    with tempfile.TemporaryDirectory() as root:
        recompute, recompute_seconds, recompute_peak = _measure(run)
        checkpointed, checkpointed_seconds, _ = _measure(lambda: run(root))
        resumed, resume_seconds, resume_peak = _measure(lambda: run(root))

    max_prob_diff = float(
        np.abs(recompute.training_probs - resumed.training_probs).max()
    )
    max_weight_diff = float(
        np.abs(
            recompute.discriminative_model.weights
            - resumed.discriminative_model.weights
        ).max()
    )
    checkpointed_prob_diff = float(
        np.abs(recompute.training_probs - checkpointed.training_probs).max()
    )
    return {
        "num_candidates": num_candidates,
        "num_test": num_test,
        "num_lfs": num_lfs,
        "num_features": num_features,
        "discriminative_epochs": discriminative_epochs,
        "recompute_seconds": recompute_seconds,
        "checkpointed_seconds": checkpointed_seconds,
        "resume_seconds": resume_seconds,
        "recompute_peak_mb": recompute_peak / 1e6,
        "resume_peak_mb": resume_peak / 1e6,
        "resume_speedup": recompute_seconds / max(resume_seconds, 1e-12),
        "checkpoint_overhead": checkpointed_seconds / max(recompute_seconds, 1e-12),
        "max_training_prob_diff": max_prob_diff,
        "max_end_model_weight_diff": max_weight_diff,
        "checkpointed_training_prob_diff": checkpointed_prob_diff,
    }


def format_record(record) -> str:
    return (
        f"{record['num_candidates']} candidates x {record['num_lfs']} LFs "
        f"(d={record['num_features']}): recompute "
        f"{record['recompute_seconds']:.2f}s / {record['recompute_peak_mb']:.0f}MB peak, "
        f"checkpointed {record['checkpointed_seconds']:.2f}s "
        f"({record['checkpoint_overhead']:.2f}x), mmap resume "
        f"{record['resume_seconds']:.2f}s / {record['resume_peak_mb']:.0f}MB peak "
        f"({record['resume_speedup']:.1f}x faster); "
        f"max Δprobs {record['max_training_prob_diff']:.2e}, "
        f"max Δweights {record['max_end_model_weight_diff']:.2e}"
    )


def test_block_store_replay_parity(run_once):
    record = run_once(
        run_block_store_benchmark,
        num_candidates=1_500,
        num_test=400,
        discriminative_epochs=4,
    )
    print("\n[Block store] " + format_record(record))
    assert record["max_training_prob_diff"] == 0.0
    assert record["max_end_model_weight_diff"] == 0.0
    assert record["checkpointed_training_prob_diff"] == 0.0
    assert record["resume_seconds"] < record["checkpointed_seconds"]
