"""Out-of-core discriminative stage: streaming vs materialized pipeline runs.

The PR-5 BENCH section.  One synthetic text task (planted vote tokens +
class-indicative features, :func:`repro.datasets.synthetic.
stream_text_candidates`) is run end-to-end twice:

* **materialized** — the default :class:`repro.pipeline.SnorkelPipeline`
  path: candidate lists, a dense ``(m, d)`` feature matrix, in-memory
  end-model training;
* **streaming** — ``PipelineConfig(streaming=True)`` fed by generators: one
  fused apply+featurize engine pass per split, CSR feature blocks, minibatch
  ``fit_stream`` training.  No candidate list, no dense feature matrix.

Besides wall-clock throughput the record carries **peak traced memory** for
each path (``tracemalloc``, which numpy allocations report into) — the
number that motivates the whole subsystem: the materialized peak grows with
``m·d`` while the streaming peak grows with the feature nnz — and the
value-parity deltas (training probs, end-model weights) that the
differential suite guarantees at test sizes, re-checked here at benchmark
scale.

``run_discriminative_streaming_benchmark`` is importable —
``scripts/run_benchmarks.py`` calls it to write the
``discriminative_streaming`` section of the ``BENCH_*.json`` snapshot,
whose ``*_seconds`` metrics the ``--compare`` regression gate checks.  The
default workload is the acceptance-scale 50k-candidate run; CI's
``--compare --quick`` smoke shrinks it.
"""

import time
import tracemalloc

import numpy as np

from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

DEFAULT_NUM_CANDIDATES = 50_000
DEFAULT_NUM_TEST = 5_000
DEFAULT_NUM_LFS = 20
DEFAULT_NUM_FEATURES = 512


def _measure(func):
    """Run ``func`` under tracemalloc; return (result, seconds, peak bytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    result = func()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def run_discriminative_streaming_benchmark(
    num_candidates: int = DEFAULT_NUM_CANDIDATES,
    num_test: int = DEFAULT_NUM_TEST,
    num_lfs: int = DEFAULT_NUM_LFS,
    num_features: int = DEFAULT_NUM_FEATURES,
    generative_epochs: int = 5,
    discriminative_epochs: int = 5,
    seed: int = 0,
):
    """Run the materialized and streaming pipelines on one synthetic task."""
    lfs = text_vote_lfs(num_lfs)
    test_gold = stream_text_gold(num_test, seed=seed + 1)

    def train_stream():
        return stream_text_candidates(
            num_points=num_candidates, num_lfs=num_lfs, seed=seed
        )

    def test_stream():
        return stream_text_candidates(
            num_points=num_test, num_lfs=num_lfs, seed=seed + 1
        )

    def make_config(streaming: bool) -> PipelineConfig:
        return PipelineConfig(
            use_optimizer=False,
            generative_epochs=generative_epochs,
            discriminative_epochs=discriminative_epochs,
            num_features=num_features,
            streaming=streaming,
            seed=seed,
        )

    def run_materialized():
        pipeline = SnorkelPipeline(lfs=lfs, config=make_config(streaming=False))
        # The materialized path needs real lists and TaskDataset plumbing;
        # run_streams accepts lists too, so both paths share the driver and
        # differ exactly in config.streaming — but here we hand the
        # materialized run its lists explicitly to charge it for them.
        from repro.datasets.base import TaskDataset

        task = TaskDataset(
            name="stream-bench",
            candidates={"train": list(train_stream()), "test": list(test_stream())},
            gold={"test": test_gold},
            lfs=lfs,
        )
        return pipeline.run(task)

    def run_streaming():
        pipeline = SnorkelPipeline(lfs=lfs, config=make_config(streaming=True))
        return pipeline.run_streams(train_stream(), test_stream(), test_gold)

    materialized, materialized_seconds, materialized_peak = _measure(run_materialized)
    streaming, streaming_seconds, streaming_peak = _measure(run_streaming)

    max_prob_diff = float(
        np.abs(materialized.training_probs - streaming.training_probs).max()
    )
    max_weight_diff = float(
        np.abs(
            materialized.discriminative_model.weights
            - streaming.discriminative_model.weights
        ).max()
    )
    return {
        "num_candidates": num_candidates,
        "num_test": num_test,
        "num_lfs": num_lfs,
        "num_features": num_features,
        "discriminative_epochs": discriminative_epochs,
        "materialized_seconds": materialized_seconds,
        "streaming_seconds": streaming_seconds,
        "materialized_peak_mb": materialized_peak / 1e6,
        "streaming_peak_mb": streaming_peak / 1e6,
        "peak_memory_ratio": materialized_peak / max(streaming_peak, 1),
        "materialized_candidates_per_second": num_candidates
        / max(materialized_seconds, 1e-12),
        "streaming_candidates_per_second": num_candidates
        / max(streaming_seconds, 1e-12),
        "max_training_prob_diff": max_prob_diff,
        "max_end_model_weight_diff": max_weight_diff,
        "materialized_f1": float(materialized.discriminative_f1),
        "streaming_f1": float(streaming.discriminative_f1),
    }


def format_record(record) -> str:
    return (
        f"{record['num_candidates']} candidates x {record['num_lfs']} LFs "
        f"(d={record['num_features']}): materialized "
        f"{record['materialized_seconds']:.2f}s / {record['materialized_peak_mb']:.0f}MB peak, "
        f"streaming {record['streaming_seconds']:.2f}s / "
        f"{record['streaming_peak_mb']:.0f}MB peak "
        f"({record['peak_memory_ratio']:.1f}x less memory); "
        f"max Δprobs {record['max_training_prob_diff']:.2e}, "
        f"max Δweights {record['max_end_model_weight_diff']:.2e}"
    )


def test_discriminative_streaming_parity(run_once):
    record = run_once(
        run_discriminative_streaming_benchmark,
        num_candidates=1_500,
        num_test=400,
        discriminative_epochs=4,
    )
    print("\n[Discriminative streaming] " + format_record(record))
    assert record["max_training_prob_diff"] == 0.0
    assert record["max_end_model_weight_diff"] < 1e-8
    assert record["streaming_peak_mb"] < record["materialized_peak_mb"]
