"""EM epoch time: binary vs k=4 categorical, dense vs sparse storage.

The k-ary EM estimator reduces both storages to the non-abstain triples and
runs flattened-``bincount`` updates over them, so its per-epoch cost should
sit near the binary sparse path's O(nnz) (plus the O(m·k) softmax) rather
than near the dense O(m·n·k) a per-class scan would cost.  This bench fits
the generative model on identical matrices in both storages for the binary
and the cardinality-4 setting, reports seconds per EM epoch (total fit time
divided by the epochs actually run — the estimator may converge early), and
verifies dense/sparse agreement of the probabilistic labels to 1e-10.

``run_em_epoch_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``em_epoch`` section of the ``BENCH_sparse.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` regression gate
checks.
"""

import time

import numpy as np

from repro.datasets.synthetic import generate_label_matrix, generate_multiclass_label_matrix
from repro.labelmodel.generative import GenerativeModel

#: (label, cardinality, num_points, num_lfs, coverage) per measured setting.
DEFAULT_CONFIGS = (
    ("binary", 2, 20_000, 50, 0.05),
    ("k4", 4, 20_000, 50, 0.05),
)

FIT_EPOCHS = 12


def _epoch_time(label_matrix, epochs: int, seed: int):
    """Fit once; return (model, seconds per EM epoch actually run)."""
    start = time.perf_counter()
    model = GenerativeModel(epochs=epochs, seed=seed).fit(label_matrix)
    elapsed = time.perf_counter() - start
    return model, elapsed / max(model.history.epochs, 1)


def run_em_epoch_benchmark(configs=DEFAULT_CONFIGS, epochs=FIT_EPOCHS, seed=0):
    """Measure per-epoch EM time for every configured (cardinality, storage)."""
    records = []
    for label, cardinality, num_points, num_lfs, coverage in configs:
        if cardinality == 2:
            data = generate_label_matrix(
                num_points=num_points, num_lfs=num_lfs, propensity=coverage, seed=seed
            )
        else:
            data = generate_multiclass_label_matrix(
                num_points=num_points,
                num_lfs=num_lfs,
                cardinality=cardinality,
                propensity=coverage,
                seed=seed,
            )
        dense = data.label_matrix
        sparse = dense.to_sparse()
        dense_model, dense_epoch_seconds = _epoch_time(dense, epochs, seed)
        sparse_model, sparse_epoch_seconds = _epoch_time(sparse, epochs, seed)
        max_prob_diff = float(
            np.abs(
                dense_model.predict_proba(dense) - sparse_model.predict_proba(sparse)
            ).max()
        )
        records.append(
            {
                "label": label,
                "cardinality": cardinality,
                "num_points": num_points,
                "num_lfs": num_lfs,
                "coverage": coverage,
                "nnz": int(sparse.storage.nnz),
                "epochs_run": int(sparse_model.history.epochs),
                "dense_epoch_seconds": dense_epoch_seconds,
                "sparse_epoch_seconds": sparse_epoch_seconds,
                "speedup": dense_epoch_seconds / max(sparse_epoch_seconds, 1e-12),
                "max_prob_diff": max_prob_diff,
            }
        )
    return records


def format_records(records) -> str:
    lines = []
    for record in records:
        lines.append(
            f"{record['label']:>6} (k={record['cardinality']}): "
            f"{record['dense_epoch_seconds'] * 1e3:.2f}ms dense / "
            f"{record['sparse_epoch_seconds'] * 1e3:.2f}ms sparse per epoch "
            f"({record['speedup']:.1f}x), max diff {record['max_prob_diff']:.2e}"
        )
    return "\n".join(lines)


def test_em_epoch_benchmark(run_once):
    records = run_once(run_em_epoch_benchmark)
    print("\n[EM epoch time]\n" + format_records(records))
    assert {record["label"] for record in records} == {"binary", "k4"}
    for record in records:
        assert record["max_prob_diff"] < 1e-10, record
