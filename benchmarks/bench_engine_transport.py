"""Engine chunk transports: threads vs persistent processes (pickle vs shm).

Times LF application of the CDR ``lf_library`` suite (32 real labeling
functions: keyword patterns, regex variants, distant-supervision banks) —
a CPU-bound, GIL-bound workload — under three execution modes at several
chunk sizes:

* ``threads`` — the ``concurrent.futures`` thread pool (the pre-runtime
  parallel baseline; the GIL serializes the LF work);
* ``pickle`` — the persistent worker pool moving chunks/results as pickled
  bytes over each worker's pipe;
* ``shm`` — the same pool moving the bulk bytes through reusable
  ``multiprocessing.shared_memory`` slots, descriptors-only on the pipe.

Every mode must emit a label matrix bit-identical to the sequential
reference — asserted on every measurement, quick or full — and the pool
modes must leave no worker processes or ``/dev/shm`` segments behind after
shutdown.  The records feed the ``engine_transport`` section of the
``BENCH_*.json`` snapshot written by ``scripts/run_benchmarks.py``; the
speedup assertions in the pytest entry point are gated on actually having
more than one core (and on ``REPRO_BENCH_SKIP_SPEEDUP``), because processes
cannot beat threads on a single CPU.
"""

import glob
import os
import time

import numpy as np

from repro.datasets.cdr import build_cdr_task
from repro.datasets.synthetic import stream_relation_candidates
from repro.labeling.applier import LFApplier
from repro.labeling.engine import HAVE_SHM, available_workers
from repro.labeling.engine.runtime import shutdown_pools

DEFAULT_NUM_CANDIDATES = 8_000
CHUNK_SIZES = (64, 512, 4096)


def run_engine_transport_benchmark(
    num_candidates: int = DEFAULT_NUM_CANDIDATES,
    workers: int = 2,
    chunk_sizes=CHUNK_SIZES,
    seed: int = 0,
):
    """Time each mode at each chunk size; one record per chunk size.

    One applier per mode is reused across every chunk size, so the process
    modes attach their spec to the persistent pool exactly once — the
    timings then measure steady-state transport + compute, not worker
    startup (which a per-call pool design would re-pay on every run).
    """
    lfs = build_cdr_task().lfs
    candidates = list(stream_relation_candidates(num_points=num_candidates, seed=seed))
    reference = LFApplier(lfs).apply(candidates)

    modes = {"threads": LFApplier(lfs, backend="threads", num_workers=workers)}
    modes["pickle"] = LFApplier(
        lfs, backend="processes", num_workers=workers, transport="pickle"
    )
    if HAVE_SHM:
        modes["shm"] = LFApplier(
            lfs, backend="processes", num_workers=workers, transport="shm"
        )

    records = []
    for chunk_size in chunk_sizes:
        record = {
            "num_candidates": num_candidates,
            "num_lfs": len(lfs),
            "workers": workers,
            "chunk_size": chunk_size,
            "available_cpus": available_workers(),
            "identical": True,
        }
        for mode, applier in modes.items():
            applier.chunk_size = chunk_size
            start = time.perf_counter()
            matrix = applier.apply(candidates, sparse=True)
            record[f"{mode}_seconds"] = time.perf_counter() - start
            record[f"{mode}_transport_share"] = (
                applier.last_report.transport.transport_fraction
            )
            record["identical"] &= bool(
                np.array_equal(matrix.to_dense().values, reference.values)
            )
        record["shm_vs_threads_speedup"] = record["threads_seconds"] / max(
            record.get("shm_seconds", record["pickle_seconds"]), 1e-12
        )
        record["shm_vs_pickle_speedup"] = record["pickle_seconds"] / max(
            record.get("shm_seconds", record["pickle_seconds"]), 1e-12
        )
        records.append(record)
    return records


def leftover_segments() -> list[str]:
    """Engine shared-memory segments still present in ``/dev/shm``."""
    return glob.glob("/dev/shm/repro-eng-*")


def format_records(records) -> str:
    header = (
        f"{'chunk':>6} {'thr s':>8} {'pkl s':>8} {'shm s':>8} "
        f"{'shm/thr x':>9} {'shm/pkl x':>9} {'shm tx%':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        shm_seconds = r.get("shm_seconds", float("nan"))
        share = r.get("shm_transport_share", float("nan"))
        lines.append(
            f"{r['chunk_size']:>6} {r['threads_seconds']:>8.3f} "
            f"{r['pickle_seconds']:>8.3f} {shm_seconds:>8.3f} "
            f"{r['shm_vs_threads_speedup']:>9.2f} {r['shm_vs_pickle_speedup']:>9.2f} "
            f"{100 * share:>7.1f}%"
        )
    return "\n".join(lines)


def test_engine_transport(run_once):
    records = run_once(run_engine_transport_benchmark)
    print("\n[Engine transport]\n" + format_records(records))
    for record in records:
        # Hard invariant: every mode emits the same label matrix.
        assert record["identical"], record
    # Hard invariant: shutting the pools down leaks nothing — no orphaned
    # shared-memory segments, no surviving worker processes.
    shutdown_pools()
    assert leftover_segments() == []
    import multiprocessing

    workers_alive = [
        p for p in multiprocessing.active_children() if "engine-worker" in p.name
    ]
    assert workers_alive == []
    if os.environ.get("REPRO_BENCH_SKIP_SPEEDUP") == "1":
        return
    if not HAVE_SHM or records[0]["available_cpus"] < 2:
        return
    # The acceptance claim: on a CPU-bound suite, persistent processes with
    # the shm transport beat the GIL-bound thread pool at every chunk size.
    for record in records:
        assert record["shm_vs_threads_speedup"] > 1.0, record
