"""Featurizer throughput: dense vs CSR batch transform (BENCH open item).

Times :meth:`repro.discriminative.featurizers.RelationFeaturizer.transform`
over a synthetic relation corpus in both output modes.  A candidate touches
only a few dozen hash buckets, so the dense path spends most of its time
allocating and writing ``(m, num_features)`` zeros; the ``sparse=True`` path
stores just the touched columns and should win by roughly the fill ratio
while producing exactly the same feature values.

``run_featurizer_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``featurizer_throughput`` section of the
``BENCH_*.json`` snapshot, whose ``*_seconds`` metrics the ``--compare``
regression gate checks.
"""

import time

import numpy as np

from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.discriminative.featurizers import RelationFeaturizer
from repro.utils.rng import ensure_rng

DEFAULT_NUM_CANDIDATES = 1500
DEFAULT_NUM_FEATURES = 2048

#: Small word pool: repeated tokens exercise hash-bucket accumulation.
_VOCAB = [
    "binds", "inhibits", "treats", "causes", "induces", "reduces", "protein",
    "disease", "patient", "dose", "trial", "response", "signal", "cell",
    "tumor", "marker", "acute", "chronic", "severe", "mild", "study", "report",
    "the", "a", "of", "in", "with", "and", "was", "were", "shown", "observed",
]


def build_synthetic_candidates(
    num_candidates: int = DEFAULT_NUM_CANDIDATES, seed: int = 0
) -> list[Candidate]:
    """Generate relation candidates over random cue-word sentences."""
    rng = ensure_rng(seed)
    candidates = []
    for uid in range(num_candidates):
        length = int(rng.integers(8, 24))
        words = [_VOCAB[int(i)] for i in rng.integers(0, len(_VOCAB), size=length)]
        start1 = int(rng.integers(0, length - 4))
        end1 = start1 + 1 + int(rng.integers(0, 2))
        start2 = int(rng.integers(end1, length - 1))
        end2 = min(start2 + 1 + int(rng.integers(0, 2)), length)
        candidates.append(
            Candidate(
                uid=uid,
                span1=SpanView(
                    " ".join(words[start1:end1]), start1, end1, canonical_id=f"e1-{uid % 37}"
                ),
                span2=SpanView(
                    " ".join(words[start2:end2]), start2, end2, canonical_id=f"e2-{uid % 53}"
                ),
                sentence=SentenceView(words=words, text=" ".join(words)),
            )
        )
    return candidates


def run_featurizer_benchmark(
    num_candidates: int = DEFAULT_NUM_CANDIDATES,
    num_features: int = DEFAULT_NUM_FEATURES,
    seed: int = 0,
):
    """Time the dense and sparse batch transforms on one candidate list."""
    candidates = build_synthetic_candidates(num_candidates, seed=seed)
    featurizer = RelationFeaturizer(num_features=num_features).fit()

    start = time.perf_counter()
    dense = featurizer.transform(candidates)
    dense_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sparse = featurizer.transform(candidates, sparse=True)
    sparse_seconds = time.perf_counter() - start

    max_value_diff = float(np.abs(sparse.toarray() - dense).max())
    return {
        "num_candidates": num_candidates,
        "num_features": num_features,
        "output_dim": featurizer.output_dim,
        "nnz": int(sparse.nnz),
        "fill_ratio": float(sparse.nnz / dense.size),
        "dense_transform_seconds": dense_seconds,
        "sparse_transform_seconds": sparse_seconds,
        "dense_candidates_per_second": num_candidates / max(dense_seconds, 1e-12),
        "sparse_candidates_per_second": num_candidates / max(sparse_seconds, 1e-12),
        "max_value_diff": max_value_diff,
    }


def format_record(record) -> str:
    return (
        f"{record['num_candidates']} candidates x {record['output_dim']} features "
        f"(fill {record['fill_ratio']:.1%}): dense {record['dense_transform_seconds']:.3f}s "
        f"({record['dense_candidates_per_second']:.0f}/s), sparse "
        f"{record['sparse_transform_seconds']:.3f}s "
        f"({record['sparse_candidates_per_second']:.0f}/s)"
    )


def test_featurizer_throughput(run_once):
    record = run_once(run_featurizer_benchmark)
    print("\n[Featurizer throughput] " + format_record(record))
    assert record["max_value_diff"] == 0.0
    assert record["fill_ratio"] < 0.2
