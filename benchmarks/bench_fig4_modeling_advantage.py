"""Figure 4: modeling advantage vs number of labeling functions (synthetic)."""

from repro.experiments import fig4_advantage


def test_fig4_modeling_advantage(run_once):
    points = run_once(
        fig4_advantage.run,
        num_points=500,
        lf_counts=(1, 2, 5, 10, 20, 50, 100),
        epochs=8,
    )
    print("\n[Figure 4] modeling advantage vs label density")
    print(fig4_advantage.format_table(points))
    densities = [p.label_density for p in points]
    advantages = [p.optimal_advantage for p in points]
    # Shape check: the advantage peaks in the mid-density regime (not at the extremes).
    peak = advantages.index(max(advantages))
    assert 0 < densities[peak] < max(densities)
    # The optimizer bound upper-bounds the learned advantage at every point.
    assert all(p.optimizer_bound >= p.learned_advantage - 0.05 for p in points)
