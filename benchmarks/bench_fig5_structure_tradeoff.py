"""Figure 5: predictive performance and number of correlations vs threshold."""

from repro.experiments import fig5_structure


def test_fig5_simulation_panel(run_once):
    result = run_once(fig5_structure.run_simulation_panel, epochs=8)
    print("\n[Figure 5, left] " + fig5_structure.format_table(result))
    counts = result.correlation_counts
    assert counts == sorted(counts), "lower thresholds must admit at least as many correlations"
    assert max(counts) > 0


def test_fig5_cdr_panel(run_once):
    result = run_once(fig5_structure.run_task_panel, task_name="cdr", scale=0.1, epochs=8)
    print("\n[Figure 5, middle] " + fig5_structure.format_table(result))
    assert min(result.thresholds) <= result.elbow_threshold <= max(result.thresholds)
