"""Figure 6: advantage and optimizer bound vs number of CDR labeling functions."""

from repro.experiments import fig6_cdr_advantage


def test_fig6_cdr_advantage(run_once):
    points = run_once(fig6_cdr_advantage.run, scale=0.1, subset_sizes=(5, 10, 20, 30), repeats=1)
    print("\n[Figure 6]\n" + fig6_cdr_advantage.format_table(points))
    assert len(points) == 4
    # The optimizer bound stays a (soft) upper bound on the empirical advantage.
    assert all(p.optimizer_bound >= p.empirical_advantage - 0.05 for p in points)
