"""Gibbs kernel throughput: reference per-column loop vs vectorized plan.

Times ``sample_joint`` chains on a crowd-style suite (Table-4 shape: many
low-coverage worker LFs, no modeled correlations) under both sampling
kernels of :class:`repro.labelmodel.gibbs.GibbsSampler`:

* ``reference`` — the exact per-column Python loop, whose per-call numpy
  overhead scales with the number of LF columns;
* ``vectorized`` — the graph-colored fused updates of
  :mod:`repro.labelmodel.kernels` (one ``SamplerPlan`` compile per chain, a
  correlation-free suite collapses to a single color).

Both a short and a long chain are timed, so the snapshot records the total
chain speedup *and* the marginal per-sweep speedup (the difference quotient,
which removes the one-time plan/workspace/materialization cost that CD
amortizes across thousands of minibatches).  The parity fields assert what
the kernels guarantee: bit-identical ``label_posteriors`` (no sampling
involved) and an unchanged abstention pattern.

``run_gibbs_kernels_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``gibbs_kernels`` section of the ``BENCH_*.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` regression gate
checks.
"""

import time

import numpy as np

from repro.datasets.synthetic import generate_label_matrix, generate_multiclass_label_matrix
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.gibbs import GibbsSampler

#: (label, cardinality, num_points, num_lfs, coverage) per measured setting —
#: the ROADMAP's wide crowd-style suite: 20k rows, 200 worker LFs, ~5%
#: coverage, correlation-free.
DEFAULT_CONFIGS = (
    ("binary", 2, 20_000, 200, 0.05),
    ("k4", 4, 20_000, 200, 0.05),
)

#: Chain lengths for the difference-quotient per-sweep timing.
SHORT_SWEEPS = 2
LONG_SWEEPS = 12


def _best_chain_seconds(sampler: GibbsSampler, weights, storage, sweeps, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        sampler.sample_joint(weights, storage, sweeps=sweeps)
        best = min(best, time.perf_counter() - start)
    return best


def run_gibbs_kernels_benchmark(configs=DEFAULT_CONFIGS, repeats: int = 3, seed: int = 0):
    """Time reference vs vectorized chains; returns one record per config."""
    records = []
    for label, cardinality, num_points, num_lfs, coverage in configs:
        if cardinality == 2:
            data = generate_label_matrix(
                num_points=num_points, num_lfs=num_lfs, propensity=coverage, seed=seed
            )
        else:
            data = generate_multiclass_label_matrix(
                num_points=num_points,
                num_lfs=num_lfs,
                cardinality=cardinality,
                propensity=coverage,
                seed=seed,
            )
        storage = data.label_matrix.to_sparse().storage
        spec = FactorGraphSpec(num_lfs, cardinality=cardinality)
        weights = spec.initial_weights()

        timings = {}
        for kernel in ("reference", "vectorized"):
            sampler = GibbsSampler(spec, seed=seed, kernel=kernel)
            timings[kernel, "short"] = _best_chain_seconds(
                sampler, weights, storage, SHORT_SWEEPS, repeats
            )
            timings[kernel, "long"] = _best_chain_seconds(
                sampler, weights, storage, LONG_SWEEPS, repeats
            )

        sweep_delta = LONG_SWEEPS - SHORT_SWEEPS
        reference_sweep = (
            timings["reference", "long"] - timings["reference", "short"]
        ) / sweep_delta
        vectorized_sweep = (
            timings["vectorized", "long"] - timings["vectorized", "short"]
        ) / sweep_delta

        # Parity: the posterior involves no sampling and must be identical
        # under either kernel; a vectorized chain must preserve the pattern.
        posterior_reference = GibbsSampler(spec, seed=seed, kernel="reference").label_posteriors(
            weights, storage
        )
        posterior_vectorized = GibbsSampler(spec, seed=seed, kernel="vectorized").label_posteriors(
            weights, storage
        )
        max_posterior_diff = float(np.abs(posterior_reference - posterior_vectorized).max())
        sampled, _ = GibbsSampler(spec, seed=seed).sample_joint(weights, storage, sweeps=1)
        # Real pattern assertion (the CSR index arrays are shared by
        # construction, so compare the materialized abstention masks).
        pattern_preserved = bool(
            np.array_equal(sampled.to_dense() != 0, storage.to_dense() != 0)
            and bool(np.all(sampled.data != 0))
            and (cardinality == 2 or int(sampled.data.max()) <= cardinality)
        )

        records.append(
            {
                "label": label,
                "cardinality": cardinality,
                "num_points": num_points,
                "num_lfs": num_lfs,
                "coverage": coverage,
                "nnz": int(storage.nnz),
                "long_sweeps": LONG_SWEEPS,
                "reference_joint_seconds": timings["reference", "long"],
                "vectorized_joint_seconds": timings["vectorized", "long"],
                "reference_sweep_seconds": reference_sweep,
                "vectorized_sweep_seconds": vectorized_sweep,
                "joint_speedup": timings["reference", "long"]
                / max(timings["vectorized", "long"], 1e-12),
                "sweep_speedup": reference_sweep / max(vectorized_sweep, 1e-12),
                "max_posterior_diff": max_posterior_diff,
                "pattern_preserved": pattern_preserved,
            }
        )
    return records


def format_records(records) -> str:
    lines = []
    for record in records:
        lines.append(
            f"{record['label']}: {record['num_points']} x {record['num_lfs']} at "
            f"{record['coverage']:.0%}, {record['long_sweeps']} sweeps — "
            f"reference {record['reference_joint_seconds']:.3f}s, "
            f"vectorized {record['vectorized_joint_seconds']:.3f}s "
            f"({record['joint_speedup']:.1f}x chain, "
            f"{record['sweep_speedup']:.1f}x per sweep)"
        )
    return "\n".join(lines)


def test_gibbs_kernels(run_once):
    records = run_once(run_gibbs_kernels_benchmark)
    print("\n[Gibbs kernels]\n" + format_records(records))
    for record in records:
        assert record["max_posterior_diff"] == 0.0, record
        assert record["pattern_preserved"], record
        # The acceptance target is >= 5x; assert a safety-margined bound so
        # CI noise does not flake the suite while real regressions still fail.
        assert record["joint_speedup"] > 3.0, record
        assert record["sweep_speedup"] > 3.0, record
