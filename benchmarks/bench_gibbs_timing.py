"""Gibbs-sampler throughput: dense vs sparse storage (ROADMAP bench item).

Times the two hot entry points of :class:`repro.labelmodel.gibbs.GibbsSampler`
— ``label_posteriors`` and a short ``sample_joint`` chain — on identical
matrices in dense and CSR storage.  At low coverage the sparse path operates
on O(nnz) entries per sweep instead of O(m·n), so it should win by roughly
the inverse coverage.  ``run_gibbs_benchmark`` is importable and feeds the
``gibbs`` section of the ``BENCH_*.json`` snapshot.
"""

import time

import numpy as np

from repro.datasets.synthetic import generate_label_matrix
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.gibbs import GibbsSampler

DEFAULT_CONFIG = (20_000, 50, 0.05)  # (num_points, num_lfs, coverage)


def run_gibbs_benchmark(config=DEFAULT_CONFIG, sweeps: int = 2, seed: int = 0):
    """Time dense vs sparse Gibbs operations on one identical matrix."""
    num_points, num_lfs, coverage = config
    data = generate_label_matrix(
        num_points=num_points, num_lfs=num_lfs, propensity=coverage, seed=seed
    )
    dense = data.label_matrix
    sparse = dense.to_sparse()
    spec = FactorGraphSpec(num_lfs)
    weights = spec.initial_weights()

    start = time.perf_counter()
    dense_posteriors = GibbsSampler(spec, seed=seed).label_posteriors(weights, dense.values)
    dense_posterior_seconds = time.perf_counter() - start
    start = time.perf_counter()
    sparse_posteriors = GibbsSampler(spec, seed=seed).label_posteriors(weights, sparse.storage)
    sparse_posterior_seconds = time.perf_counter() - start
    max_posterior_diff = float(np.abs(dense_posteriors - sparse_posteriors).max())

    start = time.perf_counter()
    GibbsSampler(spec, seed=seed).sample_joint(weights, dense.values, sweeps=sweeps)
    dense_joint_seconds = time.perf_counter() - start
    start = time.perf_counter()
    GibbsSampler(spec, seed=seed).sample_joint(weights, sparse.storage, sweeps=sweeps)
    sparse_joint_seconds = time.perf_counter() - start

    return {
        "num_points": num_points,
        "num_lfs": num_lfs,
        "coverage": coverage,
        "nnz": int(sparse.storage.nnz),
        "sweeps": sweeps,
        "dense_posterior_seconds": dense_posterior_seconds,
        "sparse_posterior_seconds": sparse_posterior_seconds,
        "dense_joint_seconds": dense_joint_seconds,
        "sparse_joint_seconds": sparse_joint_seconds,
        "joint_speedup": dense_joint_seconds / max(sparse_joint_seconds, 1e-12),
        "max_posterior_diff": max_posterior_diff,
    }


def format_record(record) -> str:
    return (
        f"{record['num_points']} x {record['num_lfs']} at {record['coverage']:.0%}: "
        f"posteriors {record['dense_posterior_seconds']:.3f}s dense / "
        f"{record['sparse_posterior_seconds']:.3f}s sparse; "
        f"joint chain {record['dense_joint_seconds']:.3f}s dense / "
        f"{record['sparse_joint_seconds']:.3f}s sparse "
        f"({record['joint_speedup']:.1f}x)"
    )


def test_gibbs_timing(run_once):
    record = run_once(run_gibbs_benchmark)
    print("\n[Gibbs timing] " + format_record(record))
    assert record["max_posterior_diff"] < 1e-10
    assert record["joint_speedup"] > 1.0, record
