"""LF static-analysis overhead: one-time per apply, never per-candidate.

``LFApplier(validate="warn"|"error")`` runs the :mod:`repro.analysis` passes
before the first chunk.  The cost model the subsystem promises is that
analysis is **structural in the LF suite, not in the corpus**: applying the
same validated suite to 10x the candidates performs exactly the same number
of ``analyze_lf`` invocations and parses exactly the same ASTs.  This bench
asserts that claim structurally (equal per-LF analysis counts on a small and
a large corpus — a deterministic property, immune to timing noise) and then
records the wall-clock overhead of validation relative to the apply itself
so the snapshot tracks it shrinking as the corpus grows.

``run_lf_analysis_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``lf_analysis`` section of the ``BENCH_*.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` gate checks.
"""

import time

import repro.analysis as analysis_module
from repro.analysis import analyze_suite
from repro.datasets.synthetic import stream_synthetic_candidates, synthetic_vote_lfs
from repro.labeling.applier import LFApplier

DEFAULT_NUM_LFS = 16
DEFAULT_SMALL_CORPUS = 200
DEFAULT_LARGE_CORPUS = 20_000


def _candidates(num_points: int, num_lfs: int, seed: int = 0) -> list:
    return list(
        stream_synthetic_candidates(
            num_points=num_points, num_lfs=num_lfs, propensity=0.4, seed=seed
        )
    )


def _count_analyze_calls(applier: LFApplier, candidates: list) -> int:
    """Apply with validation while counting ``analyze_lf`` invocations.

    The applier resolves ``analyze_suite`` through the package namespace at
    call time, so wrapping the module attribute observes every validation
    pass without touching the implementation.
    """
    calls = 0
    original = analysis_module.analyze_lf

    def counting_analyze_lf(*args, **kwargs):
        nonlocal calls
        calls += 1
        return original(*args, **kwargs)

    analysis_module.analyze_lf = counting_analyze_lf
    try:
        applier.apply(candidates)
    finally:
        analysis_module.analyze_lf = original
    return calls


def run_lf_analysis_benchmark(
    num_lfs: int = DEFAULT_NUM_LFS,
    small_corpus: int = DEFAULT_SMALL_CORPUS,
    large_corpus: int = DEFAULT_LARGE_CORPUS,
    seed: int = 0,
):
    """Measure analysis amortization over one LF suite and two corpus sizes."""
    lfs = synthetic_vote_lfs(num_lfs)
    small = _candidates(small_corpus, num_lfs, seed=seed)
    large = _candidates(large_corpus, num_lfs, seed=seed)

    # Structural amortization: the analyze-call count depends on the suite,
    # not the corpus.  This is the assertion that matters; the timings below
    # are trend-tracking.
    calls_small = _count_analyze_calls(LFApplier(lfs, validate="warn"), small)
    calls_large = _count_analyze_calls(LFApplier(lfs, validate="warn"), large)

    start = time.perf_counter()
    report = analyze_suite(lfs)
    analyze_suite_seconds = time.perf_counter() - start

    start = time.perf_counter()
    LFApplier(lfs).apply(large)
    apply_plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    LFApplier(lfs, validate="warn").apply(large)
    apply_validated_seconds = time.perf_counter() - start

    return {
        "num_lfs": num_lfs,
        "small_corpus": small_corpus,
        "large_corpus": large_corpus,
        "analyze_calls_small_corpus": calls_small,
        "analyze_calls_large_corpus": calls_large,
        "compilable_count": report.compilable_count,
        "analyze_suite_seconds": analyze_suite_seconds,
        "apply_plain_seconds": apply_plain_seconds,
        "apply_validated_seconds": apply_validated_seconds,
        "validation_overhead_fraction": analyze_suite_seconds
        / max(apply_plain_seconds, 1e-12),
    }


def format_record(record) -> str:
    return (
        f"{record['num_lfs']} LFs ({record['compilable_count']} compilable): "
        f"{record['analyze_calls_small_corpus']} analyze calls @ "
        f"{record['small_corpus']} candidates vs "
        f"{record['analyze_calls_large_corpus']} @ {record['large_corpus']}; "
        f"analysis {record['analyze_suite_seconds']:.3f}s on top of "
        f"{record['apply_plain_seconds']:.3f}s apply "
        f"({record['validation_overhead_fraction']:.1%} overhead)"
    )


def test_lf_analysis_amortized(run_once):
    record = run_once(
        run_lf_analysis_benchmark, small_corpus=100, large_corpus=1_000
    )
    print("\n[LF analysis] " + format_record(record))
    # One analyze_lf call per LF per apply, regardless of corpus size.
    assert record["analyze_calls_small_corpus"] == record["num_lfs"]
    assert record["analyze_calls_large_corpus"] == record["num_lfs"]
    assert record["compilable_count"] == record["num_lfs"]
