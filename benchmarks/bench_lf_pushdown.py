"""Pushdown LF compilation: compiled columnar kernels vs the interpreted loop.

The acceptance claim of the pushdown subsystem: on a realistic
``lf_library``-built suite (the CDR task's 32 labeling functions — keyword
patterns, regex variants, two distant-supervision banks, structural cues)
the compiled kernels deliver **at least 5x** LF-application throughput over
the interpreted sequential path at 20k candidates, while emitting
bit-identical CSR triples — including when an uncompilable LF is planted
into the suite and served by the per-row fallback tier alongside the
compiled columns.

``run_lf_pushdown_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``lf_pushdown`` section of the ``BENCH_*.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` gate checks.  The
parity fields (``max_abs_diff``, ``mixed_max_abs_diff``) are asserted zero
on every measurement, quick or full.
"""

import time

import numpy as np

from repro.datasets.cdr import build_cdr_task
from repro.datasets.synthetic import stream_relation_candidates
from repro.labeling.applier import LFApplier
from repro.labeling.lf import LabelingFunction
from repro.types import ABSTAIN, POSITIVE

DEFAULT_NUM_CANDIDATES = 20_000
#: Full-workload floor asserted by the pytest wrapper (quick runs skip it:
#: compile overhead is amortized over the corpus, so tiny corpora undershoot).
SPEEDUP_FLOOR = 5.0


def _opaque_lf() -> LabelingFunction:
    """A deliberately uncompilable LF (randomness) for the mixed-suite run."""
    import random

    def body(candidate):
        return random.Random(candidate.uid).choice([POSITIVE, ABSTAIN])

    return LabelingFunction("lf_bench_opaque", body)


def _apply(lfs, candidates, pushdown: str):
    applier = LFApplier(lfs, fault_tolerant=True, pushdown=pushdown)
    start = time.perf_counter()
    matrix = applier.apply(candidates)
    return matrix, time.perf_counter() - start, applier.last_report


def run_lf_pushdown_benchmark(
    num_candidates: int = DEFAULT_NUM_CANDIDATES, seed: int = 0
):
    """Interpreted vs compiled apply over the CDR ``lf_library`` suite."""
    lfs = build_cdr_task().lfs
    candidates = list(
        stream_relation_candidates(num_points=num_candidates, seed=seed)
    )

    base_matrix, interpreted_seconds, _ = _apply(lfs, candidates, "off")
    push_matrix, pushdown_seconds, report = _apply(lfs, candidates, "auto")
    max_abs_diff = int(np.abs(base_matrix.values - push_matrix.values).max(initial=0))

    # Mixed tier: plant an uncompilable LF so compiled kernels and the
    # per-row fallback loop fill adjacent columns of the same matrix.
    mixed = lfs + [_opaque_lf()]
    mixed_base, _, _ = _apply(mixed, candidates, "off")
    mixed_push, _, mixed_report = _apply(mixed, candidates, "auto")
    mixed_max_abs_diff = int(
        np.abs(mixed_base.values - mixed_push.values).max(initial=0)
    )

    summary = report.pushdown
    return {
        "num_candidates": num_candidates,
        "num_lfs": len(lfs),
        "compiled_count": len(summary.compiled),
        "fallback_count": len(summary.fallback),
        "mixed_fallback_count": len(mixed_report.pushdown.fallback),
        "compile_seconds": summary.compile_seconds,
        "interpreted_seconds": interpreted_seconds,
        "pushdown_seconds": pushdown_seconds,
        "speedup": interpreted_seconds / max(pushdown_seconds, 1e-12),
        "max_abs_diff": max_abs_diff,
        "mixed_max_abs_diff": mixed_max_abs_diff,
    }


def format_record(record) -> str:
    return (
        f"{record['num_lfs']} LFs ({record['compiled_count']} compiled, "
        f"{record['fallback_count']} fallback) x {record['num_candidates']} "
        f"candidates: interpreted {record['interpreted_seconds']:.3f}s vs "
        f"pushdown {record['pushdown_seconds']:.3f}s "
        f"({record['speedup']:.1f}x, max|diff|={record['max_abs_diff']}, "
        f"mixed max|diff|={record['mixed_max_abs_diff']})"
    )


def test_lf_pushdown_identical_and_faster(run_once):
    record = run_once(run_lf_pushdown_benchmark, num_candidates=20_000)
    print("\n[LF pushdown] " + format_record(record))
    assert record["compiled_count"] == record["num_lfs"]
    assert record["fallback_count"] == 0
    assert record["mixed_fallback_count"] == 1
    assert record["max_abs_diff"] == 0
    assert record["mixed_max_abs_diff"] == 0
    assert record["speedup"] >= SPEEDUP_FLOOR
