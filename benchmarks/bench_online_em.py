"""Online EM folding cost: per-chunk update time vs accumulated rows.

The online estimator's contract is that :meth:`OnlineGenerativeModel.update`
costs O(chunk + n) — one E-pass over the arriving chunk's entries plus an
O(n) M-step — *independent of how many rows have already been folded in*.
A naive implementation that rescans the accumulated matrix would make chunk
``t`` cost O(t·chunk) and the stream quadratic overall.  This bench streams
a fixed-size corpus through ``update`` in equal chunks, times every fold,
and compares the early chunks (almost nothing accumulated) against the late
ones (the full corpus accumulated): the ratio should hover near 1.

It also re-checks the exactness contract on the measured workload: draining
after the stream must match the batch sparse fit bit for bit and the dense
batch fit within 1e-8 on the served posteriors.

``run_online_em_benchmark`` is importable — ``scripts/run_benchmarks.py``
calls it to write the ``online_em`` section of the ``BENCH_sparse.json``
snapshot, whose ``*_seconds`` metrics the ``--compare`` regression gate
checks.
"""

import time

import numpy as np

from repro.datasets.synthetic import generate_label_matrix
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.online import OnlineGenerativeModel

DEFAULT_NUM_POINTS = 40_000
DEFAULT_NUM_LFS = 40
DEFAULT_CHUNK_SIZE = 1_000
FIT_EPOCHS = 10

#: Per-chunk timings jitter (allocator state, cache warmth), and sub-ms
#: means amplify that noise; the flatness gate is deliberately generous —
#: a rescanning implementation fails it by an order of magnitude.
MAX_FLATNESS_RATIO = 5.0
MIN_CHUNK_SECONDS = 1e-4


def run_online_em_benchmark(
    num_points=DEFAULT_NUM_POINTS,
    num_lfs=DEFAULT_NUM_LFS,
    chunk_size=DEFAULT_CHUNK_SIZE,
    epochs=FIT_EPOCHS,
    seed=0,
):
    """Stream one corpus through ``update``; time every fold and the drain."""
    data = generate_label_matrix(
        num_points=num_points, num_lfs=num_lfs, propensity=0.1, seed=seed
    )
    dense = data.label_matrix.values
    online = OnlineGenerativeModel(epochs=epochs, seed=seed)
    chunk_seconds = []
    for start in range(0, num_points, chunk_size):
        chunk = dense[start:start + chunk_size]
        tick = time.perf_counter()
        online.update(chunk)
        chunk_seconds.append(time.perf_counter() - tick)
    quartile = max(1, len(chunk_seconds) // 4)
    early = float(np.mean(chunk_seconds[:quartile]))
    late = float(np.mean(chunk_seconds[-quartile:]))

    tick = time.perf_counter()
    drained = online.drain()
    drain_seconds = time.perf_counter() - tick

    sparse = data.label_matrix.to_sparse()
    tick = time.perf_counter()
    batch = GenerativeModel(epochs=epochs, seed=seed).fit(sparse)
    batch_fit_seconds = time.perf_counter() - tick
    dense_batch = GenerativeModel(epochs=epochs, seed=seed).fit(dense)
    max_weight_diff = float(np.abs(drained.weights - batch.weights).max())
    max_prob_diff = float(
        np.abs(drained.predict_proba(dense) - dense_batch.predict_proba(dense)).max()
    )
    return {
        "num_points": num_points,
        "num_lfs": num_lfs,
        "chunk_size": chunk_size,
        "num_chunks": len(chunk_seconds),
        "nnz": int(sparse.storage.nnz),
        "early_chunk_seconds": early,
        "late_chunk_seconds": late,
        "flatness_ratio": max(late, MIN_CHUNK_SECONDS)
        / max(early, MIN_CHUNK_SECONDS),
        "total_stream_seconds": float(np.sum(chunk_seconds)),
        "drain_seconds": drain_seconds,
        "batch_fit_seconds": batch_fit_seconds,
        "max_weight_diff": max_weight_diff,
        "max_prob_diff": max_prob_diff,
    }


def format_record(record) -> str:
    return (
        f"{record['num_chunks']} chunks of {record['chunk_size']} "
        f"({record['num_points']} rows, {record['num_lfs']} LFs): "
        f"{record['early_chunk_seconds'] * 1e3:.2f}ms early / "
        f"{record['late_chunk_seconds'] * 1e3:.2f}ms late per chunk "
        f"({record['flatness_ratio']:.2f}x), drain "
        f"{record['drain_seconds'] * 1e3:.1f}ms vs batch "
        f"{record['batch_fit_seconds'] * 1e3:.1f}ms, "
        f"weight diff {record['max_weight_diff']:.1e}, "
        f"prob diff {record['max_prob_diff']:.1e}"
    )


def test_online_em_benchmark(run_once):
    record = run_once(run_online_em_benchmark)
    print("\n[online EM folding]\n" + format_record(record))
    assert record["max_weight_diff"] == 0.0, record
    assert record["max_prob_diff"] <= 1e-8, record
    assert record["flatness_ratio"] < MAX_FLATNESS_RATIO, record
