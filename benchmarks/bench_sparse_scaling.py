"""Dense vs sparse label-model scaling: fit time and peak memory.

The generative model's EM estimator does O(m·n) work per epoch on dense
storage but only O(nnz) on the CSR backend.  At the low coverages real LF
suites produce (a few percent), the sparse path should therefore win by
roughly the inverse coverage.  This bench generates identical vote sets in
both storages (same seed, same draws), fits both, verifies the probabilistic
labels agree to 1e-10, and records the time and peak-memory ratio at several
row counts.

``run_scaling`` is importable — ``scripts/run_benchmarks.py`` calls it to
write the ``BENCH_sparse.json`` perf snapshot that future PRs compare
against.
"""

import time
import tracemalloc

import numpy as np

from repro.datasets.synthetic import (
    generate_label_matrix,
    stream_synthetic_candidates,
    synthetic_vote_lfs,
)
from repro.labeling.applier import LFApplier
from repro.labelmodel.generative import GenerativeModel

#: (num_points, num_lfs, coverage) grid; the last entry is the acceptance
#: configuration (50k rows x 100 LFs at 2% coverage).
DEFAULT_CONFIGS = (
    (10_000, 50, 0.02),
    (50_000, 100, 0.02),
)

FIT_EPOCHS = 12


def _timed_fit(label_matrix, epochs: int, seed: int):
    start = time.perf_counter()
    model = GenerativeModel(epochs=epochs, seed=seed).fit(label_matrix)
    return model, time.perf_counter() - start


def _peak_fit_memory(label_matrix, seed: int) -> int:
    """Peak traced allocation of a short fit (peak is epoch-independent)."""
    tracemalloc.start()
    GenerativeModel(epochs=2, seed=seed).fit(label_matrix)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def run_scaling(configs=DEFAULT_CONFIGS, epochs=FIT_EPOCHS, seed=0):
    """Fit dense and sparse storage on identical matrices; return one record each.

    Each record carries the configuration, both fit times (tracemalloc off),
    both peak memories (separate short fits with tracemalloc on), the
    time/memory ratios, and the max absolute difference of the probabilistic
    labels between the two backends.
    """
    records = []
    for num_points, num_lfs, coverage in configs:
        data = generate_label_matrix(
            num_points=num_points,
            num_lfs=num_lfs,
            accuracy=0.75,
            propensity=coverage,
            seed=seed,
        )
        dense = data.label_matrix
        sparse = dense.to_sparse()

        dense_model, dense_seconds = _timed_fit(dense, epochs, seed)
        sparse_model, sparse_seconds = _timed_fit(sparse, epochs, seed)
        max_prob_diff = float(
            np.abs(dense_model.predict_proba(dense) - sparse_model.predict_proba(sparse)).max()
        )
        dense_peak = _peak_fit_memory(dense, seed)
        sparse_peak = _peak_fit_memory(sparse, seed)

        records.append(
            {
                "num_points": num_points,
                "num_lfs": num_lfs,
                "coverage": coverage,
                "nnz": int(sparse.storage.nnz),
                "epochs": epochs,
                "dense_seconds": dense_seconds,
                "sparse_seconds": sparse_seconds,
                "speedup": dense_seconds / max(sparse_seconds, 1e-12),
                "dense_peak_bytes": dense_peak,
                "sparse_peak_bytes": sparse_peak,
                "memory_ratio": dense_peak / max(sparse_peak, 1),
                "max_prob_diff": max_prob_diff,
            }
        )
    return records


def format_records(records) -> str:
    header = (
        f"{'rows':>8} {'LFs':>5} {'cov':>5} {'dense s':>9} {'sparse s':>9} "
        f"{'speedup':>8} {'dense MB':>9} {'sparse MB':>10} {'mem x':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r['num_points']:>8} {r['num_lfs']:>5} {r['coverage']:>5.2f} "
            f"{r['dense_seconds']:>9.3f} {r['sparse_seconds']:>9.3f} {r['speedup']:>8.1f} "
            f"{r['dense_peak_bytes'] / 1e6:>9.1f} {r['sparse_peak_bytes'] / 1e6:>10.1f} "
            f"{r['memory_ratio']:>6.1f}"
        )
    return "\n".join(lines)


def test_parallel_streaming_applier_matches_sequential():
    """The engine's parallel executors reproduce the sequential CSR matrix.

    Exercises the sparse-scaling regime end to end through the streaming
    applier: candidates are generated lazily (never materialized as a list)
    and the sparse accumulation path produces identical matrices under the
    sequential, thread, and process backends.
    """
    num_points, num_lfs, coverage = 3000, 20, 0.02
    lfs = synthetic_vote_lfs(num_lfs)

    def stream():
        return stream_synthetic_candidates(
            num_points=num_points, num_lfs=num_lfs, propensity=coverage, seed=7
        )

    sequential = LFApplier(lfs, chunk_size=256).apply(stream(), sparse=True)
    for backend in ("threads", "processes"):
        applier = LFApplier(lfs, chunk_size=256, backend=backend, num_workers=2)
        parallel = applier.apply(stream(), sparse=True)
        assert parallel.is_sparse
        assert np.array_equal(sequential.values, parallel.values), backend
        assert applier.last_report.num_workers == 2
        assert applier.last_report.num_chunks == -(-num_points // 256)


def test_sparse_scaling(run_once):
    records = run_once(run_scaling)
    print("\n[Sparse scaling]\n" + format_records(records))
    for record in records:
        # Identical probabilistic labels from both storages.
        assert record["max_prob_diff"] < 1e-10
    # Acceptance: >= 3x fit-time improvement at 50k rows x 100 LFs x 2% coverage.
    largest = records[-1]
    assert largest["num_points"] == 50_000
    assert largest["speedup"] >= 3.0, f"sparse speedup only {largest['speedup']:.1f}x"
    assert largest["memory_ratio"] > 1.0
