"""Section 3.2: structure-learning cost vs the number of modeled correlations.

Verifies the qualitative claim that fitting the generative model with the
elbow-point correlation set is substantially cheaper than fitting it with the
full (low-threshold) correlation set, while structure learning itself is a
one-off cost.
"""

import time

from repro.datasets.synthetic import generate_correlated_label_matrix
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.structure import StructureLearner


def test_structure_timing(run_once):
    data = generate_correlated_label_matrix(
        num_points=600, num_independent=8, num_groups=6, group_size=3, seed=0
    )
    learner = run_once(StructureLearner().fit, data.label_matrix)
    few = learner.select(0.2)
    many = learner.select(0.005)
    start = time.perf_counter()
    GenerativeModel(epochs=8).fit(data.label_matrix, correlations=few)
    few_time = time.perf_counter() - start
    start = time.perf_counter()
    GenerativeModel(epochs=8).fit(data.label_matrix, correlations=many)
    many_time = time.perf_counter() - start
    print(f"\n[Structure timing] |C|={len(few)} -> {few_time:.3f}s ; |C|={len(many)} -> {many_time:.3f}s")
    assert len(many) >= len(few)
