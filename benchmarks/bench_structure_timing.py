"""Section 3.2: structure-learning cost vs the number of modeled correlations.

Verifies the qualitative claim that fitting the generative model with the
elbow-point correlation set is substantially cheaper than fitting it with the
full (low-threshold) correlation set, while structure learning itself is a
one-off cost.  ``run_structure_benchmark`` is importable and feeds the
``structure_learning`` section of the ``BENCH_*.json`` snapshot written by
``scripts/run_benchmarks.py``.
"""

import time

from repro.datasets.synthetic import generate_correlated_label_matrix
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.structure import StructureLearner


def run_structure_benchmark(
    num_points: int = 600,
    num_independent: int = 8,
    num_groups: int = 6,
    group_size: int = 3,
    epochs: int = 8,
    seed: int = 0,
):
    """Time structure learning plus model fits with few vs many correlations."""
    data = generate_correlated_label_matrix(
        num_points=num_points,
        num_independent=num_independent,
        num_groups=num_groups,
        group_size=group_size,
        seed=seed,
    )
    start = time.perf_counter()
    learner = StructureLearner().fit(data.label_matrix)
    structure_seconds = time.perf_counter() - start
    few = learner.select(0.2)
    many = learner.select(0.005)
    start = time.perf_counter()
    GenerativeModel(epochs=epochs).fit(data.label_matrix, correlations=few)
    few_seconds = time.perf_counter() - start
    start = time.perf_counter()
    GenerativeModel(epochs=epochs).fit(data.label_matrix, correlations=many)
    many_seconds = time.perf_counter() - start
    return {
        "num_points": num_points,
        "num_lfs": data.label_matrix.num_lfs,
        "epochs": epochs,
        "structure_seconds": structure_seconds,
        "few_correlations": len(few),
        "many_correlations": len(many),
        "few_fit_seconds": few_seconds,
        "many_fit_seconds": many_seconds,
    }


def format_record(record) -> str:
    return (
        f"structure fit {record['structure_seconds']:.3f}s; "
        f"|C|={record['few_correlations']} -> {record['few_fit_seconds']:.3f}s ; "
        f"|C|={record['many_correlations']} -> {record['many_fit_seconds']:.3f}s"
    )


def test_structure_timing(run_once):
    record = run_once(run_structure_benchmark)
    print("\n[Structure timing] " + format_record(record))
    assert record["many_correlations"] >= record["few_correlations"]
