"""Table 1: modeling advantage, optimizer bound, strategy, label density per task."""

from repro.experiments import table1_advantage


def test_table1_advantage(run_once):
    rows = run_once(table1_advantage.run, epochs=8)
    print("\n[Table 1]\n" + table1_advantage.format_table(rows))
    assert len(rows) == len(table1_advantage.DEFAULT_TASKS)
    for row in rows:
        assert row.optimizer_bound >= 0.0
        assert row.strategy in ("MV", "GM")
