"""Table 2: task summary statistics."""

from repro.experiments import table2_stats


def test_table2_task_stats(run_once):
    summaries = run_once(table2_stats.run)
    print("\n[Table 2]\n" + table2_stats.format_table2(summaries))
    names = {summary.name for summary in summaries}
    assert {"chem", "ehr", "cdr", "spouses", "radiology", "crowd"} <= names
