"""Table 3: relation extraction — DS vs Snorkel (gen/disc) vs hand supervision."""

from repro.experiments import table3_relation_extraction


def test_table3_relation_extraction(run_once):
    rows = run_once(
        table3_relation_extraction.run,
        tasks=(("cdr", 0.12), ("spouses", 0.08), ("ehr", 0.006), ("chem", 0.08)),
        generative_epochs=8,
        discriminative_epochs=20,
    )
    print("\n[Table 3]\n" + table3_relation_extraction.format_table(rows))
    # Shape check: on average Snorkel's stages beat the distant-supervision baseline.
    mean_ds = sum(r.distant_supervision.f1 for r in rows) / len(rows)
    mean_disc = sum(r.snorkel_discriminative.f1 for r in rows) / len(rows)
    assert mean_disc >= mean_ds - 0.05
