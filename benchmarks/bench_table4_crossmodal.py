"""Table 4: cross-modal tasks (radiology AUC, crowd accuracy)."""

from repro.experiments import table4_crossmodal


def test_table4_crossmodal(run_once):
    result = run_once(table4_crossmodal.run, radiology_scale=0.06, crowd_scale=0.6, epochs=30)
    print("\n[Table 4]\n" + table4_crossmodal.format_table(result))
    # Snorkel approaches (comes within a reasonable gap of) hand supervision.
    assert result.radiology_snorkel_auc >= result.radiology_hand_auc - 0.15
    assert result.crowd_snorkel_accuracy >= result.crowd_hand_accuracy - 0.15
    assert result.crowd_snorkel_accuracy > 1.0 / 5  # better than chance over 5 classes
