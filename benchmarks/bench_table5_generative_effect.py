"""Table 5: discriminative model on unweighted LF average vs Snorkel labels."""

from repro.experiments import table5_generative_effect


def test_table5_generative_effect(run_once):
    rows = run_once(
        table5_generative_effect.run,
        tasks=(("cdr", 0.12), ("spouses", 0.08)),
        discriminative_epochs=20,
    )
    print("\n[Table 5]\n" + table5_generative_effect.format_table(rows))
    for row in rows:
        assert 0.0 <= row.unweighted_f1 <= 1.0
        assert 0.0 <= row.snorkel_f1 <= 1.0
