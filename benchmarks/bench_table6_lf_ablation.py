"""Table 6: labeling-function type ablation on CDR."""

from repro.experiments import table6_lf_ablation


def test_table6_lf_ablation(run_once):
    rows = run_once(table6_lf_ablation.run, scale=0.12, discriminative_epochs=20)
    print("\n[Table 6]\n" + table6_lf_ablation.format_table(rows))
    assert len(rows) == 3
    assert rows[0].num_lfs < rows[1].num_lfs < rows[2].num_lfs
