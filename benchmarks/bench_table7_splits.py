"""Table 7: candidate counts per split."""

from repro.experiments import table2_stats


def test_table7_split_sizes(run_once):
    summaries = run_once(table2_stats.run)
    print("\n[Table 7]\n" + table2_stats.format_table7(summaries))
    for summary in summaries:
        assert summary.split_sizes.get("train", 0) > summary.split_sizes.get("dev", 0)
        assert summary.split_sizes.get("test", 0) > 0
