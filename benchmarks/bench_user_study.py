"""Figures 7-8: simulated user study vs equal-time hand labeling."""

from repro.datasets import load_task
from repro.userstudy import simulate_user_study
from repro.userstudy.simulate import scores_by_factor


def test_user_study(run_once):
    task = load_task("spouses", scale=0.08, seed=0)
    result = run_once(simulate_user_study, task, num_participants=6, hand_label_budget=2500, seed=0)
    print(
        f"\n[User study] mean Snorkel F1={result.mean_snorkel_f1:.3f} "
        f"mean hand-label F1={result.mean_hand_label_f1:.3f} "
        f"fraction matching/beating={result.fraction_matching_or_beating:.2f}"
    )
    by_python = scores_by_factor(result, "python_experience")
    print("F1 by Python experience:", {k: round(sum(v) / len(v), 3) for k, v in by_python.items()})
    assert len(result.participants) == 6
    assert 0.0 <= result.fraction_matching_or_beating <= 1.0
