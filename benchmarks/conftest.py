"""Benchmark-suite configuration: keep every paper-artifact bench to one round."""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the benched callable exactly once (these are experiment harnesses,
    not micro-benchmarks) and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
