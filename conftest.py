"""Pytest bootstrap: make the in-tree ``src`` layout importable without install.

Offline environments cannot always complete ``pip install -e .`` (the PEP 660
editable path needs the ``wheel`` package); prepending ``src/`` here keeps
``pytest tests/`` and ``pytest benchmarks/`` working either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
