"""CDR relation extraction with the full pipeline and the Algorithm-1 optimizer.

Reproduces the paper's flagship workflow on the synthetic chemical-disease
task: the modeling-strategy optimizer decides between majority vote and the
generative model, structure learning selects correlations at the elbow point,
and the end model is compared against distant supervision.
Run with ``python examples/cdr_relation_extraction.py``.
"""

from repro.baselines import distant_supervision_baseline
from repro.datasets import load_task
from repro.pipeline import PipelineConfig, SnorkelPipeline


def LINT_LFS():
    """The task's LF suite, for ``python -m repro.analysis`` self-linting."""
    return load_task("cdr", scale=0.05, seed=0).lfs


def main() -> None:
    task = load_task("cdr", scale=0.15, seed=0)
    print(f"Task: {task.name} — {len(task.lfs)} LFs, "
          f"{len(task.split_candidates('train'))} training candidates")

    config = PipelineConfig(generative_epochs=10, discriminative_epochs=30, seed=0)
    result = SnorkelPipeline(config=config).run(task)

    strategy = result.strategy
    print(f"\nOptimizer decision: {strategy.strategy} "
          f"(advantage bound A~*={strategy.advantage_bound:.3f}, "
          f"{len(strategy.correlations)} correlations at eps={strategy.correlation_threshold})")
    print(f"Snorkel (generative)     test F1 = {result.generative_f1:.3f}")
    print(f"Snorkel (discriminative) test F1 = {result.discriminative_f1:.3f}")

    distant = distant_supervision_baseline(task, epochs=30)
    print(f"Distant supervision      test F1 = {distant.f1:.3f}")
    print(f"Stage timings: { {k: round(v, 2) for k, v in result.timings.items()} }")


if __name__ == "__main__":
    main()
