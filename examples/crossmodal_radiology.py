"""Cross-modal weak supervision: text-report LFs supervise an image classifier.

The labeling functions read only the synthetic radiology *reports*; the end
model sees only the paired "image" feature vectors (the ResNet substitute) —
the paper's Section 4.1.2 radiology setting.
Run with ``python examples/crossmodal_radiology.py``.
"""


from repro.datasets import load_task
from repro.discriminative.image import ImageFeatureClassifier, extract_image_features
from repro.evaluation import roc_auc
from repro.labeling import LFApplier
from repro.labelmodel import GenerativeModel
from repro.types import POSITIVE


def LINT_LFS():
    """The report-LF suite, for ``python -m repro.analysis`` self-linting."""
    return load_task("radiology", scale=0.05, seed=0).lfs


def main() -> None:
    task = load_task("radiology", scale=0.1, seed=0)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    print(f"{len(train)} training reports, {len(test)} test reports, {len(task.lfs)} report LFs")

    label_matrix = LFApplier(task.lfs).apply(train)
    label_model = GenerativeModel(epochs=10, seed=0).fit(label_matrix)
    soft_labels = label_model.predict_proba(label_matrix)

    image_model = ImageFeatureClassifier(epochs=60, seed=0)
    image_model.fit(extract_image_features(train), soft_labels)
    snorkel_auc = roc_auc(task.split_gold("test"), image_model.predict_proba_candidates(test))

    hand_model = ImageFeatureClassifier(epochs=60, seed=0)
    hand_model.fit(
        extract_image_features(train), (task.split_gold("train") == POSITIVE).astype(float)
    )
    hand_auc = roc_auc(task.split_gold("test"), hand_model.predict_proba_candidates(test))

    print(f"Snorkel-supervised image classifier AUC: {snorkel_auc:.3f}")
    print(f"Hand-supervised   image classifier AUC: {hand_auc:.3f}")


if __name__ == "__main__":
    main()
