"""Crowdsourcing as weak supervision: each crowd worker is a labeling function.

Reproduces the paper's Crowd task: 102 simulated workers grade weather tweets
into five sentiment classes; the Dawid-Skene label model denoises their votes
and a softmax text classifier is trained on the resulting posteriors so it can
classify tweets no worker ever saw.
Run with ``python examples/crowdsourcing_sentiment.py``.
"""

from repro.datasets import load_task
from repro.discriminative.featurizers import HashingVectorizer
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.labeling import LFApplier
from repro.labelmodel.dawid_skene import DawidSkeneModel
from repro.labelmodel.majority import MultiClassMajorityVoter


def main() -> None:
    task = load_task("crowd", scale=1.0, seed=0)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    print(f"{len(train)} training tweets, {len(test)} test tweets, {len(task.lfs)} worker LFs")

    matrix = LFApplier(task.lfs).apply(train)
    label_model = DawidSkeneModel(cardinality=task.cardinality, seed=0).fit(matrix)
    posteriors = label_model.predict_proba()

    mv_accuracy = float(
        (MultiClassMajorityVoter(task.cardinality).predict(matrix) == task.split_gold("train")).mean()
    )
    ds_accuracy = float((label_model.predict() == task.split_gold("train")).mean())
    print(f"Worker-vote aggregation on train: majority vote {mv_accuracy:.3f}, Dawid-Skene {ds_accuracy:.3f}")

    vectorizer = HashingVectorizer(num_features=512, ngram_range=(1, 1))
    end_model = NoiseAwareSoftmaxRegression(num_classes=task.cardinality, epochs=60, seed=0)
    end_model.fit(vectorizer.transform([c.sentence.words for c in train]), posteriors)
    accuracy = end_model.score(
        vectorizer.transform([c.sentence.words for c in test]), task.split_gold("test")
    )
    print(f"Text model accuracy on unseen tweets: {accuracy:.3f}")


if __name__ == "__main__":
    main()
