"""Crowdsourcing as weak supervision: each crowd worker is a labeling function.

Reproduces the paper's Crowd task: 102 simulated workers grade weather tweets
into five sentiment classes; the k-ary *generative* label model (the same
factor-graph model the binary tasks use) denoises their votes and a softmax
text classifier is trained on the resulting posteriors so it can classify
tweets no worker ever saw.  The classic Dawid-Skene estimator is run as a
cross-check baseline.
Run with ``python examples/crowdsourcing_sentiment.py``.
"""

from repro.datasets import load_task
from repro.discriminative.featurizers import HashingVectorizer
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.labeling import LFApplier
from repro.labelmodel import GenerativeModel, MultiClassMajorityVoter
from repro.labelmodel.dawid_skene import DawidSkeneModel


def LINT_LFS():
    """The crowd-worker LF suite, for ``python -m repro.analysis`` self-linting."""
    return load_task("crowd", scale=0.25, seed=0).lfs


def main() -> None:
    task = load_task("crowd", scale=1.0, seed=0)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    print(f"{len(train)} training tweets, {len(test)} test tweets, {len(task.lfs)} worker LFs")

    matrix = LFApplier(task.lfs).apply(train)
    # The task publishes its latent sentiment skew; supplying it as the
    # class balance exercises the known-prior path (omit it and the k-ary EM
    # re-estimates a damped prior vector instead).
    label_model = GenerativeModel(
        epochs=20, class_balance=task.metadata["class_prior"], seed=0
    ).fit(matrix)
    posteriors = label_model.predict_proba(matrix)  # (m, 5) class distributions

    gold_train = task.split_gold("train")
    mv_accuracy = float(
        (MultiClassMajorityVoter(task.cardinality).predict(matrix) == gold_train).mean()
    )
    gm_labels = label_model.predict(matrix)
    gm_accuracy = float((gm_labels == gold_train).mean())
    dawid_skene = DawidSkeneModel(cardinality=task.cardinality, seed=0).fit(matrix)
    ds_labels = dawid_skene.predict()
    ds_accuracy = float((ds_labels == gold_train).mean())
    agreement = float((ds_labels == gm_labels).mean())
    print(
        f"Worker-vote aggregation on train: majority vote {mv_accuracy:.3f}, "
        f"generative model {gm_accuracy:.3f}, Dawid-Skene {ds_accuracy:.3f} "
        f"(GM/DS agreement {agreement:.3f})"
    )

    vectorizer = HashingVectorizer(num_features=512, ngram_range=(1, 1)).fit()
    end_model = NoiseAwareSoftmaxRegression(num_classes=task.cardinality, epochs=60, seed=0)
    end_model.fit(vectorizer.transform([c.sentence.words for c in train]), posteriors)
    accuracy = end_model.score(
        vectorizer.transform([c.sentence.words for c in test]), task.split_gold("test")
    )
    print(f"Text model accuracy on unseen tweets: {accuracy:.3f}")


if __name__ == "__main__":
    main()
