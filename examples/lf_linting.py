"""Static analysis of labeling functions: lints, contracts, and pushdown.

Labeling functions are arbitrary user Python, but the system's guarantees
(deterministic label matrices, backend-identical results, labels inside the
declared cardinality) assume properties nobody checks.  This example walks
the :mod:`repro.analysis` subsystem over a small suite containing both clean
and deliberately broken LFs:

1. ``analyze_lf`` / ``analyze_suite`` — coded diagnostics (``LF1xx`` label
   range, ``LF2xx`` nondeterminism, ``LF3xx`` shared-state mutation,
   ``LF4xx`` I/O, ``LF5xx`` picklability) plus a pushdown-compilability
   verdict per LF,
2. ``LFApplier(validate="error")`` — the apply-time gate that refuses to run
   a suite with ERROR-severity findings,
3. ``observe_lf`` + ``crosscheck`` — the dynamic differential check that
   confirms the static verdicts against actual behavior.

Run with ``python examples/lf_linting.py``; the same checks run from the
command line as ``python -m repro.analysis examples/lf_linting.py``.
"""

import random

from repro.analysis import analyze_suite, crosscheck, observe_lf
from repro.exceptions import LabelingError
from repro.labeling import LFApplier, labeling_function
from repro.labeling.declarative import keyword_lf, pattern_lf
from repro.types import ABSTAIN, NEGATIVE, POSITIVE


# --- a clean, declarative suite: every one of these is pushdown-compilable --
lf_causes = pattern_lf("causes", label=POSITIVE, name="lf_causes")
lf_drugs = keyword_lf(["aspirin", "ibuprofen"], label=NEGATIVE, name="lf_drugs")


@labeling_function(source_type="structure")
def lf_far_apart(x):
    """Arguments separated by many tokens are rarely related."""
    return NEGATIVE if x.token_distance() > 12 else ABSTAIN


# --- deliberately broken LFs the linter must catch --------------------------
_VOTE_COUNTER = {"calls": 0}


@labeling_function()
def lf_counts_globally(x):
    """LF301: mutates module state — diverges across process boundaries."""
    _VOTE_COUNTER["calls"] += 1
    return POSITIVE if _VOTE_COUNTER["calls"] % 2 else ABSTAIN


@labeling_function()
def lf_coin_flip(x):
    """LF201: unseeded randomness — a different Λ on every apply."""
    return POSITIVE if random.random() > 0.5 else ABSTAIN


@labeling_function()
def lf_wrong_range(x):
    """LF101: returns 7, outside the binary label set {-1, 0, +1}."""
    return 7


BROKEN = [lf_counts_globally, lf_coin_flip, lf_wrong_range]
CLEAN = [lf_causes, lf_drugs, lf_far_apart]

#: Only the clean suite is exported for CI self-linting — the broken LFs
#: exist to demonstrate the diagnostics below and *should* fail a lint.
LINT_LFS = list(CLEAN)


def main() -> None:
    # 1. Static analysis: the clean suite produces no diagnostics and every
    # declarative LF compiles to a pushdown shape.
    report = analyze_suite(CLEAN)
    print("clean suite:")
    print(report.format(verbose=True))

    # 2. The broken suite: every planted violation is caught before a single
    # candidate is labeled.
    report = analyze_suite(BROKEN)
    print("\nbroken suite:")
    print(report.format())

    # 3. The apply-time gate refuses to run the broken suite.
    applier = LFApplier(BROKEN, validate="error")
    try:
        applier.apply([])
    except LabelingError as exc:
        first_line = str(exc).splitlines()[0]
        print(f"\nvalidate='error' refused the broken suite: {first_line}")

    # 4. Dynamic cross-check: observed behavior agrees with the static
    # verdicts (the coin-flip LF really is nondeterministic; the clean LFs
    # really are pure).
    candidates = ["aspirin causes headaches", "ibuprofen", "nothing here"]
    for lf in (lf_coin_flip, lf_causes):
        observed = observe_lf(lf, candidates)
        static = analyze_suite([lf]).results[0]
        disagreements = crosscheck(static, observed)
        print(
            f"\n{lf.name}: deterministic={observed.deterministic} "
            f"static codes={sorted(static.codes())} "
            f"crosscheck disagreements={disagreements or 'none'}"
        )


if __name__ == "__main__":
    main()
