"""Online label model: fold a stream, serve posteriors, edit an LF live.

Demonstrates the PR-10 online incremental estimator,
:class:`repro.labelmodel.OnlineGenerativeModel`.  The batch
:class:`GenerativeModel` refits from scratch whenever anything changes; a
long-lived labeling service can't afford that.  The online model instead
maintains the EM *sufficient statistics* — per-LF expected-correct and
vote-count accumulators, the damped class-balance state — so that:

* ``update(chunk)`` folds an arriving chunk at **O(chunk)** cost (one
  E-pass over the chunk plus an O(#LFs) M-step), never rescanning rows
  already accumulated;
* ``serve_posteriors(chunks)`` streams probabilistic labels under a
  monotonically versioned model, auto-draining when the configured
  staleness bound is exceeded;
* ``add_lf`` / ``remove_lf`` rewire the statistics and the modeled
  correlation structure without a full refit;
* ``drain()`` is the exact tier: it refits the accumulated matrix through
  the batch estimator, **bit-identical** to having fit everything at once
  — however the stream was chunked.

This script walks the whole service lifecycle: stream → update → serve →
drain → edit an LF → serve again, verifying the exactness claims along the
way.  The same machinery rides the full pipeline via
``PipelineConfig(online=True)``, with durable statistics in the block
store (``checkpoint_retention="latest_epoch"`` keeps only the newest
snapshot on disk).

Run with::

    PYTHONPATH=src python examples/online_label_model.py
"""

import numpy as np

from repro.datasets.synthetic import generate_label_matrix
from repro.labeling.sparse import SparseLabelMatrix
from repro.labelmodel import GenerativeModel, OnlineGenerativeModel

NUM_POINTS = 6_000
NUM_LFS = 12
CHUNK_SIZE = 500


def main() -> None:
    data = generate_label_matrix(
        num_points=NUM_POINTS,
        num_lfs=NUM_LFS,
        accuracy=[0.9] * 4 + [0.7] * 8,
        propensity=0.3,
        seed=0,
    )
    dense = data.label_matrix.values

    # --- stream → update: fold the corpus chunk by chunk.  A staleness
    # bound of 4 means serving drains (exact-refits) whenever more than 4
    # chunks were folded since the last exact fit.
    online = OnlineGenerativeModel(epochs=20, seed=0, max_staleness=4)
    for start in range(0, NUM_POINTS, CHUNK_SIZE):
        online.update(dense[start:start + CHUNK_SIZE])
    print(f"folded {NUM_POINTS} rows in chunks of {CHUNK_SIZE}: "
          f"version={online.model_version_}, "
          f"{online.updates_since_drain_} updates since last exact fit")

    # --- serve: the first chunk trips the staleness bound, so serving
    # drains first; after that every chunk is scored by the exact model.
    served = list(online.serve_posteriors(
        dense[start:start + CHUNK_SIZE]
        for start in range(0, NUM_POINTS, CHUNK_SIZE)
    ))
    versions = {result.model_version for result in served}
    print(f"served {len(served)} chunks under model version(s) {sorted(versions)}")

    # --- the exactness claim: draining the stream reproduces the batch fit
    # on the full matrix bit for bit.
    drained = online.drain()
    batch = GenerativeModel(epochs=20, seed=0).fit(data.label_matrix.to_sparse())
    assert np.array_equal(drained.weights, batch.weights)
    served_probs = np.concatenate([result.probs for result in served])
    assert np.array_equal(served_probs, batch.predict_proba(dense))
    print("drained model ≡ batch fit (bitwise); served posteriors ≡ batch")
    accuracy = float((np.where(served_probs > 0.5, 1, -1) == data.gold_labels).mean())
    print(f"accuracy of served labels vs gold: {accuracy:.3f}")

    # --- edit an LF live: a new labeling function arrives (here: a noisy
    # copy of the gold labels, voting on 30% of rows).  add_lf splices it
    # into the statistics without touching the accumulated rows' work.
    rng = np.random.default_rng(1)
    votes = np.where(
        rng.random(NUM_POINTS) < 0.3,
        np.where(rng.random(NUM_POINTS) < 0.85, data.gold_labels, -data.gold_labels),
        0,
    )
    column = online.add_lf(votes)
    print(f"\nadded LF at column {column}: version={online.model_version_}")

    # --- serve again: chunks now carry the new LF's column too.  One edit
    # sits within the staleness bound, so this serve uses the warm
    # parameters (the new LF at its prior accuracy); the explicit drain
    # below then estimates it exactly — equal to refitting the grown
    # matrix from scratch.
    grown = np.column_stack([dense, votes])
    [fresh] = list(online.serve_posteriors([grown[:CHUNK_SIZE]]))
    refit = GenerativeModel(epochs=20, seed=0).fit(SparseLabelMatrix.from_dense(grown))
    assert np.array_equal(online.drain().weights, refit.weights)
    learned = online.drain().learned_accuracies()
    print(f"post-edit serve at version {fresh.model_version}; "
          f"new LF's learned accuracy {learned[column]:.3f} "
          f"(drain ≡ full refit, bitwise)")

    # --- and removal: drop the worst LF; the drain again matches a
    # from-scratch fit on the reduced matrix.
    worst = int(np.argmin(learned))
    online.remove_lf(worst)
    reduced = np.delete(grown, worst, axis=1)
    assert np.array_equal(
        online.drain().weights,
        GenerativeModel(epochs=20, seed=0).fit(SparseLabelMatrix.from_dense(reduced)).weights,
    )
    print(f"removed LF {worst}: drain ≡ refit on the reduced matrix (bitwise)")


if __name__ == "__main__":
    main()
