"""Pushdown labeling: compiling LFs to columnar kernels — a walkthrough.

Most real labeling functions are tiny, shape-regular predicates: a regex
over the text between spans, a vocabulary membership test, a threshold on
token distance, an entity-type equality.  Interpreted, each one costs a
Python frame per candidate; the pushdown layer instead **compiles** every
such LF into a vectorized kernel over columnar chunks — candidate fields
extracted into numpy arrays once per chunk, shared by every compiled LF —
while anything the analyzer cannot prove safe falls back, per LF, to the
interpreted loop.  Labels are bit-identical either way; only the clock
changes.

The walkthrough below:

1. builds a mixed suite (library factories plus one deliberately opaque LF),
2. inspects the compiled/fallback partition a ``PushdownPlan`` records,
3. times ``pushdown="off"`` vs ``pushdown="auto"`` and verifies identity,
4. reads the ``ApplyReport.pushdown`` summary and per-LF seconds,
5. shows ``pushdown="require"`` rejecting the suite with named offenders,
6. runs a full pipeline with ``PipelineConfig(lf_pushdown="auto")``.

Run with ``python examples/pushdown_labeling.py``.
"""

import random
import time

import numpy as np

from repro.datasets.lf_library import LINT_LFS as library_suite
from repro.datasets.synthetic import stream_relation_candidates
from repro.exceptions import LabelingError
from repro.labeling import LFApplier, build_plan, labeling_function
from repro.types import ABSTAIN, POSITIVE


@labeling_function()
def lf_opaque_vote(x):
    """Opaque to the compiler (RNG machinery), by design — but seeded per
    candidate, so repeated applies still agree and identity can be checked."""
    return POSITIVE if random.Random(x.uid).random() > 0.95 else ABSTAIN


#: Only the compilable library suite is exported for CI self-linting — the
#: opaque LF exists to demonstrate the fallback tier and *should* fail.
LINT_LFS = library_suite()


def main() -> None:
    suite = library_suite() + [lf_opaque_vote]
    candidates = list(stream_relation_candidates(num_points=8_000, seed=0))

    # 1-2. The plan: which LFs compiled, and why the rest did not.
    plan = build_plan(suite)
    print(f"plan: {len(plan.compiled)} compiled, {len(plan.fallback)} fallback")
    for name, reason in plan.fallback_reasons.items():
        print(f"  fallback {name}: {reason}")

    # 3. Off vs auto: same matrix, different clock.
    interpreted = LFApplier(suite, fault_tolerant=True)
    start = time.perf_counter()
    base = interpreted.apply(candidates)
    interpreted_seconds = time.perf_counter() - start

    compiled = LFApplier(suite, fault_tolerant=True, pushdown="auto")
    start = time.perf_counter()
    push = compiled.apply(candidates)
    pushdown_seconds = time.perf_counter() - start

    assert np.array_equal(base.values, push.values), "labels must be identical"
    print(
        f"\n{len(candidates)} candidates x {len(suite)} LFs: "
        f"interpreted {interpreted_seconds:.3f}s, "
        f"pushdown {pushdown_seconds:.3f}s "
        f"({interpreted_seconds / pushdown_seconds:.1f}x), identical labels"
    )

    # 4. The report: per-LF wall clock plus the pushdown tier summary.
    report = compiled.last_report
    summary = report.pushdown
    print(
        f"\nreport: compile {summary.compile_seconds * 1e3:.1f}ms, "
        f"compiled tier {summary.compiled_seconds:.3f}s, "
        f"fallback tier {summary.fallback_seconds:.3f}s"
    )
    slowest = sorted(report.lf_seconds.items(), key=lambda kv: -kv[1])[:3]
    for name, seconds in slowest:
        tier = "fallback" if name in summary.fallback else "compiled"
        print(f"  {name}: {seconds * 1e3:.1f}ms ({tier})")

    # 5. require-mode: an explicit contract that the whole suite compiles.
    try:
        LFApplier(suite, pushdown="require").apply(candidates[:1])
    except LabelingError as exc:
        print(f"\npushdown='require' refused: {str(exc).splitlines()[0]}")
    LFApplier(library_suite(), pushdown="require").apply(candidates[:100])
    print("pushdown='require' accepted the fully-compilable library suite")

    # 6. The pipeline surface: one config field turns it on end to end.
    from repro.pipeline.snorkel import PipelineConfig

    config = PipelineConfig(lf_pushdown="auto")
    print(f"\nPipelineConfig(lf_pushdown={config.lf_pushdown!r}) wired through")


if __name__ == "__main__":
    main()
