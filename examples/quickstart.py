"""Quickstart: write labeling functions, denoise them, train an end model.

Runs the full Snorkel workflow of the paper's Figure 2 on a small synthetic
chemical-disease corpus: write LFs -> apply them -> fit the generative label
model -> train a noise-aware discriminative model -> evaluate on a held-out
test set.  Run with ``python examples/quickstart.py``.
"""

from repro import GenerativeModel, LFAnalysis, LFApplier, labeling_function
from repro.baselines import hand_supervision_baseline
from repro.datasets import load_task
from repro.discriminative import NoiseAwareLogisticRegression, RelationFeaturizer
from repro.evaluation import BinaryScorer
from repro.types import NEGATIVE, POSITIVE


# ---------------------------------------------------------------------------
# 1. Hand-written labeling functions (paper Example 2.3 style).
# ---------------------------------------------------------------------------
@labeling_function(source_type="pattern")
def lf_causes(x):
    """Vote positive when 'causes' appears between the chemical and disease."""
    return POSITIVE if "causes" in [w.lower() for w in x.words_between()] else None


@labeling_function(source_type="pattern")
def lf_treats(x):
    """Vote negative when treatment language appears between the spans."""
    between = [w.lower() for w in x.words_between()]
    return NEGATIVE if ("treats" in between or "treatment" in between) else None


@labeling_function(source_type="structure")
def lf_far_apart(x):
    """Arguments separated by many tokens are rarely causally related."""
    return NEGATIVE if x.token_distance() > 12 else None


def LINT_LFS():
    """Hand-written LFs plus the task suite, for ``python -m repro.analysis``."""
    return [lf_causes, lf_treats, lf_far_apart] + load_task("cdr", scale=0.05, seed=0).lfs


def main() -> None:
    # 2. Load a small synthetic CDR-style task; take its curated LF suite plus ours.
    task = load_task("cdr", scale=0.08, seed=0)
    lfs = [lf_causes, lf_treats, lf_far_apart] + task.lfs[:12]

    train = task.split_candidates("train")
    test = task.split_candidates("test")

    # 3. Apply the LFs and inspect them.
    applier = LFApplier(lfs)
    label_matrix = applier.apply(train)
    print(LFAnalysis(label_matrix).summary_table(task.split_gold("train")))
    print(f"\nlabel density d_Lambda = {label_matrix.label_density():.2f}")

    # 4. Fit the generative label model (no ground truth used).
    label_model = GenerativeModel(epochs=10, seed=0).fit(label_matrix)
    probabilistic_labels = label_model.predict_proba(label_matrix)

    # 5. Train a noise-aware discriminative model on candidate features.
    featurizer = RelationFeaturizer(num_features=1024).fit()
    end_model = NoiseAwareLogisticRegression(epochs=30, seed=0)
    end_model.fit(featurizer.transform(train), probabilistic_labels)

    # 6. Evaluate on the blind test split and compare against hand supervision.
    scorer = BinaryScorer()
    report = scorer.score_probabilities(
        task.split_gold("test"), end_model.predict_proba(featurizer.transform(test))
    )
    hand = hand_supervision_baseline(task, epochs=30)
    print(
        f"\nSnorkel end model:  P={report.precision:.2f} "
        f"R={report.recall:.2f} F1={report.f1:.2f}"
    )
    print(f"Hand supervision :  F1={hand.f1:.2f}")


if __name__ == "__main__":
    main()
