"""Resumable pipeline: crash mid-run, restart, get the identical answer.

Demonstrates the PR-9 crash-safe block store.  Giving the streaming
pipeline a ``checkpoint_dir`` makes every unit of completed work durable
the moment it finishes:

* each labeled+featurized **chunk** lands in the store as an atomic
  write-then-rename block (checksummed, committed by an fsynced index
  append) before the next chunk starts;
* the label-modeling outcome and every **end-model epoch** snapshot
  (weights, Adam moments, loss history) land the same way.

A killed run therefore restarts from the last durable chunk/epoch: chunks
already in the store replay as read-only ``np.memmap`` views (zero LF
executions, zero featurizer calls), training resumes at the first
unfinished epoch, and the final result is **bit-identical** to a run that
was never interrupted — resumability is a durability feature, never a
numerics change.

This script proves it the hard way, using the deterministic
fault-injection layer the test suite uses
(:mod:`repro.labeling.engine.faults`): a forked child runs the pipeline
with a plan that SIGKILLs the process after the 4th durable block, the
parent verifies the child really died mid-run and inspects the partial
store, then resumes — and the resumed numbers match an uninterrupted
reference bit for bit.  A final run over the now-complete store shows the
replay economics: everything streams back from mmap with nothing
recomputed (see the ``block_store`` BENCH section: ~2.6x faster than
recompute at ~4x lower peak traced memory on the 20k-candidate workload).

Run with::

    PYTHONPATH=src python examples/resumable_pipeline.py
"""

import os
import signal
import tempfile
import time

import numpy as np

from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.labeling.blockstore import BlockStore, ChunkCheckpointer
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

NUM_TRAIN = 4_000
NUM_TEST = 1_000
NUM_LFS = 12
CHUNK_SIZE = 512


def LINT_LFS():
    """The synthetic text-vote LF suite, for ``python -m repro.analysis``."""
    return text_vote_lfs(NUM_LFS)


def run_pipeline(checkpoint_dir=None):
    config = PipelineConfig(
        streaming=True,
        chunk_size=CHUNK_SIZE,
        use_optimizer=False,
        generative_epochs=10,
        discriminative_epochs=10,
        seed=0,
        # The whole feature: point the streaming run at a directory and
        # every completed chunk/epoch becomes durable; `resume=True` (the
        # default) replays whatever a previous run left there.
        checkpoint_dir=checkpoint_dir,
    )
    pipeline = SnorkelPipeline(lfs=text_vote_lfs(NUM_LFS), config=config)
    return pipeline.run_streams(
        stream_text_candidates(num_points=NUM_TRAIN, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=NUM_TEST, num_lfs=NUM_LFS, seed=1),
        stream_text_gold(NUM_TEST, seed=1),
    )


def main() -> None:
    # An uninterrupted, checkpoint-free reference to compare against.
    reference = run_pipeline()
    print("reference run (no checkpointing)")
    print(f"  discriminative F1 = {reference.discriminative_f1:.3f}")

    with tempfile.TemporaryDirectory() as root:
        # --- crash: a child runs the same pipeline against the store, with
        # an injected SIGKILL after its 4th durable block (the fault plan
        # rides an environment variable, so it crosses the fork for free).
        pid = os.fork()
        if pid == 0:
            os.environ["REPRO_ENGINE_FAULTS"] = "die_block@4"
            try:
                run_pipeline(root)
            finally:
                os._exit(1)  # only reached if the kill never fired
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        print("\nchild run SIGKILLed mid-stream (fault plan: die_block@4)")

        # The store holds exactly the chunks that durably completed before
        # the kill — a real partial run, not all-or-nothing.
        with BlockStore(root) as store:
            done = sorted(ChunkCheckpointer(store, "train").completed)
        total = -(-NUM_TRAIN // CHUNK_SIZE)
        print(f"  durable train chunks: {done} ({len(done)}/{total})")
        assert 0 < len(done) < total

        # --- resume: same config, same directory.  Durable chunks replay
        # from mmap, the rest are computed, and the result is bit-identical
        # to never having crashed.
        resumed = run_pipeline(root)
        assert np.array_equal(
            resumed.label_matrix.values, reference.label_matrix.values
        )
        assert np.array_equal(resumed.training_probs, reference.training_probs)
        assert np.array_equal(
            resumed.discriminative_model.weights,
            reference.discriminative_model.weights,
        )
        print("resumed run: labels, probs, and end-model weights bit-identical")

        # --- replay: with everything durable, a re-run recomputes nothing —
        # chunks stream back as memmap views, the end model restores from
        # its last epoch snapshot.
        start = time.perf_counter()
        replayed = run_pipeline(root)
        replay_seconds = time.perf_counter() - start
        assert np.array_equal(replayed.training_probs, reference.training_probs)
        print(f"full replay from the store: {replay_seconds:.2f}s, still bit-identical")


if __name__ == "__main__":
    main()
