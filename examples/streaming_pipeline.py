"""Streaming pipeline: a generator-fed, out-of-core end-to-end run.

Demonstrates the PR-5 out-of-core mode: candidates are *generated on the
fly* and handed to the pipeline as plain generators — no candidate list, no
dense ``(m, d)`` feature matrix, ever.  Per split the execution engine makes
one fused pass (LF application + featurization on each chunk), the
generative model fits on the accumulated label matrix, and the noise-aware
end model trains from CSR feature blocks via minibatch ``fit_stream``.

The run is value-identical to the materialized pipeline on the same
candidates — this script re-runs materialized to show it — so streaming is
purely a memory/scale decision, not a quality tradeoff.

Run with::

    PYTHONPATH=src python examples/streaming_pipeline.py
"""

import numpy as np

from repro.datasets.base import TaskDataset
from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

NUM_TRAIN = 4_000
NUM_TEST = 1_000
NUM_LFS = 12


def LINT_LFS():
    """The synthetic text-vote LF suite, for ``python -m repro.analysis``."""
    return text_vote_lfs(NUM_LFS)


def main() -> None:
    lfs = text_vote_lfs(NUM_LFS)
    test_gold = stream_text_gold(NUM_TEST, seed=1)

    config = PipelineConfig(
        streaming=True,
        chunk_size=512,
        use_optimizer=False,
        generative_epochs=10,
        discriminative_epochs=10,
        seed=0,
    )
    pipeline = SnorkelPipeline(lfs=lfs, config=config)

    # The streaming entry point takes raw iterables: these generators are
    # consumed exactly once, chunk by chunk, inside the engine.
    result = pipeline.run_streams(
        stream_text_candidates(num_points=NUM_TRAIN, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=NUM_TEST, num_lfs=NUM_LFS, seed=1),
        test_gold,
    )
    print("streaming run")
    print(f"  generative     F1 = {result.generative_f1:.3f}")
    print(f"  discriminative F1 = {result.discriminative_f1:.3f}")

    # Equivalent materialized run (candidate lists + dense features): same
    # seeds, same config apart from `streaming` — and the same numbers.
    materialized = SnorkelPipeline(
        lfs=lfs,
        config=PipelineConfig(
            use_optimizer=False, generative_epochs=10, discriminative_epochs=10, seed=0
        ),
    ).run(
        TaskDataset(
            name="stream-example",
            candidates={
                "train": list(
                    stream_text_candidates(num_points=NUM_TRAIN, num_lfs=NUM_LFS, seed=0)
                ),
                "test": list(stream_text_candidates(num_points=NUM_TEST, num_lfs=NUM_LFS, seed=1)),
            },
            gold={"test": test_gold},
            lfs=lfs,
        )
    )
    print("materialized run")
    print(f"  generative     F1 = {materialized.generative_f1:.3f}")
    print(f"  discriminative F1 = {materialized.discriminative_f1:.3f}")
    delta = np.abs(result.training_probs - materialized.training_probs).max()
    print(f"max |training prob delta| = {delta:.2e}")


if __name__ == "__main__":
    main()
