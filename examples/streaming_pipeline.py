"""Streaming pipeline: a generator-fed, out-of-core end-to-end run.

Demonstrates the PR-5 out-of-core mode: candidates are *generated on the
fly* and handed to the pipeline as plain generators — no candidate list, no
dense ``(m, d)`` feature matrix, ever.  Per split the execution engine makes
one fused pass (LF application + featurization on each chunk), the
generative model fits on the accumulated label matrix, and the noise-aware
end model trains from CSR feature blocks via minibatch ``fit_stream``.

It also demonstrates the persistent worker runtime behind the
``processes`` backend.  The lifecycle is:

* **spawn once** — the first ``processes`` run creates a pool of
  long-lived workers (``repro.labeling.engine.runtime.WorkerPool``);
  every later stage and every later run on the same worker count reuses
  them.  This script proves it by printing ``total_spawned`` after the
  whole pipeline (apply, fused apply+featurize, featurize) has run: it
  equals the worker count, not stages × workers.
* **attach, then submit** — each stage hands the pool a ``TaskSpec``
  (*configuration*, e.g. the LF suite and featurizer — never compiled
  plans or open handles); workers build their own suite once per spec
  and then only chunk bytes move.
* **transport** — ``engine_transport`` picks how those bytes move:
  ``"pickle"`` streams them over each worker's pipe; ``"shm"`` moves
  them through reusable shared-memory slots and sends descriptors only.
  ``"auto"`` uses shm when the platform has it.  shm wins when chunks
  are large or many (the pipe stops being the bottleneck); for tiny
  chunks the two are within noise — see the ``engine_transport`` BENCH
  section.  Results are bit-identical either way.
* **close** — ``shutdown_pools()`` (also wired to ``atexit``) reaps the
  workers and unlinks every shared-memory segment.

The run is value-identical to the materialized pipeline on the same
candidates — this script re-runs materialized (on the default in-process
sequential backend) to show it — so streaming, the worker pool, and the
transport are purely memory/throughput decisions, not quality tradeoffs.

Run with::

    PYTHONPATH=src python examples/streaming_pipeline.py
"""

import numpy as np

from repro.datasets.base import TaskDataset
from repro.datasets.synthetic import (
    stream_text_candidates,
    stream_text_gold,
    text_vote_lfs,
)
from repro.labeling.engine.runtime import get_global_pool, shutdown_pools
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

NUM_TRAIN = 4_000
NUM_TEST = 1_000
NUM_LFS = 12
NUM_WORKERS = 2


def LINT_LFS():
    """The synthetic text-vote LF suite, for ``python -m repro.analysis``."""
    return text_vote_lfs(NUM_LFS)


def main() -> None:
    lfs = text_vote_lfs(NUM_LFS)
    test_gold = stream_text_gold(NUM_TEST, seed=1)

    config = PipelineConfig(
        streaming=True,
        chunk_size=512,
        # Persistent worker runtime: one pool of NUM_WORKERS long-lived
        # processes serves every stage; "auto" moves chunk bytes through
        # shared memory when the platform supports it, pickle otherwise.
        applier_backend="processes",
        applier_workers=NUM_WORKERS,
        engine_transport="auto",
        use_optimizer=False,
        generative_epochs=10,
        discriminative_epochs=10,
        seed=0,
    )
    pipeline = SnorkelPipeline(lfs=lfs, config=config)

    # The streaming entry point takes raw iterables: these generators are
    # consumed exactly once, chunk by chunk, inside the engine.
    result = pipeline.run_streams(
        stream_text_candidates(num_points=NUM_TRAIN, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=NUM_TEST, num_lfs=NUM_LFS, seed=1),
        test_gold,
    )
    print("streaming run")
    print(f"  generative     F1 = {result.generative_f1:.3f}")
    print(f"  discriminative F1 = {result.discriminative_f1:.3f}")

    # The whole run — LF apply and the fused apply+featurize pass on both
    # splits — went through one persistent pool: workers were spawned
    # exactly once, at first use, and reused for every later stage.
    pool = get_global_pool(NUM_WORKERS)
    print(f"worker processes spawned across all stages = {pool.total_spawned}")

    # Equivalent materialized run (candidate lists + dense features): same
    # seeds, same config apart from `streaming` — and the same numbers.
    materialized = SnorkelPipeline(
        lfs=lfs,
        config=PipelineConfig(
            use_optimizer=False, generative_epochs=10, discriminative_epochs=10, seed=0
        ),
    ).run(
        TaskDataset(
            name="stream-example",
            candidates={
                "train": list(
                    stream_text_candidates(num_points=NUM_TRAIN, num_lfs=NUM_LFS, seed=0)
                ),
                "test": list(stream_text_candidates(num_points=NUM_TEST, num_lfs=NUM_LFS, seed=1)),
            },
            gold={"test": test_gold},
            lfs=lfs,
        )
    )
    print("materialized run")
    print(f"  generative     F1 = {materialized.generative_f1:.3f}")
    print(f"  discriminative F1 = {materialized.discriminative_f1:.3f}")
    delta = np.abs(result.training_probs - materialized.training_probs).max()
    print(f"max |training prob delta| = {delta:.2e}")

    # Explicit teardown (atexit would also do it): reaps the workers and
    # unlinks every shared-memory segment the transport created.
    shutdown_pools()


if __name__ == "__main__":
    main()
