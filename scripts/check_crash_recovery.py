#!/usr/bin/env python
"""Crash-recovery gate: kill it every way we know, then prove resume.

The block store claims a SIGKILLed pipeline resumes bit-identically, and
the worker runtime claims hung workers and torn transport slots are
detected and survived.  This script is the CI gate on those claims: it
drives the full fault matrix the fault-injection layer
(:mod:`repro.labeling.engine.faults`) can express —

* master SIGKILLed after N durable chunk blocks, then resumed;
* master SIGKILLed mid end-model training (after N epochs), then resumed;
* a block torn *after* its durable rename (crc catches it on reopen, the
  chunk re-executes);
* a worker hung past the chunk deadline (warned, killed, resubmitted —
  EN101);
* a shared-memory chunk slot corrupted in flight (checksum mismatch,
  resubmitted — EN102);
* the disk filling mid-run (checkpointing degrades with one warning, the
  run completes).

Every resumed or degraded run must match an uninterrupted reference run
bit-for-bit (labels) and to 1e-12 (probabilities, weights).  After all of
it, the operating system must be back where it started: zero
``repro-eng-*`` segments in ``/dev/shm``, zero surviving worker
processes (including workers orphaned by the SIGKILLed masters), zero
``*.tmp`` residue in any block store.  Exit status 1 on any violation.

    PYTHONPATH=src python scripts/check_crash_recovery.py
"""

from __future__ import annotations

import glob
import os
import signal
import sys
import tempfile
import time
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

NUM_LFS = 5
TRAIN_POINTS = 200
TEST_POINTS = 60


def _segments() -> list[str]:
    return sorted(glob.glob("/dev/shm/repro-eng-*"))


def _reparented_clones() -> list[int]:
    """Pids of processes that share our command line but were reparented
    to init — workers orphaned by a SIGKILLed forked master.  ``fork``
    (no exec) preserves the command line, so this finds exactly them."""
    try:
        with open(f"/proc/{os.getpid()}/cmdline", "rb") as handle:
            own = handle.read()
    except OSError:
        return []
    clones = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                if handle.read() != own:
                    continue
            with open(f"/proc/{entry}/stat") as handle:
                ppid = int(handle.read().rsplit(")", 1)[1].split()[1])
        except (OSError, IndexError, ValueError):
            continue
        if ppid == 1:
            clones.append(int(entry))
    return clones


def run_pipeline(checkpoint_dir=None, backend="sequential", transport="auto"):
    from repro.datasets.synthetic import (
        stream_text_candidates,
        stream_text_gold,
        text_vote_lfs,
    )
    from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

    config = PipelineConfig(
        seed=0,
        streaming=True,
        chunk_size=32,
        generative_epochs=3,
        discriminative_epochs=4,
        num_features=128,
        applier_backend=backend,
        applier_workers=2,
        engine_transport=transport,
        checkpoint_dir=checkpoint_dir,
    )
    lfs = text_vote_lfs(NUM_LFS)
    return SnorkelPipeline(lfs=lfs, config=config).run_streams(
        stream_text_candidates(num_points=TRAIN_POINTS, num_lfs=NUM_LFS, seed=0),
        stream_text_candidates(num_points=TEST_POINTS, num_lfs=NUM_LFS, seed=1),
        stream_text_gold(TEST_POINTS, seed=1),
    )


def run_and_die(checkpoint_dir, fault_spec, backend="sequential", transport="auto"):
    """Fork a child that runs the pipeline under ``fault_spec`` until the
    injected SIGKILL; assert it really died that way."""
    from repro.labeling.engine import runtime

    pid = os.fork()
    if pid == 0:  # child
        # Inherited pool references belong to the parent — drop, don't close.
        runtime._POOLS.clear()
        os.environ["REPRO_ENGINE_FAULTS"] = fault_spec
        try:
            run_pipeline(checkpoint_dir, backend, transport)
        finally:
            os._exit(1)  # only reached if the injected kill never fired
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL, (
        f"child under {fault_spec!r} exited with status {status}, "
        "expected death by SIGKILL"
    )


def assert_matches(result, reference, scenario: str) -> None:
    import numpy as np

    assert np.array_equal(
        result.label_matrix.values, reference.label_matrix.values
    ), scenario
    assert (
        np.abs(result.training_probs - reference.training_probs).max() <= 1e-12
    ), scenario
    assert (
        np.abs(
            result.discriminative_model.weights
            - reference.discriminative_model.weights
        ).max()
        <= 1e-12
    ), scenario


def main() -> int:
    import numpy as np

    from repro.labeling import LFApplier
    from repro.labeling.blockstore import BlockStore, ChunkCheckpointer
    from repro.labeling.engine import faults, runtime
    from repro.labeling.engine.runtime import shutdown_pools

    preexisting = _segments()
    if preexisting:
        print(f"warning: segments present before the run: {preexisting}")

    print("reference run (uninterrupted, no checkpoint)...")
    reference = run_pipeline()

    stores: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        # --- master SIGKILLed after 2 durable chunk blocks, then resumed.
        root = os.path.join(tmp, "kill-block")
        stores.append(root)
        run_and_die(root, "die_block@2")
        with BlockStore(root) as store:
            completed = ChunkCheckpointer(store, "train").completed
            assert completed, "kill left no durable chunks"
            assert len(completed) < -(-TRAIN_POINTS // 32), "kill fired too late"
        assert_matches(run_pipeline(root), reference, "die_block resume")
        print("SIGKILL after 2 durable blocks: resumed bit-identically")

        # --- master SIGKILLed mid end-model training, workers + shm active.
        backend, transport = (
            ("processes", "shm") if runtime.HAVE_SHM else ("processes", "pickle")
        )
        root = os.path.join(tmp, "kill-epoch")
        stores.append(root)
        run_and_die(root, "die_epoch@1", backend, transport)
        with BlockStore(root) as store:
            assert store.get_pickle("epoch/end_model")["epoch"] >= 1
        assert_matches(
            run_pipeline(root, backend, transport), reference, "die_epoch resume"
        )
        print(f"SIGKILL mid end-model ({backend}/{transport}): resumed bit-identically")

        # --- a block torn after its durable rename: crc catches it on
        # reopen and its chunk re-executes.
        root = os.path.join(tmp, "torn-block")
        stores.append(root)
        run_and_die(root, "corrupt_block@2;die_block@4")
        with BlockStore(root) as store:
            assert 1 not in ChunkCheckpointer(store, "train").completed, (
                "torn block survived recovery"
            )
        assert_matches(run_pipeline(root), reference, "torn block resume")
        print("torn block: dropped on reopen, chunk re-executed, bit-identical")

        # The engine-level faults drive LFApplier directly: a reference
        # matrix, then a hung worker and a torn shm slot, both resubmitted.
        from repro.datasets.synthetic import stream_text_candidates, text_vote_lfs

        lfs = text_vote_lfs(NUM_LFS)
        candidates = list(
            stream_text_candidates(num_points=TRAIN_POINTS, num_lfs=NUM_LFS, seed=0)
        )
        matrix_ref = LFApplier(lfs).apply(candidates)

        # --- a worker hangs past the chunk deadline: warned, killed,
        # resubmitted (EN101), and the run still completes correctly.
        shutdown_pools()  # workers must be forked after the plan installs
        faults.install(f"hang@2:seconds=60:flag={os.path.join(tmp, 'hung-once')}")
        try:
            applier = LFApplier(
                lfs,
                chunk_size=32,
                backend="processes",
                num_workers=2,
                fault_tolerant=True,
                chunk_timeout=0.5,
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                matrix = applier.apply(candidates)
            assert any("deadline" in str(w.message) for w in caught), (
                "hung worker drew no deadline warning"
            )
            assert np.array_equal(matrix.values, matrix_ref.values)
        finally:
            faults.install(None)
        print("hung worker: warned, killed, resubmitted (EN101), result correct")

        # --- a shared-memory chunk slot corrupted in flight: checksum
        # mismatch (EN102), chunk resubmitted over a fresh worker.
        if runtime.HAVE_SHM:
            shutdown_pools()
            faults.install(
                f"corrupt_shm@1:flag={os.path.join(tmp, 'corrupted-once')}"
            )
            try:
                applier = LFApplier(
                    lfs,
                    chunk_size=32,
                    backend="processes",
                    num_workers=2,
                    transport="shm",
                    fault_tolerant=True,
                )
                matrix = applier.apply(candidates)
                assert np.array_equal(matrix.values, matrix_ref.values)
            finally:
                faults.install(None)
            print("torn shm slot: detected (EN102), resubmitted, result correct")
        else:
            print("torn shm slot: skipped (no shared memory)")

        # --- the disk fills mid-run: checkpointing degrades with one
        # warning, the run completes and still matches.
        root = os.path.join(tmp, "disk-full")
        stores.append(root)
        faults.install("disk_full@3")
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = run_pipeline(root)
            assert any(
                "checkpointing disabled" in str(w.message) for w in caught
            ), "disk-full drew no degradation warning"
            assert_matches(result, reference, "disk-full degraded run")
        finally:
            faults.install(None)
        print("disk full: checkpointing degraded with a warning, result correct")

        # --- nothing left behind: no temp residue in any block store...
        residue = [
            path
            for root in stores
            for path in glob.glob(os.path.join(root, "blocks", "*.tmp"))
        ]

        shutdown_pools()

        problems: list[str] = []
        if residue:
            problems.append(f"orphaned temp block files: {residue}")
        # ...no leaked shared-memory segments...
        leftovers = [name for name in _segments() if name not in preexisting]
        if leftovers:
            problems.append(f"leaked shared-memory segments: {leftovers}")
        # ...and no surviving workers, including ones orphaned by the
        # SIGKILLed masters (they detect the master's death and exit; give
        # them a moment).
        deadline = time.monotonic() + 15.0
        orphans = _reparented_clones()
        while orphans and time.monotonic() < deadline:
            time.sleep(0.25)
            orphans = _reparented_clones()
        if orphans:
            problems.append(f"surviving worker processes (pids): {orphans}")

    if problems:
        print("crash recovery check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        "crash recovery check passed: kill/hang/corruption/disk-full matrix, "
        "resumes bit-identical, 0 leaked segments, 0 surviving workers, "
        "0 temp residue"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
