#!/usr/bin/env python
"""Engine runtime leak gate: no orphaned segments, no surviving workers.

The persistent worker runtime owns real operating-system resources — child
processes and ``/dev/shm`` shared-memory segments — whose leaks a test
suite can mask (each test cleans up after itself) but a long-lived process
cannot.  This script is the CI gate on the runtime's ownership discipline:
it drives the pool through every lifecycle edge that has ever leaked in a
process-pool design, then asserts the operating system is back to where it
started:

* plain runs over both transports (pickle and shm), list- and
  generator-fed, including the shm ring's growth path (a chunk far larger
  than the initial slot size);
* a worker crash mid-run (the master must reclaim the dead worker's
  segments and its replacement's, not just the happy path's);
* a fault-tolerant crash-with-resubmission run;
* pool shutdown via :func:`repro.labeling.engine.runtime.shutdown_pools`.

After all of that: zero ``repro-eng-*`` entries in ``/dev/shm``, zero
worker processes among this interpreter's children.  Exit status 1 on any
leftover, with the leftovers named.

    PYTHONPATH=src python scripts/check_engine_leaks.py
"""

from __future__ import annotations

import glob
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def _segments() -> list[str]:
    return sorted(glob.glob("/dev/shm/repro-eng-*"))


def _crash_task(payload, fault_tolerant, index, start_row, candidates):
    from repro.labeling.engine.accumulator import apply_chunk

    flag, lfs, crash_index = payload
    if index == crash_index and (flag is None or not os.path.exists(flag)):
        if flag is not None:
            open(flag, "w").close()
        os._exit(3)
    return apply_chunk(lfs, fault_tolerant, index, start_row, candidates)


def main() -> int:
    import multiprocessing
    import tempfile

    import numpy as np

    from repro.datasets.synthetic import (
        stream_synthetic_candidates,
        synthetic_vote_lfs,
    )
    from repro.labeling import LFApplier
    from repro.labeling.engine import (
        CSRAccumulator,
        TaskSpec,
        WorkerCrashError,
        iter_chunks,
    )
    from repro.labeling.engine.runtime import get_global_pool, shutdown_pools

    preexisting = _segments()
    if preexisting:
        print(f"warning: segments present before the run: {preexisting}")

    lfs = synthetic_vote_lfs(6)
    candidates = list(
        stream_synthetic_candidates(num_points=800, num_lfs=6, propensity=0.4, seed=0)
    )
    reference = LFApplier(lfs).apply(candidates)

    # Plain runs over both transports, list- and generator-fed; chunk size 7
    # exercises many small slots, 4096 exercises ring growth (whole stream
    # in one slot reservation).
    for transport in ("pickle", "shm"):
        for chunk_size in (7, 4096):
            applier = LFApplier(
                lfs,
                chunk_size=chunk_size,
                backend="processes",
                num_workers=2,
                transport=transport,
            )
            matrix = applier.apply(candidates)
            assert np.array_equal(matrix.values, reference.values), transport
            matrix = applier.apply(iter(candidates), sparse=True)
            assert np.array_equal(matrix.to_dense().values, reference.values)

    # A worker crash mid-run: the pool must reclaim the dead worker's
    # resources and stay serviceable.
    pool = get_global_pool(2)
    accumulator = CSRAccumulator()
    try:
        pool.run(
            spec=TaskSpec(task=_crash_task, payload=(None, lfs, 2)),
            chunks=iter_chunks(candidates, 50),
            accumulator=accumulator,
            transport="auto",
        )
        raise AssertionError("crash run unexpectedly succeeded")
    except WorkerCrashError as exc:
        assert exc.chunk_index >= 0

    # Fault-tolerant crash + resubmission, then a clean verifying run.
    with tempfile.TemporaryDirectory() as tmp:
        flag = os.path.join(tmp, "crashed-once")
        accumulator = CSRAccumulator()
        pool.run(
            spec=TaskSpec(
                task=_crash_task, payload=(flag, lfs, 3), fault_tolerant=True
            ),
            chunks=iter_chunks(candidates, 50),
            accumulator=accumulator,
            transport="auto",
        )
        merged = accumulator.merge()
        matrix = np.zeros((len(candidates), len(lfs)), dtype=np.int64)
        matrix[merged.rows, merged.cols] = merged.values
        assert np.array_equal(matrix, reference.values)

    shutdown_pools()

    problems: list[str] = []
    leftovers = [name for name in _segments() if name not in preexisting]
    if leftovers:
        problems.append(f"leaked shared-memory segments: {leftovers}")
    workers = [
        f"{child.name} (pid {child.pid})"
        for child in multiprocessing.active_children()
        if "engine-worker" in child.name
    ]
    if workers:
        problems.append(f"surviving worker processes: {workers}")

    if problems:
        print("engine leak check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        "engine leak check passed: transports + crash + resubmission runs, "
        "0 leaked segments, 0 surviving workers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
