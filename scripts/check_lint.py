"""Offline approximation of the enforced ruff rules (see ruff.toml).

CI runs real ruff; development containers without it can run

    python scripts/check_lint.py

to catch the same violation classes with only the stdlib:

* ``E501``  — lines longer than 100 characters;
* ``W291``/``W293`` — trailing whitespace;
* ``W292`` — missing newline at end of file;
* ``F401`` — module-level imports never used (``__all__`` re-exports count
  as uses, as do names referenced anywhere in the module body);
* ``I00x`` — import sections out of order (stdlib → third-party → repro)
  or unsorted modules within a section, over the leading import block.

Exit status is 1 when any violation is found.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

LINE_LIMIT = 100
_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
FIRST_PARTY = {"repro"}
THIRD_PARTY = {"numpy", "scipy", "networkx", "pytest", "hypothesis", "np"}

REPO = Path(__file__).resolve().parent.parent
TARGETS = ["src", "tests", "benchmarks", "examples", "scripts", "conftest.py", "setup.py"]


def _stdlib_names() -> set[str]:
    names = set(sys.stdlib_module_names)
    names.add("__future__")
    return names


STDLIB = _stdlib_names()


def iter_files() -> list[Path]:
    files: list[Path] = []
    for target in TARGETS:
        path = REPO / target
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def section_of(module: str) -> int:
    root = module.split(".")[0]
    if root == "__future__":
        return 0
    if root in STDLIB:
        return 1
    if root in FIRST_PARTY:
        return 3
    return 2


def check_line_rules(path: Path, text: str, problems: list[str]) -> None:
    lines = text.split("\n")
    for number, line in enumerate(lines, start=1):
        if len(line) > LINE_LIMIT:
            problems.append(f"{path}:{number}: E501 line too long ({len(line)} > {LINE_LIMIT})")
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            problems.append(f"{path}:{number}: {code} trailing whitespace")
    if text and not text.endswith("\n"):
        problems.append(f"{path}:{len(lines)}: W292 no newline at end of file")


def _imported_bindings(node: ast.stmt) -> list[tuple[str, str]]:
    """(bound name, module) pairs a top-level import statement introduces."""
    out: list[tuple[str, str]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            out.append((bound, alias.name))
    elif isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == "__future__":
            return out  # __future__ imports are compiler directives, never "unused"
        for alias in node.names:
            if alias.name == "*":
                continue
            out.append((alias.asname or alias.name, module))
    return out


def check_unused_imports(path: Path, tree: ast.Module, problems: list[str]) -> None:
    imports: dict[str, tuple[int, str]] = {}
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for bound, _module in _imported_bindings(node):
                imports.setdefault(bound, (node.lineno, bound))
    if not imports:
        return
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "module.attr" marks "module" used via the Name node already.
            continue
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ entries, string annotations ("ChunkResult | None"), and
            # doctest-style references count as uses; take every identifier
            # token the string contains, as ruff parses string annotations.
            used.update(_IDENTIFIER.findall(node.value))
    for bound, (lineno, name) in sorted(imports.items(), key=lambda kv: kv[1][0]):
        if bound not in used:
            problems.append(f"{path}:{lineno}: F401 {name!r} imported but unused")


def check_import_order(path: Path, tree: ast.Module, problems: list[str]) -> None:
    """Check the leading import block: sections ordered, modules sorted.

    Within a section isort places straight ``import x`` statements before
    ``from x import y`` statements, each run alphabetized (ruff's default
    ``force-sort-within-sections = false``).
    """
    entries: list[tuple[tuple[int, int, str], str, int]] = []  # (key, module, lineno)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.level:
                continue  # relative imports: out of scope for the approximation
            is_from = int(isinstance(node, ast.ImportFrom))
            module = (
                node.names[0].name if isinstance(node, ast.Import) else (node.module or "")
            )
            key = (section_of(module), is_from, module.lower())
            entries.append((key, module, node.lineno))
        elif isinstance(node, (ast.Expr, ast.If)):
            continue  # docstring / TYPE_CHECKING blocks may interleave
        elif entries:
            break  # first non-import statement ends the leading block
    for previous, current in zip(entries, entries[1:]):
        if current[0] < previous[0]:
            problems.append(
                f"{path}:{current[2]}: I001 imports not sorted "
                f"({current[1]!r} after {previous[1]!r})"
            )


def _member_key(name: str) -> tuple[int, str]:
    """isort's default ``order-by-type``: constants, then classes, then rest."""
    if name.isupper():
        kind = 0
    elif name[:1].isupper():
        kind = 1
    else:
        kind = 2
    return (kind, name.lower())


def check_member_order(path: Path, tree: ast.Module, problems: list[str]) -> None:
    """Names inside one ``from x import a, b, c`` must be member-sorted."""
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.module == "__future__":
            continue
        names = [alias.asname or alias.name for alias in node.names if alias.name != "*"]
        ordered = sorted(names, key=_member_key)
        if names != ordered:
            problems.append(
                f"{path}:{node.lineno}: I001 from-import members not sorted "
                f"(expected {', '.join(ordered)})"
            )


def main() -> int:
    problems: list[str] = []
    files = iter_files()
    for path in files:
        text = path.read_text()
        check_line_rules(path, text, problems)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            problems.append(f"{path}:{exc.lineno}: E999 syntax error: {exc.msg}")
            continue
        check_unused_imports(path, tree, problems)
        check_import_order(path, tree, problems)
        check_member_order(path, tree, problems)
    for problem in problems:
        print(problem)
    print(f"{len(files)} files checked, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
