#!/usr/bin/env python
"""Pushdown self-check: our own LF suites must compile, and compiled == interpreted.

The pushdown compiler ships with the claim that every labeling function the
repo's own library builds from the declarative factories is ``COMPILABLE``
and compiles — no silent drift into the interpreted fallback tier as the
library or the compiler evolves.  This script is the CI gate on that claim:

* every LF in ``LINT_LFS()`` (one of each factory family) and in the CDR
  task suite (32 ``lf_library``-built LFs) must land in the compiled tier,
  with any refusal printed with the analyzer's or compiler's reason;
* the compiled labels must be **bit-identical** to the interpreted ones on
  a streamed corpus, including per-LF suppressed-error counts, with planted
  per-row failures (``error_rate``) exercising the fallback guards.

Exit status is 1 when any suite leaks into fallback or any label diverges.

    PYTHONPATH=src python scripts/check_pushdown.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def check_suite(name: str, lfs, candidates) -> list[str]:
    import numpy as np

    from repro.labeling import LFApplier, build_plan

    problems: list[str] = []
    plan = build_plan(lfs)
    for lf_name, reason in sorted(plan.fallback_reasons.items()):
        problems.append(f"{name}: {lf_name} fell back to interpreted: {reason}")

    base = LFApplier(lfs, fault_tolerant=True)
    base_matrix = base.apply(candidates)
    push = LFApplier(lfs, fault_tolerant=True, pushdown="auto")
    push_matrix = push.apply(candidates)
    diff = int(np.abs(base_matrix.values - push_matrix.values).max(initial=0))
    if diff:
        problems.append(f"{name}: compiled labels diverge (max|diff|={diff})")
    if base.last_report.errors != push.last_report.errors:
        problems.append(
            f"{name}: suppressed-error counts diverge: "
            f"{base.last_report.errors} != {push.last_report.errors}"
        )
    if not problems:
        compiled = len(plan.compiled)
        errors = sum(base.last_report.errors.values())
        print(
            f"ok: {name}: {compiled}/{plan.num_lfs} LFs compiled, "
            f"{len(candidates)} candidates identical ({errors} errors matched)"
        )
    return problems


def main() -> int:
    from repro.datasets.cdr import build_cdr_task
    from repro.datasets.lf_library import LINT_LFS
    from repro.datasets.synthetic import stream_relation_candidates

    clean = list(stream_relation_candidates(num_points=600, seed=0))
    dirty = list(stream_relation_candidates(num_points=600, seed=1, error_rate=0.1))

    problems: list[str] = []
    problems += check_suite("LINT_LFS", LINT_LFS(), clean)
    problems += check_suite("LINT_LFS+errors", LINT_LFS(), dirty)
    problems += check_suite("cdr_task", build_cdr_task().lfs, clean)
    problems += check_suite("cdr_task+errors", build_cdr_task().lfs, dirty)

    if problems:
        print(f"\n{len(problems)} pushdown problem(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("pushdown self-check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
