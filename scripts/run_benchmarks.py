#!/usr/bin/env python
"""Execute the benchmark suite and write a perf snapshot for trajectory tracking.

Runs the ``benchmarks/bench_*.py`` pytest suite (the paper-artifact harness)
and then the dense-vs-sparse scaling measurement from
``benchmarks/bench_sparse_scaling.py``, writing the latter to a JSON snapshot
(default ``BENCH_sparse.json`` in the repository root) so future PRs have a
baseline to compare fit-time and peak-memory numbers against.

Usage::

    python scripts/run_benchmarks.py                 # suite + snapshot
    python scripts/run_benchmarks.py --skip-suite    # snapshot only
    python scripts/run_benchmarks.py --output /tmp/bench.json
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _load_scaling_module():
    spec = importlib.util.spec_from_file_location(
        "bench_sparse_scaling", REPO_ROOT / "benchmarks" / "bench_sparse_scaling.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_suite() -> int:
    """Run the full ``benchmarks/`` pytest collection; return its exit code."""
    return subprocess.call(
        [sys.executable, "-m", "pytest", str(REPO_ROOT / "benchmarks"), "-q"],
        cwd=REPO_ROOT,
    )


def write_snapshot(output: Path) -> dict:
    """Measure dense-vs-sparse scaling and write the JSON snapshot."""
    import numpy as np

    from repro.labeling.sparse import HAVE_SCIPY

    bench = _load_scaling_module()
    records = bench.run_scaling()
    snapshot = {
        "benchmark": "bench_sparse_scaling",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy_backend": HAVE_SCIPY,
        "records": records,
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(bench.format_records(records))
    print(f"\nwrote {output}")
    return snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sparse.json",
        help="snapshot path (default: BENCH_sparse.json in the repo root)",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the pytest benchmark suite, only write the scaling snapshot",
    )
    args = parser.parse_args(argv)

    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    exit_code = 0
    if not args.skip_suite:
        exit_code = run_suite()
    write_snapshot(args.output)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
