#!/usr/bin/env python
"""Execute the benchmark suite and write a perf snapshot for trajectory tracking.

Runs the ``benchmarks/bench_*.py`` pytest suite (the paper-artifact harness)
and then the importable perf measurements, writing one multi-section JSON
snapshot (default ``BENCH_sparse.json`` in the repository root):

* ``sparse_scaling`` — dense vs sparse label-model fits
  (``benchmarks/bench_sparse_scaling.py``);
* ``applier_throughput`` — sequential vs threads vs processes LF execution
  on streamed candidates (``benchmarks/bench_applier_engine.py``);
* ``gibbs`` — dense vs sparse Gibbs-sampler timings
  (``benchmarks/bench_gibbs_timing.py``);
* ``gibbs_kernels`` — reference per-column loop vs vectorized plan-based
  kernels, binary and cardinality-4, on the 20k x 200-LF crowd-style suite
  (``benchmarks/bench_gibbs_kernels.py``);
* ``structure_learning`` — structure-learning plus correlation-count fit
  costs (``benchmarks/bench_structure_timing.py``);
* ``em_epoch`` — per-epoch EM time, binary and cardinality-4, dense vs
  sparse (``benchmarks/bench_em_epoch.py``);
* ``online_em`` — the online incremental label model: per-chunk ``update``
  cost early vs late in the stream (must stay flat as rows accumulate),
  drain vs batch fit time, with drain-equals-batch parity asserted
  (``benchmarks/bench_online_em.py``);
* ``featurizer_throughput`` — dense vs CSR relation-featurizer batch
  transforms (``benchmarks/bench_featurizer_throughput.py``);
* ``discriminative_streaming`` — the out-of-core pipeline (fused
  apply+featurize engine pass, CSR-block minibatch end-model training) vs
  the materialized pipeline on a 50k-candidate synthetic text task:
  throughput, peak traced memory, and value parity
  (``benchmarks/bench_discriminative_streaming.py``);
* ``lf_analysis`` — static-analysis amortization: the analyze-call count is
  per-suite rather than per-candidate (asserted structurally), plus the
  one-time validation cost relative to the apply itself
  (``benchmarks/bench_lf_analysis.py``);
* ``lf_pushdown`` — compiled columnar LF kernels vs the interpreted
  per-candidate loop on the CDR ``lf_library`` suite, with bit-identity
  asserted on every measurement, including a mixed compiled/fallback suite
  (``benchmarks/bench_lf_pushdown.py``);
* ``engine_transport`` — threads vs the persistent worker pool's pickle and
  shared-memory chunk transports on the CDR ``lf_library`` suite at chunk
  sizes 64/512/4096, with bit-identity and a zero-leak shutdown (no
  orphaned ``/dev/shm`` segments, no surviving worker processes) asserted
  on every measurement (``benchmarks/bench_engine_transport.py``);
* ``block_store`` — the crash-safe block store's mmap replay vs recompute:
  a plain streaming run, the same run paying the checkpoint write
  amplification, and a resume over the complete store (zero LF executions,
  zero training epochs), with bit-identity asserted between all three
  (``benchmarks/bench_block_store.py``).

``--compare`` re-measures and checks every ``*_seconds`` metric against the
committed snapshot, failing (exit code 1) on a more-than-``--threshold``-fold
slowdown — the regression gate future perf PRs run against.  ``--quick``
shrinks every workload to smoke-test size: useful in CI to exercise the
whole measurement (and its parity assertions) in seconds.  Because the
shrunken runs are far faster than any committed baseline, ``--compare
--quick`` degrades into exactly that smoke test — it validates the pipeline
end-to-end but cannot flag slowdowns.

Usage::

    python scripts/run_benchmarks.py                 # suite + snapshot
    python scripts/run_benchmarks.py --skip-suite    # snapshot only
    python scripts/run_benchmarks.py --output /tmp/bench.json
    python scripts/run_benchmarks.py --compare       # regression gate
    python scripts/run_benchmarks.py --compare --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Metric keys compared by ``--compare`` (every key with this suffix).
TIMING_SUFFIX = "_seconds"

#: Baselines below this are padded up to it before applying the threshold:
#: single-digit-millisecond measurements routinely jitter by more than 2x
#: (cache state, first-call dispatch), which is noise, not regression.
MIN_COMPARE_SECONDS = 0.05


def _load_bench_module(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "benchmarks" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_suite() -> int:
    """Run the full ``benchmarks/`` pytest collection; return its exit code.

    ``bench_*.py`` does not match pytest's default ``python_files`` pattern,
    so the collection override is passed explicitly (keeping the tier-1
    ``pytest tests/`` collection untouched).
    """
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks"),
            "-q",
            "-o",
            "python_files=bench_*.py",
        ],
        cwd=REPO_ROOT,
    )


def measure(quick: bool = False) -> dict:
    """Run every importable perf measurement; return the snapshot document.

    ``quick`` shrinks every workload by roughly an order of magnitude — the
    measurements exercise the full machinery (including the dense/sparse and
    kernel parity checks baked into the records) but their timings are smoke
    values, not comparable to a full snapshot.
    """
    import numpy as np

    from repro.labeling.sparse import HAVE_SCIPY

    scaling = _load_bench_module("bench_sparse_scaling")
    applier = _load_bench_module("bench_applier_engine")
    gibbs = _load_bench_module("bench_gibbs_timing")
    gibbs_kernels = _load_bench_module("bench_gibbs_kernels")
    structure = _load_bench_module("bench_structure_timing")
    em_epoch = _load_bench_module("bench_em_epoch")
    online_em = _load_bench_module("bench_online_em")
    featurizer = _load_bench_module("bench_featurizer_throughput")
    streaming = _load_bench_module("bench_discriminative_streaming")
    lf_analysis = _load_bench_module("bench_lf_analysis")
    lf_pushdown = _load_bench_module("bench_lf_pushdown")
    engine_transport = _load_bench_module("bench_engine_transport")
    block_store = _load_bench_module("bench_block_store")

    print("[sparse_scaling]")
    scaling_records = scaling.run_scaling(
        configs=((2_000, 20, 0.05),) if quick else scaling.DEFAULT_CONFIGS
    )
    print(scaling.format_records(scaling_records))
    print("\n[applier_throughput]")
    applier_records = applier.run_applier_throughput(
        configs={"cpu": (300, 8), "latency": (120, 4)} if quick else None
    )
    print(applier.format_records(applier_records))
    print("\n[gibbs]")
    gibbs_record = gibbs.run_gibbs_benchmark(
        config=(2_000, 20, 0.05) if quick else gibbs.DEFAULT_CONFIG
    )
    print(gibbs.format_record(gibbs_record))
    print("\n[gibbs_kernels]")
    gibbs_kernel_records = gibbs_kernels.run_gibbs_kernels_benchmark(
        configs=(
            (("binary", 2, 2_000, 40, 0.05), ("k4", 4, 2_000, 40, 0.05))
            if quick
            else gibbs_kernels.DEFAULT_CONFIGS
        ),
        repeats=1 if quick else 3,
    )
    print(gibbs_kernels.format_records(gibbs_kernel_records))
    print("\n[structure_learning]")
    structure_record = structure.run_structure_benchmark(
        **({"num_points": 150, "num_groups": 3, "epochs": 4} if quick else {})
    )
    print(structure.format_record(structure_record))
    print("\n[em_epoch]")
    em_epoch_records = em_epoch.run_em_epoch_benchmark(
        configs=(
            (("binary", 2, 2_000, 20, 0.05), ("k4", 4, 2_000, 20, 0.05))
            if quick
            else em_epoch.DEFAULT_CONFIGS
        )
    )
    print(em_epoch.format_records(em_epoch_records))
    print("\n[online_em]")
    online_em_record = online_em.run_online_em_benchmark(
        **(
            {"num_points": 2_000, "num_lfs": 20, "chunk_size": 200, "epochs": 6}
            if quick
            else {}
        )
    )
    print(online_em.format_record(online_em_record))
    # The online model's cardinal rules, asserted on every snapshot (quick
    # or full): draining the stream reproduces the batch sparse fit bit for
    # bit (and the dense fit to 1e-8), and folding a chunk does not get
    # slower as rows accumulate.
    assert online_em_record["max_weight_diff"] == 0, "drained weights diverged"
    assert online_em_record["max_prob_diff"] <= 1e-8, "drained posteriors diverged"
    assert (
        online_em_record["flatness_ratio"] < online_em.MAX_FLATNESS_RATIO
    ), "per-chunk update cost grew with accumulated rows"
    print("\n[featurizer_throughput]")
    featurizer_record = featurizer.run_featurizer_benchmark(
        num_candidates=150 if quick else featurizer.DEFAULT_NUM_CANDIDATES
    )
    print(featurizer.format_record(featurizer_record))
    print("\n[discriminative_streaming]")
    streaming_record = streaming.run_discriminative_streaming_benchmark(
        **(
            {"num_candidates": 2_000, "num_test": 500, "discriminative_epochs": 4}
            if quick
            else {}
        )
    )
    print(streaming.format_record(streaming_record))
    print("\n[lf_analysis]")
    lf_analysis_record = lf_analysis.run_lf_analysis_benchmark(
        **({"small_corpus": 100, "large_corpus": 1_000} if quick else {})
    )
    print(lf_analysis.format_record(lf_analysis_record))
    # The subsystem's cost-model claim, asserted on every snapshot: analysis
    # is per-suite, not per-candidate — the 10x corpus performs the same
    # number of analyze calls.
    assert (
        lf_analysis_record["analyze_calls_small_corpus"]
        == lf_analysis_record["analyze_calls_large_corpus"]
    ), "LF analysis ran per-candidate, not per-suite"
    print("\n[lf_pushdown]")
    lf_pushdown_record = lf_pushdown.run_lf_pushdown_benchmark(
        num_candidates=1_000 if quick else lf_pushdown.DEFAULT_NUM_CANDIDATES
    )
    print(lf_pushdown.format_record(lf_pushdown_record))
    # The subsystem's cardinal rule, asserted on every snapshot (quick or
    # full): compiled labels are bit-identical to interpreted, including
    # with an uncompilable LF planted next to the compiled columns.
    assert lf_pushdown_record["max_abs_diff"] == 0, "pushdown labels diverged"
    assert (
        lf_pushdown_record["mixed_max_abs_diff"] == 0
    ), "mixed compiled/fallback labels diverged"
    print("\n[engine_transport]")
    engine_transport_records = engine_transport.run_engine_transport_benchmark(
        num_candidates=1_000 if quick else engine_transport.DEFAULT_NUM_CANDIDATES
    )
    print(engine_transport.format_records(engine_transport_records))
    # The runtime's cardinal rules, asserted on every snapshot (quick or
    # full): every transport emits the sequential label matrix bit for bit,
    # and shutting the pools down leaks no segments or worker processes.
    assert all(
        record["identical"] for record in engine_transport_records
    ), "transport labels diverged"
    from repro.labeling.engine.runtime import shutdown_pools

    shutdown_pools()
    assert (
        engine_transport.leftover_segments() == []
    ), "engine shared-memory segments leaked"
    print("\n[block_store]")
    block_store_record = block_store.run_block_store_benchmark(
        **(
            {"num_candidates": 1_500, "num_test": 400, "discriminative_epochs": 4}
            if quick
            else {}
        )
    )
    print(block_store.format_record(block_store_record))
    # The store's cardinal rule, asserted on every snapshot (quick or full):
    # a run replayed from durable blocks is bit-identical to recomputing.
    assert block_store_record["max_training_prob_diff"] == 0, "replayed probs diverged"
    assert (
        block_store_record["max_end_model_weight_diff"] == 0
    ), "replayed end-model weights diverged"

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy_backend": HAVE_SCIPY,
        "quick": quick,
        "benchmarks": {
            "sparse_scaling": {"records": scaling_records},
            "applier_throughput": {"records": applier_records},
            "gibbs": {"record": gibbs_record},
            "gibbs_kernels": {"records": gibbs_kernel_records},
            "structure_learning": {"record": structure_record},
            "em_epoch": {"records": em_epoch_records},
            "online_em": {"record": online_em_record},
            "featurizer_throughput": {"record": featurizer_record},
            "discriminative_streaming": {"record": streaming_record},
            "lf_analysis": {"record": lf_analysis_record},
            "lf_pushdown": {"record": lf_pushdown_record},
            "engine_transport": {"records": engine_transport_records},
            "block_store": {"record": block_store_record},
        },
    }


def write_snapshot(output: Path, quick: bool = False) -> dict:
    """Measure everything and write the JSON snapshot."""
    snapshot = measure(quick=quick)
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nwrote {output}")
    return snapshot


def _flatten_timings(node, path: str = "") -> dict[str, float]:
    """All ``*_seconds`` metrics in a snapshot, keyed by their JSON path."""
    timings: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else str(key)
            if key.endswith(TIMING_SUFFIX) and isinstance(value, (int, float)):
                timings[child] = float(value)
            else:
                timings.update(_flatten_timings(value, child))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            timings.update(_flatten_timings(value, f"{path}[{index}]"))
    return timings


def compare_snapshots(baseline: dict, current: dict, threshold: float) -> list[str]:
    """Return one regression message per metric slower than ``threshold``-fold."""
    baseline_timings = _flatten_timings(baseline)
    current_timings = _flatten_timings(current)
    regressions = []
    for path, base_value in sorted(baseline_timings.items()):
        if path not in current_timings or base_value <= 0:
            continue
        ratio = current_timings[path] / max(base_value, MIN_COMPARE_SECONDS)
        if ratio > threshold:
            regressions.append(
                f"{path}: {current_timings[path]:.3f}s vs baseline "
                f"{base_value:.3f}s ({ratio:.1f}x > {threshold:.1f}x)"
            )
    return regressions


def run_compare(snapshot_path: Path, threshold: float, quick: bool = False) -> int:
    """Re-measure and gate against the committed snapshot.

    With ``quick`` the re-measurement runs the shrunken workloads: the gate
    cannot flag slowdowns (quick timings undershoot any full baseline) but
    still fails on measurement errors and parity violations — the CI smoke
    mode.
    """
    if not snapshot_path.exists():
        print(f"no baseline snapshot at {snapshot_path}; run without --compare first")
        return 2
    baseline = json.loads(snapshot_path.read_text())
    current = measure(quick=quick)
    regressions = compare_snapshots(baseline, current, threshold)
    compared = len(set(_flatten_timings(baseline)) & set(_flatten_timings(current)))
    if regressions:
        print(f"\n{len(regressions)} timing regression(s) vs {snapshot_path}:")
        for message in regressions:
            print(f"  {message}")
        return 1
    print(f"\nno >{threshold:.1f}x regressions across {compared} timings vs {snapshot_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sparse.json",
        help="snapshot path (default: BENCH_sparse.json in the repo root)",
    )
    parser.add_argument(
        "--skip-suite",
        action="store_true",
        help="skip the pytest benchmark suite, only write the perf snapshot",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="re-measure and fail on regressions vs the snapshot at --output "
        "(does not overwrite it)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="slowdown factor that counts as a regression (default: 2.0)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink every workload to smoke-test size (CI); timings are not "
        "comparable to a full snapshot",
    )
    args = parser.parse_args(argv)

    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    if args.compare:
        return run_compare(args.output, args.threshold, quick=args.quick)

    if args.quick and args.output == parser.get_default("output"):
        # A quick snapshot at the committed baseline path would poison every
        # subsequent full --compare run with ~10x-smaller-workload timings.
        print(
            "--quick measurements are not comparable to the committed baseline; "
            "pass an explicit --output (or use --compare --quick for the smoke)"
        )
        return 2

    exit_code = 0
    if not args.skip_suite:
        exit_code = run_suite()
    write_snapshot(args.output, quick=args.quick)
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
