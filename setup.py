"""Setuptools entry point (kept alongside pyproject.toml for offline editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of Snorkel: Rapid Training Data Creation with Weak Supervision "
        "(Ratner et al., VLDB 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
