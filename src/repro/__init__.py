"""repro: a reproduction of "Snorkel: Rapid Training Data Creation with Weak Supervision".

The public API re-exports the pieces a typical user touches: labeling
functions and their applier, the label matrix, majority vote and the
generative label model, the modeling-strategy optimizer, noise-aware end
models, and the end-to-end :class:`repro.pipeline.snorkel.SnorkelPipeline`.
"""

from repro.labeling import (
    LabelingFunction,
    LabelMatrix,
    LFAnalysis,
    LFApplier,
    labeling_function,
)
from repro.labelmodel import (
    GenerativeModel,
    MajorityVoter,
    ModelingStrategyOptimizer,
)
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, Label

__version__ = "0.1.0"

__all__ = [
    "ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "Label",
    "LabelingFunction",
    "labeling_function",
    "LFApplier",
    "LabelMatrix",
    "LFAnalysis",
    "MajorityVoter",
    "GenerativeModel",
    "ModelingStrategyOptimizer",
    "__version__",
]
