"""Static analysis of labeling functions and engine chunk tasks.

Labeling functions are arbitrary user Python, yet the system's guarantees —
deterministic label matrices, bit-identical results across executor
backends, labels inside the declared cardinality — all assume properties no
one checks.  This package checks them *before* the first candidate is
labeled:

* :func:`analyze_lf` — one LF in, an
  :class:`~repro.analysis.diagnostics.LFAnalysisResult` out: coded
  diagnostics (``LF001``+, see :mod:`repro.analysis.diagnostics`) from the
  AST lint passes (:mod:`repro.analysis.lint`), a picklability probe, and
  the pushdown-compilability verdict (:mod:`repro.analysis.pushdown`).
* :func:`analyze_suite` — a whole LF suite into one
  :class:`~repro.analysis.diagnostics.AnalysisReport`; this is what
  ``LFApplier(validate="warn"|"error")`` runs before applying.
* :func:`repro.analysis.contracts.check_task` /
  :func:`~repro.analysis.contracts.check_engine_tasks` — purity contracts
  over engine chunk tasks.
* :mod:`repro.analysis.runtime` — dynamic cross-checks (differential
  static-vs-observed verification) and the debug-mode purity shim.
* ``python -m repro.analysis <module_or_path> ...`` — the standalone linter
  CLI (:mod:`repro.analysis.cli`), which CI runs over the library's own LFs.

The analysis cost is per-*LF*, not per-candidate: a suite is analyzed once
per apply call, so validation overhead is independent of corpus size (the
``lf_analysis`` benchmark section asserts exactly that).
"""

from __future__ import annotations

import pickle
import weakref
from typing import Any, Iterable, Optional

from repro.analysis.contracts import check_engine_tasks, check_task
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    LFAnalysisResult,
    PredicatePayload,
    PushdownVerdict,
    Severity,
    make_diagnostic,
    merge_reports,
)
from repro.analysis.lint import FunctionScope, lint_function
from repro.analysis.pushdown import classify_pushdown
from repro.analysis.runtime import (
    ObservedBehavior,
    PurityCheckedTask,
    crosscheck,
    observe_lf,
    observe_task_purity,
)
from repro.analysis.source import extract_source, resolve_function

__all__ = [
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "FunctionScope",
    "LFAnalysisResult",
    "ObservedBehavior",
    "PredicatePayload",
    "PurityCheckedTask",
    "PushdownVerdict",
    "Severity",
    "analyze_lf",
    "analyze_suite",
    "check_engine_tasks",
    "check_task",
    "classify_pushdown",
    "clear_analysis_cache",
    "crosscheck",
    "extract_source",
    "lint_function",
    "make_diagnostic",
    "merge_reports",
    "observe_lf",
    "observe_task_purity",
    "resolve_function",
]

#: Hazard code prefixes that disqualify an LF from pushdown compilation even
#: when its predicate shape matched: a nondeterministic, state-mutating, or
#: I/O-performing body cannot be replayed as a columnar expression.
_PUSHDOWN_HAZARD_PREFIXES = ("LF2", "LF3", "LF4")

#: Memoized :func:`analyze_lf` results keyed on the LF object itself (weakly,
#: so cached reports never keep dead suites alive) and, per object, on the
#: ``(cardinality, backend, probe_pickle)`` arguments.  Source resolution and
#: the AST passes are pure functions of the LF object, so apply→apply and
#: validate→pushdown reuse one pass instead of re-resolving source every time.
_ANALYSIS_CACHE: "weakref.WeakKeyDictionary[Any, dict]" = weakref.WeakKeyDictionary()


def clear_analysis_cache() -> None:
    """Drop every memoized :func:`analyze_lf` result (test isolation hook)."""
    _ANALYSIS_CACHE.clear()


def _lf_name_of(fn: Any) -> str:
    name = getattr(fn, "name", None)
    if isinstance(name, str) and name:
        return name
    return getattr(fn, "__name__", None) or type(fn).__name__


def analyze_lf(
    fn: Any,
    cardinality: Optional[int] = None,
    backend: Optional[str] = None,
    probe_pickle: bool = True,
) -> LFAnalysisResult:
    """Run every static check over one LF callable.

    Parameters
    ----------
    fn:
        The LF — a :class:`~repro.labeling.lf.LabelingFunction`, a plain
        function, a closure, or a callable instance.
    cardinality:
        Declared task cardinality for the label-range checks; defaults to
        the wrapper's ``cardinality`` attribute, else 2.
    backend:
        The executor backend the LF is about to run under, if known; only
        sharpens the picklability message (``"processes"``).
    probe_pickle:
        Run the ``pickle.dumps`` pre-flight probe (cheap; disable for pure
        source-level linting of already-imported suites).

    Results are memoized per LF *object* (see :data:`_ANALYSIS_CACHE`): the
    second analysis of the same suite under the same arguments returns the
    cached :class:`LFAnalysisResult` without touching source or AST again.
    """
    if cardinality is None:
        declared = getattr(fn, "cardinality", None)
        cardinality = int(declared) if isinstance(declared, int) else 2
    cache_key = (cardinality, backend, probe_pickle)
    try:
        per_fn = _ANALYSIS_CACHE.setdefault(fn, {})
    except TypeError:  # non-weakrefable callable (builtins, some C objects)
        per_fn = None
    if per_fn is not None and cache_key in per_fn:
        return per_fn[cache_key]
    lf_name = _lf_name_of(fn)
    info = extract_source(fn)
    diagnostics, inferred = lint_function(info, lf_name, cardinality=cardinality)
    result = LFAnalysisResult(
        lf_name=lf_name,
        diagnostics=diagnostics,
        inferred_labels=inferred,
        source_available=info.tree is not None,
    )
    result.pushdown = classify_pushdown(info)
    hazards = sorted(
        code for code in result.codes() if code.startswith(_PUSHDOWN_HAZARD_PREFIXES)
    )
    if hazards and result.pushdown.compilable:
        result.pushdown = PushdownVerdict(
            "OPAQUE", detail=f"predicate shape matched but hazards remain: {', '.join(hazards)}"
        )
    if probe_pickle:
        try:
            pickle.dumps(fn)
            result.picklable = True
        except Exception as exc:
            result.picklable = False
            hint = (
                "the processes backend relies on fork-side memory inheritance "
                "for this LF; spawn platforms will fail at pool startup"
                if backend == "processes"
                else "the processes backend under spawn (macOS/Windows) will "
                "fail at pool startup"
            )
            result.diagnostics.append(
                make_diagnostic(
                    "LF501",
                    f"pickling failed with {type(exc).__name__}: {exc}; {hint}",
                    lf_name=lf_name,
                )
            )
    if per_fn is not None:
        per_fn[cache_key] = result
    return result


def analyze_suite(
    lfs: Iterable[Any],
    cardinality: Optional[int] = None,
    backend: Optional[str] = None,
    probe_pickle: bool = True,
) -> AnalysisReport:
    """Analyze a whole LF suite into one :class:`AnalysisReport`."""
    report = AnalysisReport()
    for fn in lfs:
        report.results.append(
            analyze_lf(
                fn,
                cardinality=cardinality,
                backend=backend,
                probe_pickle=probe_pickle,
            )
        )
    return report
