"""The standalone LF linter: ``python -m repro.analysis <module_or_path>``.

Each target is either an importable module name
(``repro.datasets.lf_library``) or a path to a Python file
(``examples/quickstart.py``).  LFs are collected from the imported module:

* module-level :class:`~repro.labeling.lf.LabelingFunction` instances
  (including decorator-produced ones),
* module-level lists/tuples of them,
* a ``LINT_LFS`` hook — a sequence of LFs, or a zero-argument callable
  returning one — for modules whose LFs are built by parameterized
  factories (the library's own ``lf_library`` exposes a representative
  suite this way).  When present the hook is authoritative: module-level
  instances are NOT collected in addition, so a module can keep
  deliberately broken demonstration LFs out of its linted suite.

Exit status is 1 when any ERROR-severity diagnostic is found (or any
WARNING too, under ``--strict``), so the CI self-lint job fails the build
on a regression in our own LFs.
"""

from __future__ import annotations

import argparse
import importlib
import importlib.util
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.analysis import analyze_suite, check_engine_tasks
from repro.analysis.diagnostics import AnalysisReport, merge_reports
from repro.labeling.lf import LabelingFunction


def load_target(target: str):
    """Import a module by dotted name or file path."""
    path = Path(target)
    if path.suffix == ".py" and path.exists():
        module_name = f"_repro_lint_{path.stem}"
        spec = importlib.util.spec_from_file_location(module_name, path)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load {target!r}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        spec.loader.exec_module(module)
        return module
    return importlib.import_module(target)


def collect_lfs(module) -> List[LabelingFunction]:
    """Gather the LFs a module exposes for linting (see module docstring)."""
    collected: list[LabelingFunction] = []
    seen: set[int] = set()

    def add(candidates: Iterable) -> None:
        for lf in candidates:
            if isinstance(lf, LabelingFunction) and id(lf) not in seen:
                seen.add(id(lf))
                collected.append(lf)

    hook = getattr(module, "LINT_LFS", None)
    if callable(hook):
        add(hook())
        return collected
    if isinstance(hook, (list, tuple)):
        add(hook)
        return collected
    for name in sorted(vars(module)):
        value = vars(module)[name]
        if isinstance(value, LabelingFunction):
            add([value])
        elif isinstance(value, (list, tuple)) and value:
            add(value)
    return collected


def lint_targets(
    targets: Sequence[str],
    cardinality: int | None = None,
    engine_tasks: bool = False,
) -> tuple[AnalysisReport, list[str]]:
    """Analyze every target; returns (merged report, per-target summaries)."""
    reports = []
    summaries = []
    for target in targets:
        module = load_target(target)
        lfs = collect_lfs(module)
        report = analyze_suite(lfs, cardinality=cardinality)
        reports.append(report)
        summaries.append(f"{target}: {len(lfs)} LF(s), {report.compilable_count} compilable")
    if engine_tasks:
        reports.append(check_engine_tasks())
        summaries.append("engine chunk tasks: purity contract checked")
    return merge_reports(reports), summaries


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statically lint labeling-function modules.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="module names (repro.datasets.lf_library) or .py file paths",
    )
    parser.add_argument(
        "--cardinality",
        type=int,
        default=None,
        help="override the declared cardinality for label-range checks",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on WARNING-severity diagnostics too, not just errors",
    )
    parser.add_argument(
        "--engine-tasks",
        action="store_true",
        help="also check the built-in engine chunk tasks' purity contracts",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every LF's pushdown verdict, not only the diagnosed ones",
    )
    args = parser.parse_args(argv)

    report, summaries = lint_targets(
        args.targets, cardinality=args.cardinality, engine_tasks=args.engine_tasks
    )
    for summary in summaries:
        print(summary)
    print()
    print(report.format(verbose=args.verbose))
    failing = report.errors
    if args.strict:
        failing = failing + report.warnings
    if failing:
        threshold = "warning" if args.strict else "error"
        print(f"\nFAILED: {len(failing)} diagnostic(s) at or above {threshold} severity")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
