"""Purity contracts for engine chunk tasks.

A chunk task (:data:`repro.labeling.engine.executors.ChunkTask`) runs on
worker threads/processes with a shared ``payload`` — the LF suite, a fitted
featurizer, or a tuple of both.  The engine's determinism guarantee ("results
are bit-identical across backends") rests on tasks being *pure in the
payload*: a task may read the payload and the candidate chunk but must not
write to either, because under the threads executor those writes race and
under the processes executor each worker mutates its own copy and results
silently diverge from the sequential backend.

:func:`check_task` verifies that contract statically over a task function's
AST (``EN001`` payload mutation, ``EN002`` fitted-featurizer writes,
``EN003`` global/closure mutation), and
:class:`repro.analysis.runtime.PurityCheckedTask` is the debug-mode runtime
shim that cross-checks the verdict dynamically by fingerprinting the payload
around every chunk.
"""

from __future__ import annotations

import ast
from typing import Callable

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, LFAnalysisResult, make_diagnostic
from repro.analysis.lint import MUTATING_METHODS, FunctionScope, root_name
from repro.analysis.pushdown import PushdownVerdict
from repro.analysis.source import extract_source, is_unresolved

#: Parameter-name fragments identifying the fitted-featurizer part of a
#: payload (writes to it get the more specific ``EN002``).
_FEATURIZER_HINTS = ("featurizer", "vectorizer")

#: Method calls on the payload that are reads with internal validation, not
#: state writes.
_ALLOWED_PAYLOAD_CALLS = {"require_fitted", "candidate_entries", "transform", "get", "items"}


class _TaskContractVisitor(ast.NodeVisitor):
    def __init__(self, scope: FunctionScope, task_name: str) -> None:
        self.scope = scope
        self.task_name = task_name
        self.diagnostics: list[Diagnostic] = []
        # Every parameter except the bookkeeping scalars is contract-guarded:
        # the payload (first param) and the candidates chunk (last param).
        params = scope.params
        excluded = ("fault_tolerant", "index", "start_row")
        self.guarded = {name for name in params if name not in excluded}

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        diagnostic = make_diagnostic(
            code, message, lf_name=self.task_name, lineno=getattr(node, "lineno", None)
        )
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def _code_for(self, name: str) -> str:
        if any(hint in name.lower() for hint in _FEATURIZER_HINTS):
            return "EN002"
        return "EN001"

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.scope.global_decls:
                self._emit("EN003", f"assignment to global {target.id!r}", target)
            elif target.id in self.scope.nonlocal_decls:
                self._emit("EN003", f"assignment to nonlocal {target.id!r}", target)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            name = root_name(target)
            if name is None:
                return
            if name in self.guarded:
                kind = "attribute" if isinstance(target, ast.Attribute) else "item"
                self._emit(
                    self._code_for(name),
                    f"{kind} store into task parameter {name!r}; chunk tasks "
                    "must treat the payload and candidates as read-only",
                    target,
                )
            elif self.scope.kind(name) in ("free", "global"):
                value = self.scope.info.resolve_name(name)
                if (
                    not is_unresolved(value)
                    and type(value).__name__ != "module"
                    and not callable(value)
                ):
                    self._emit("EN003", f"store into shared object {name!r}", target)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            name = root_name(func.value)
            if name is not None and name in self.guarded:
                self._emit(
                    self._code_for(name),
                    f".{func.attr}() mutates task parameter {name!r}",
                    node,
                )
        self.generic_visit(node)


def check_task(task: Callable) -> LFAnalysisResult:
    """Statically verify one chunk task against the purity contract."""
    info = extract_source(task)
    name = getattr(task, "__name__", repr(task))
    result = LFAnalysisResult(
        lf_name=name,
        pushdown=PushdownVerdict("OPAQUE", detail="chunk tasks are not pushdown candidates"),
        source_available=info.tree is not None,
    )
    if info.tree is None:
        result.diagnostics.append(
            make_diagnostic(
                "LF001" if info.failure == "unavailable" else "LF002",
                "task source unavailable; purity contract not statically checkable",
                lf_name=name,
            )
        )
        return result
    scope = FunctionScope(info)
    visitor = _TaskContractVisitor(scope, name)
    visitor.visit(info.tree)
    result.diagnostics.extend(visitor.diagnostics)
    return result


def check_engine_tasks() -> AnalysisReport:
    """Check every built-in engine chunk task; used by CI's self-lint.

    :func:`~repro.labeling.engine.runtime.run_attached_chunk` is included
    because it is the persistent worker pool's dispatch kernel: every task
    a worker executes flows through it with the attached spec as payload,
    so it must honor the same read-only contract as the tasks it wraps.
    """
    from repro.labeling.engine.accumulator import apply_chunk
    from repro.labeling.engine.runtime import run_attached_chunk
    from repro.labeling.engine.tasks import featurize_chunk, label_and_featurize_chunk

    report = AnalysisReport()
    for task in (
        apply_chunk,
        featurize_chunk,
        label_and_featurize_chunk,
        run_attached_chunk,
    ):
        report.results.append(check_task(task))
    return report
