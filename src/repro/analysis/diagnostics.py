"""Diagnostic codes, severities, and reports for the LF static analyzer.

Every finding the analyzer emits is a :class:`Diagnostic` carrying a stable
``LF###`` / ``EN###`` code (so tests and CI gates can match on classes of
problems rather than message text), a :class:`Severity`, a human-readable
message, and — when known — the LF name and source line it anchors to.

The code space is partitioned by hundreds:

* ``LF0xx`` — analysis limitations (source unavailable / unparsable);
* ``LF1xx`` — label-range and abstention-convention findings;
* ``LF2xx`` — nondeterminism (unseeded randomness, clocks, entropy);
* ``LF3xx`` — shared-state hazards (global/closure mutation, candidate or
  LF-instance mutation — thread hazards under the pool executors);
* ``LF4xx`` — I/O in the per-candidate hot path;
* ``LF5xx`` — serialization hazards for the processes backend;
* ``EN0xx`` — engine chunk-task purity-contract violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


class Severity(enum.IntEnum):
    """Severity ladder; ordering is meaningful (ERROR > WARNING > INFO)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.name.lower()


#: Registry of every code the analyzer can emit: ``code -> (default
#: severity, short title)``.  :func:`make_diagnostic` looks defaults up here
#: so emit sites stay terse and severities stay consistent.
CODES: dict[str, tuple[Severity, str]] = {
    "LF001": (Severity.INFO, "source unavailable; static analysis skipped"),
    "LF002": (Severity.INFO, "source could not be parsed; static analysis skipped"),
    "LF101": (Severity.ERROR, "label constant outside the declared cardinality range"),
    "LF102": (Severity.WARNING, "LF has no abstention path (labels every candidate)"),
    "LF103": (Severity.WARNING, "LF never emits a label (always abstains)"),
    "LF201": (Severity.ERROR, "unseeded random source"),
    "LF202": (Severity.WARNING, "clock/time dependence"),
    "LF203": (Severity.ERROR, "entropy source (os.urandom/uuid/secrets)"),
    "LF204": (Severity.WARNING, "hash()/id() dependence (varies across processes)"),
    "LF301": (Severity.ERROR, "mutates global state"),
    "LF302": (Severity.WARNING, "mutates closure/nonlocal state"),
    "LF303": (Severity.WARNING, "mutates its candidate argument"),
    "LF304": (Severity.WARNING, "mutates LF instance state (self)"),
    "LF401": (Severity.WARNING, "I/O call in the per-candidate hot path"),
    "LF501": (Severity.WARNING, "LF is not picklable"),
    "EN001": (Severity.ERROR, "chunk task mutates its payload"),
    "EN002": (Severity.ERROR, "chunk task writes to fitted featurizer state"),
    "EN003": (Severity.ERROR, "chunk task mutates global state"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    lf_name: Optional[str] = None
    lineno: Optional[int] = None

    def format(self) -> str:
        """Render as ``name:line: CODE severity: message``."""
        location = self.lf_name or "<anonymous>"
        if self.lineno is not None:
            location = f"{location}:{self.lineno}"
        return f"{location}: {self.code} {self.severity}: {self.message}"


def make_diagnostic(
    code: str,
    message: str,
    lf_name: Optional[str] = None,
    lineno: Optional[int] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting the severity from :data:`CODES`."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}")
    default_severity, _title = CODES[code]
    return Diagnostic(
        code=code,
        severity=default_severity if severity is None else severity,
        message=message,
        lf_name=lf_name,
        lineno=lineno,
    )


@dataclass(frozen=True)
class PredicatePayload:
    """One predicate site the pushdown classifier extracted from an LF body.

    The structured half of a ``COMPILABLE`` verdict: ``shape`` names the
    predicate shape the site matched, ``description`` is the source
    expression involved (best effort), and ``constant`` is the resolved
    closure/global value the site compares against when the classifier
    could bind one — a compiled ``re.Pattern`` for ``regex_match``, the
    keyword/pair container for ``membership``, the numeric bound for
    ``threshold_compare``, and so on.  Payloads are what the compiler
    backend (:mod:`repro.labeling.pushdown`) reports and plans from;
    control flow is still recovered from the AST itself.
    """

    shape: str
    description: str = ""
    constant: Any = None
    lineno: Optional[int] = None


@dataclass(frozen=True)
class PushdownVerdict:
    """Outcome of the pushdown-compilability classification of one LF.

    ``status`` is ``"COMPILABLE"`` when the LF's body falls inside the
    declarative subset (see :mod:`repro.analysis.pushdown`), in which case
    ``shape`` names the matched shape (``"regex_match"``,
    ``"membership"``, ``"threshold_compare"``, ``"field_equality"``,
    ``"field_projection"``, or ``"constant"``) and ``predicates`` carries
    one :class:`PredicatePayload` per predicate site, with the resolved
    constants a compiler backend evaluates against; otherwise ``status``
    is ``"OPAQUE"`` and ``detail`` says which construct broke
    compilability.
    """

    status: str
    shape: Optional[str] = None
    detail: str = ""
    predicates: tuple = ()

    @property
    def compilable(self) -> bool:
        return self.status == "COMPILABLE"


@dataclass
class LFAnalysisResult:
    """Everything the analyzer concluded about one LF."""

    lf_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    pushdown: PushdownVerdict = field(
        default_factory=lambda: PushdownVerdict("OPAQUE", detail="not analyzed")
    )
    #: Labels provably emittable by the LF, when return-value constant
    #: propagation covered *every* return path; ``None`` when at least one
    #: return expression could not be resolved statically (range checks are
    #: then limited to the constants that were resolved).
    inferred_labels: Optional[frozenset[int]] = None
    source_available: bool = False
    #: ``pickle.dumps`` probe outcome; ``None`` when the probe was skipped.
    picklable: Optional[bool] = None

    def codes(self) -> set[str]:
        return {diagnostic.code for diagnostic in self.diagnostics}

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(diagnostic.severity for diagnostic in self.diagnostics)

    @property
    def clean(self) -> bool:
        """True when no diagnostics at all were emitted."""
        return not self.diagnostics


@dataclass
class AnalysisReport:
    """Aggregated analyzer output over one LF suite."""

    results: list[LFAnalysisResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[LFAnalysisResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [d for result in self.results for d in result.diagnostics]

    def with_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def result_for(self, lf_name: str) -> LFAnalysisResult:
        for result in self.results:
            if result.lf_name == lf_name:
                return result
        raise KeyError(f"no analysis result for LF {lf_name!r}")

    @property
    def compilable_count(self) -> int:
        return sum(1 for result in self.results if result.pushdown.compilable)

    def format(self, verbose: bool = False) -> str:
        """Human-readable multi-line report (the CLI's output body)."""
        lines: list[str] = []
        for result in self.results:
            verdict = result.pushdown
            shape = f" [{verdict.shape}]" if verdict.shape else ""
            if verbose or result.diagnostics:
                lines.append(f"{result.lf_name}: {verdict.status}{shape}")
            for diagnostic in result.diagnostics:
                lines.append(f"  {diagnostic.format()}")
        lines.append(
            f"{len(self.results)} LF(s): {self.compilable_count} compilable, "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def merge_reports(reports: Iterable[AnalysisReport]) -> AnalysisReport:
    """Concatenate several per-suite reports into one."""
    merged = AnalysisReport()
    for report in reports:
        merged.results.extend(report.results)
    return merged
