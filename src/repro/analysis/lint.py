"""AST lint passes over labeling-function bodies.

:func:`lint_function` runs every static check on one :class:`SourceInfo`:

* **Label-range inference** — constant propagation over every ``return``
  expression (constants, names bound to constants, closure/global integer
  cells, conditional expressions, boolean results) checked against the
  declared cardinality and the abstention conventions (``LF101``/``LF102``/
  ``LF103``).  Inference is deliberately conservative: range/abstention
  conclusions that need *complete* knowledge are only drawn when every
  return path resolved, so partially-analyzable LFs produce no noise.
* **Nondeterminism** — unseeded ``random`` / ``numpy.random`` draws
  (``LF201``), clock reads (``LF202``), entropy sources (``LF203``), and
  ``hash()``/``id()`` dependence (``LF204``).  Call targets are resolved
  through the closure and module globals to the defining module when
  possible, with a textual fallback for unresolvable roots so aliased
  imports still match.
* **Shared-state hazards** — ``global``-declared stores and mutation of
  module-level objects (``LF301``), ``nonlocal`` stores and mutation of
  closure cells (``LF302``), candidate-argument mutation (``LF303``), and
  LF-instance (``self``) mutation (``LF304``) — the hazards that make an LF
  unsafe under the threads executor and divergent under the processes one.
* **I/O in the hot path** — file, process, and network calls that run once
  per candidate (``LF401``).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.analysis.source import SourceInfo, is_unresolved

#: ``random``-module attributes that do *not* constitute an unseeded draw.
_RANDOM_SAFE = {"seed", "getstate", "setstate", "Random", "SystemRandom"}

#: ``numpy.random`` attributes that are constructors, not draws; calling one
#: *without arguments* is still an unseeded source.
_NUMPY_RANDOM_CONSTRUCTORS = {"default_rng", "RandomState", "Generator", "SeedSequence"}

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "clock_gettime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_ENTROPY_CALLS = {
    ("os", "urandom"),
    ("os", "getrandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

_IO_MODULES = {
    "subprocess",
    "requests",
    "urllib",
    "urllib.request",
    "socket",
    "http",
    "http.client",
    "shutil",
    "sqlite3",
}

_OS_IO_ATTRS = {
    "system",
    "popen",
    "remove",
    "unlink",
    "rename",
    "makedirs",
    "mkdir",
    "rmdir",
    "listdir",
    "scandir",
    "stat",
}

_PATH_IO_ATTRS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
    "open",
    "unlink",
    "mkdir",
    "touch",
    "glob",
    "iterdir",
    "exists",
}

_IO_BUILTINS = {"open", "input", "print"}

#: Method names whose call mutates the receiver in place.
MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "clear",
    "sort",
    "reverse",
    "add",
    "discard",
    "update",
    "setdefault",
    "popitem",
    "appendleft",
    "extendleft",
    "rotate",
    "__setitem__",
    "__delitem__",
}


def dotted_chain(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name-rooted bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an attribute/subscript chain, or ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class FunctionScope:
    """Name classification for one analyzed function body."""

    def __init__(self, info: SourceInfo) -> None:
        self.info = info
        tree = info.tree
        self.params: list[str] = info.parameters
        self.global_decls: set[str] = set()
        self.nonlocal_decls: set[str] = set()
        self.local_stores: set[str] = set()
        function = info.function
        code = getattr(function, "__code__", None)
        self.freevars: set[str] = set(code.co_freevars) if code is not None else set()
        if tree is not None:
            for node in ast.walk(tree):
                if isinstance(node, ast.Global):
                    self.global_decls.update(node.names)
                elif isinstance(node, ast.Nonlocal):
                    self.nonlocal_decls.update(node.names)
                elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                    if node.id not in self.global_decls | self.nonlocal_decls:
                        self.local_stores.add(node.id)
        # AST-derived closure view for functions analyzed without a live
        # code object (e.g. contract checks over plain module functions).
        self.freevars |= self.nonlocal_decls

    @property
    def candidate_param(self) -> Optional[str]:
        """The per-candidate argument: the first non-``self`` parameter."""
        params = [name for name in self.params if name != "self"]
        return params[0] if params else None

    @property
    def self_param(self) -> Optional[str]:
        return "self" if "self" in self.params else None

    def is_local(self, name: str) -> bool:
        return name in self.params or name in self.local_stores

    def kind(self, name: str) -> str:
        """Classify a name: ``param``/``self``/``local``/``free``/``global``."""
        if name == self.self_param:
            return "self"
        if name in self.params:
            return "param"
        if name in self.nonlocal_decls or (name in self.freevars and name not in self.local_stores):
            return "free"
        if name in self.global_decls:
            return "global"
        if name in self.local_stores:
            return "local"
        return "global"


class _LintVisitor(ast.NodeVisitor):
    """Single-pass emitter for the nondeterminism / mutation / I/O checks."""

    def __init__(self, info: SourceInfo, scope: FunctionScope, lf_name: str) -> None:
        self.info = info
        self.scope = scope
        self.lf_name = lf_name
        self.diagnostics: list[Diagnostic] = []
        # Constants bound to local names by simple single assignments, used
        # by the return-range inference (name -> frozenset of ints, or None
        # once the name is reassigned to something unresolvable).
        self.local_constants: dict[str, Optional[frozenset[int]]] = {}

    # ------------------------------------------------------------------ utils
    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        diagnostic = make_diagnostic(
            code, message, lf_name=self.lf_name, lineno=getattr(node, "lineno", None)
        )
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def _resolve_module_of(self, name: str) -> Optional[str]:
        """``__name__`` of the module object bound to ``name``, if any."""
        value = self.info.resolve_name(name)
        if is_unresolved(value):
            return None
        module_name = getattr(value, "__name__", None)
        if module_name is not None and type(value).__name__ == "module":
            return module_name
        return None

    def _is_builtin(self, name: str) -> bool:
        """True when ``name`` is the unshadowed builtin of that name."""
        if self.scope.is_local(name) or name in self.scope.freevars:
            return False
        value = self.info.resolve_name(name)
        if is_unresolved(value):
            return True  # undefined name: assume the builtin was intended
        import builtins

        return value is getattr(builtins, name, None)

    # ------------------------------------------------------------------ calls
    def visit_Call(self, node: ast.Call) -> None:
        chain = dotted_chain(node.func)
        if chain is not None:
            self._check_call_chain(node, chain)
        self._check_mutating_method(node)
        self.generic_visit(node)

    def _check_call_chain(self, node: ast.Call, chain: list[str]) -> None:
        root, attrs = chain[0], chain[1:]
        if not attrs:
            self._check_bare_call(node, root)
            return
        if self.scope.is_local(root):
            return  # method call on a parameter or local: candidate access
        module = self._resolve_module_of(root)
        # Resolve one attribute deeper when the root is a package whose
        # submodule carries the draw (numpy.random, urllib.request, ...).
        submodule = None
        if module is not None and len(attrs) >= 2:
            inner = getattr(self.info.resolve_name(root), attrs[0], None)
            if type(inner).__name__ == "module":
                submodule = getattr(inner, "__name__", None)
        leaf = attrs[-1]
        dotted = ".".join(chain)

        if self._matches_random(module, submodule, dotted, attrs):
            if leaf in _NUMPY_RANDOM_CONSTRUCTORS or leaf == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        "LF201",
                        f"{dotted}() constructs an unseeded generator; pass an "
                        "explicit seed so every run draws the same stream",
                        node,
                    )
                return
            if module == "random" and leaf in _RANDOM_SAFE:
                return
            self._emit(
                "LF201",
                f"call to {dotted} draws from a shared unseeded RNG; labels "
                "will differ between runs and across executor backends",
                node,
            )
            return
        if (root, leaf) in _CLOCK_CALLS or (
            module in ("time", "datetime") and (module, leaf) in _CLOCK_CALLS
        ):
            self._emit(
                "LF202",
                f"call to {dotted} makes the label depend on the clock",
                node,
            )
            return
        if (root, leaf) in _ENTROPY_CALLS or module == "secrets":
            self._emit(
                "LF203",
                f"call to {dotted} reads an OS entropy source",
                node,
            )
            return
        self._check_io_chain(node, root, attrs, module, dotted)

    def _matches_random(
        self,
        module: Optional[str],
        submodule: Optional[str],
        dotted: str,
        attrs: list[str],
    ) -> bool:
        if module == "random":
            return True
        if module is not None and module.startswith("numpy") and attrs[0] == "random":
            return True
        if submodule is not None and submodule.startswith("numpy.random"):
            return True
        if module is None:
            # Unresolvable root: fall back to the conventional spellings.
            return (
                dotted.startswith("random.")
                or dotted.startswith("np.random.")
                or dotted.startswith("numpy.random.")
            )
        return False

    def _check_bare_call(self, node: ast.Call, name: str) -> None:
        if name in ("hash", "id") and self._is_builtin(name):
            self._emit(
                "LF204",
                f"{name}() output varies across interpreter runs "
                "(PYTHONHASHSEED / address layout); derive the label from "
                "stable candidate fields instead",
                node,
            )
        elif name in _IO_BUILTINS and self._is_builtin(name):
            self._emit(
                "LF401",
                f"{name}() runs once per candidate; hoist I/O out of the LF "
                "or precompute the resource",
                node,
            )

    def _check_io_chain(
        self,
        node: ast.Call,
        root: str,
        attrs: list[str],
        module: Optional[str],
        dotted: str,
    ) -> None:
        leaf = attrs[-1]
        if module == "os" and leaf in _OS_IO_ATTRS:
            self._emit("LF401", f"call to {dotted} performs I/O per candidate", node)
            return
        if module is not None and (module in _IO_MODULES or module.split(".")[0] in _IO_MODULES):
            self._emit("LF401", f"call to {dotted} performs I/O per candidate", node)
            return
        if module is None and root in _IO_MODULES and not self.scope.is_local(root):
            self._emit("LF401", f"call to {dotted} performs I/O per candidate", node)
            return
        value = self.info.resolve_name(root)
        path_types = ("Path", "PosixPath", "WindowsPath")
        if not is_unresolved(value) and type(value).__name__ in path_types:
            if leaf in _PATH_IO_ATTRS:
                self._emit("LF401", f"call to {dotted} performs I/O per candidate", node)

    # -------------------------------------------------------------- mutation
    def _mutation_code(self, name: str) -> Optional[tuple[str, str]]:
        kind = self.scope.kind(name)
        if kind == "global":
            value = self.info.resolve_name(name)
            if is_unresolved(value):
                return None
            if type(value).__name__ == "module":
                return None  # module attribute writes are caught via stores
            return ("LF301", f"module-level object {name!r}")
        if kind == "free":
            return ("LF302", f"closure variable {name!r}")
        if kind == "param":
            if name == self.scope.candidate_param:
                return ("LF303", f"candidate argument {name!r}")
            return None
        if kind == "self":
            return ("LF304", "LF instance state (self)")
        return None

    def _check_mutating_method(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
            return
        name = root_name(func.value)
        if name is None:
            return
        target = self._mutation_code(name)
        if target is not None:
            code, what = target
            self._emit(
                code,
                f".{func.attr}() mutates {what}; shared state diverges under "
                "the threads/processes executors",
                node,
            )

    def _check_store_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.scope.global_decls:
                self._emit(
                    "LF301",
                    f"assignment to global {target.id!r}; worker processes "
                    "each mutate their own copy and runs diverge",
                    target,
                )
            elif target.id in self.scope.nonlocal_decls:
                self._emit(
                    "LF302",
                    f"assignment to nonlocal {target.id!r} mutates closure "
                    "state shared across candidates",
                    target,
                )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            name = root_name(target)
            if name is None:
                return
            result = self._mutation_code(name)
            if result is not None:
                code, what = result
                kind = "attribute" if isinstance(target, ast.Attribute) else "item"
                self._emit(code, f"{kind} store into {what}", target)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store_target(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self._track_local_constant(node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target)
        self.generic_visit(node)

    # ---------------------------------------------- local constant tracking
    def _track_local_constant(self, node: ast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        values = _eval_label_expr(node.value, self.info, {})
        if name in self.local_constants or values is None:
            # Reassignment (or unresolvable value) invalidates the binding.
            self.local_constants[name] = None
        else:
            self.local_constants[name] = values


def _eval_label_expr(
    node: ast.AST,
    info: SourceInfo,
    local_constants: dict[str, Optional[frozenset[int]]],
) -> Optional[frozenset[int]]:
    """Possible integer label values of an expression, or ``None`` if unknown.

    ``None``/``True``/``False`` follow the canonicalization of
    :class:`repro.labeling.lf.LabelingFunction`: abstain / +1 / -1.
    """
    if isinstance(node, ast.Constant):
        value = node.value
        if value is None:
            return frozenset({0})
        if value is True:
            return frozenset({1})
        if value is False:
            return frozenset({-1})
        if isinstance(value, int):
            return frozenset({int(value)})
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = _eval_label_expr(node.operand, info, local_constants)
        if inner is None:
            return None
        sign = -1 if isinstance(node.op, ast.USub) else 1
        return frozenset(sign * value for value in inner)
    if isinstance(node, ast.Name):
        if node.id in local_constants:
            return local_constants[node.id]
        value = info.resolve_name(node.id)
        if is_unresolved(value):
            return None
        if value is None:
            return frozenset({0})
        if value is True:
            return frozenset({1})
        if value is False:
            return frozenset({-1})
        if isinstance(value, int):
            return frozenset({int(value)})
        return None
    if isinstance(node, ast.IfExp):
        body = _eval_label_expr(node.body, info, local_constants)
        orelse = _eval_label_expr(node.orelse, info, local_constants)
        if body is None or orelse is None:
            return None
        return body | orelse
    if isinstance(node, (ast.Compare,)):
        # A comparison result canonicalizes True -> +1, False -> -1.
        return frozenset({1, -1})
    if isinstance(node, ast.BoolOp):
        values: frozenset[int] = frozenset()
        for operand in node.values:
            inner = _eval_label_expr(operand, info, local_constants)
            if inner is None:
                return None
            values |= inner
        return values
    return None


def _iter_own_returns(tree: ast.AST) -> Iterable[ast.Return]:
    """``Return`` nodes of this function, not of nested function definitions."""
    stack = list(getattr(tree, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _falls_off_end(tree: ast.AST) -> bool:
    """Conservatively: can control flow reach the implicit ``return None``?

    True unless the final top-level statement is a ``return`` or ``raise``
    (an ``if``/``else`` whose branches all return also counts, one level
    deep — enough for real LF bodies without building a CFG).
    """
    body = getattr(tree, "body", None)
    if not body:
        return True
    return not _always_exits(body[-1])


def _always_exits(node: ast.stmt) -> bool:
    if isinstance(node, (ast.Return, ast.Raise)):
        return True
    if isinstance(node, ast.If):
        if not node.orelse:
            return False
        return _always_exits_block(node.body) and _always_exits_block(node.orelse)
    if isinstance(node, ast.Try):
        if node.finalbody and _always_exits_block(node.finalbody):
            return True
        if not _always_exits_block(node.body):
            return False
        return all(_always_exits_block(handler.body) for handler in node.handlers)
    return False


def _always_exits_block(body: list[ast.stmt]) -> bool:
    return bool(body) and _always_exits(body[-1])


def infer_labels(
    info: SourceInfo,
    local_constants: dict[str, Optional[frozenset[int]]],
) -> tuple[Optional[frozenset[int]], frozenset[int], bool]:
    """Return-range inference over one function body.

    Returns ``(complete, partial, has_abstain_path)`` where ``complete`` is
    the full label set when *every* return path resolved (else ``None``),
    ``partial`` is the union of the paths that did resolve (for range
    checks), and ``has_abstain_path`` is True when an abstention
    (``return None`` / fall-off) is provably reachable.
    """
    tree = info.tree
    if isinstance(tree, ast.Lambda):
        values = _eval_label_expr(tree.body, info, local_constants)
        if values is None:
            return None, frozenset(), False
        return values, values, 0 in values
    resolved: frozenset[int] = frozenset()
    complete = True
    for node in _iter_own_returns(tree):
        if node.value is None:
            resolved |= frozenset({0})
            continue
        values = _eval_label_expr(node.value, info, local_constants)
        if values is None:
            complete = False
            continue
        resolved |= values
    if _falls_off_end(tree):
        resolved |= frozenset({0})
    has_abstain = 0 in resolved
    return (resolved if complete else None), resolved, has_abstain


def lint_function(
    info: SourceInfo,
    lf_name: str,
    cardinality: int = 2,
) -> tuple[list[Diagnostic], Optional[frozenset[int]]]:
    """Run every AST check; return (diagnostics, complete label set or None)."""
    if info.tree is None:
        code = "LF001" if info.failure == "unavailable" else "LF002"
        return (
            [
                make_diagnostic(
                    code,
                    "static checks skipped; only runtime probes apply",
                    lf_name=lf_name,
                )
            ],
            None,
        )
    scope = FunctionScope(info)
    visitor = _LintVisitor(info, scope, lf_name)
    visitor.visit(info.tree)
    diagnostics = visitor.diagnostics

    complete, partial, has_abstain = infer_labels(info, visitor.local_constants)
    valid = _valid_labels(cardinality)
    bad = sorted(value for value in partial if value not in valid)
    if bad:
        diagnostics.append(
            make_diagnostic(
                "LF101",
                f"returns label(s) {bad} outside the declared cardinality-"
                f"{cardinality} range {sorted(valid)}",
                lf_name=lf_name,
                lineno=getattr(info.tree, "lineno", None),
            )
        )
    elif complete is not None:
        if not has_abstain:
            diagnostics.append(
                make_diagnostic(
                    "LF102",
                    "every return path emits a label; an LF that cannot "
                    "abstain forces a vote on every candidate",
                    lf_name=lf_name,
                    lineno=getattr(info.tree, "lineno", None),
                )
            )
        if complete <= {0}:
            diagnostics.append(
                make_diagnostic(
                    "LF103",
                    "every return path abstains; the LF contributes no labels",
                    lf_name=lf_name,
                    lineno=getattr(info.tree, "lineno", None),
                )
            )
    return diagnostics, complete


def _valid_labels(cardinality: int) -> frozenset[int]:
    if cardinality == 2:
        return frozenset({-1, 0, 1})
    return frozenset(range(0, cardinality + 1))
