"""The pushdown-compilability classifier.

Decides, per LF, whether the body falls inside the *declarative subset* that
the relational-pushdown roadmap item can compile to vectorized columnar
execution — and if so, which shape it matched.  The contract:

* A ``COMPILABLE`` verdict means the LF's label is a pure function of (a)
  candidate field accesses, (b) closure-held constants (compiled regexes,
  keyword/pair sets, numeric thresholds), and (c) a small allowlist of pure
  builtins/helpers — with control flow limited to conditionals, loops over
  candidate-derived sequences, and comprehensions.  Such an LF can be
  evaluated for a whole chunk at once without entering per-candidate Python.
* The ``shape`` names the dominant predicate so a compiler backend can pick
  its plan: ``regex_match`` (closure ``re.Pattern`` applied to candidate
  text), ``membership`` (keyword / dictionary / phrase containment against a
  closure container), ``threshold_compare`` (candidate-derived number vs. a
  constant), ``field_equality`` (candidate field vs. constant),
  ``field_projection`` (the label *is* a candidate field), or ``constant``.
  Each predicate site additionally contributes a
  :class:`~repro.analysis.diagnostics.PredicatePayload` (the source
  expression plus the resolved pattern / container / bound constant), so
  the compiler backend can report and plan without re-resolving closures.
* ``OPAQUE`` means at least one construct escapes the subset; ``detail``
  names the first offender.  Opaque callables (weak classifiers, arbitrary
  globals) are the canonical cause.

Verdicts must agree with runtime behavior: :mod:`repro.analysis.runtime`
cross-checks that a COMPILABLE LF is observationally pure and deterministic
on synthetic candidates.
"""

from __future__ import annotations

import ast
import builtins as _builtins
import re
from typing import Any, Optional

from repro.analysis.diagnostics import PredicatePayload, PushdownVerdict
from repro.analysis.lint import FunctionScope, dotted_chain, root_name
from repro.analysis.source import SourceInfo, is_unresolved

#: Pure builtins a compilable LF may call.
_PURE_BUILTINS = {
    "len",
    "any",
    "all",
    "int",
    "float",
    "str",
    "bool",
    "abs",
    "min",
    "max",
    "sum",
    "sorted",
    "tuple",
    "list",
    "set",
    "frozenset",
    "dict",
    "enumerate",
    "range",
    "zip",
    "round",
    "isinstance",
    "repr",
}

#: Pure helper functions (by ``module.qualname``) the compiler backend knows
#: how to vectorize, with the signal shape each one implies (``None`` = no
#: shape of its own).
_PURE_HELPERS: dict[tuple[str, str], Optional[str]] = {
    ("repro.utils.textutils", "normalize"): None,
    ("repro.labeling.declarative", "_contains_phrase"): "membership",
}

_REGEX_METHODS = {"search", "match", "fullmatch", "findall", "finditer"}

#: Statement types a compilable body may contain.
_ALLOWED_STATEMENTS = (
    ast.FunctionDef,
    ast.Return,
    ast.If,
    ast.Assign,
    ast.AnnAssign,
    ast.For,
    ast.Raise,
    ast.Pass,
    ast.Expr,
    ast.Break,
    ast.Continue,
)

#: Shape priority when several predicates appear in one body.
_SHAPE_ORDER = [
    "regex_match",
    "membership",
    "threshold_compare",
    "field_equality",
    "field_projection",
    "constant",
]


class _PushdownVisitor(ast.NodeVisitor):
    def __init__(self, info: SourceInfo, scope: FunctionScope) -> None:
        self.info = info
        self.scope = scope
        self.signals: set[str] = set()
        self.predicates: list[PredicatePayload] = []
        self.opaque_reasons: list[str] = []

    # ------------------------------------------------------------------ utils
    def _opaque(self, reason: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", None)
        if lineno is not None:
            reason = f"{reason} (line {lineno})"
        self.opaque_reasons.append(reason)

    def _signal(self, shape: str, node: ast.AST, constant: Any = None) -> None:
        """Record a predicate site: the shape signal plus its payload."""
        self.signals.add(shape)
        try:
            description = ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on our subset
            description = type(node).__name__
        self.predicates.append(
            PredicatePayload(
                shape=shape,
                description=description,
                constant=constant,
                lineno=getattr(node, "lineno", None),
            )
        )

    def _resolve(self, name: str) -> Any:
        return self.info.resolve_name(name)

    def _involves_candidate(self, node: ast.AST) -> bool:
        """True when the expression reads the candidate (or locals/self)."""
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                kind = self.scope.kind(child.id)
                if kind in ("param", "local", "self"):
                    return True
        return False

    # ------------------------------------------------------------- statements
    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt) and not isinstance(node, _ALLOWED_STATEMENTS):
            self._opaque(f"statement {type(node).__name__} is outside the subset", node)
            return
        if isinstance(node, (ast.Lambda, ast.Await, ast.Yield, ast.YieldFrom, ast.NamedExpr)):
            self._opaque(f"expression {type(node).__name__} is outside the subset", node)
            return
        super().generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.info.tree:
            self._opaque("nested function definition", node)
            return
        for statement in node.body:
            self.visit(statement)

    # ------------------------------------------------------------------ calls
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        else:
            self._opaque("call through a computed callable", node)
        for argument in node.args:
            self.visit(argument)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _check_name_call(self, node: ast.Call, name: str) -> None:
        if self.scope.is_local(name):
            self._opaque(f"calls locally-bound callable {name!r}", node)
            return
        value = self._resolve(name)
        if is_unresolved(value):
            self._opaque(f"calls unresolvable callable {name!r}", node)
            return
        if name in _PURE_BUILTINS and value is getattr(_builtins, name, None):
            return
        if isinstance(value, type) and issubclass(value, BaseException):
            return  # raising is allowed; the exception constructor is pure
        helper_key = (getattr(value, "__module__", ""), getattr(value, "__qualname__", ""))
        if helper_key in _PURE_HELPERS:
            shape = _PURE_HELPERS[helper_key]
            if shape is not None:
                constant = self._closure_value(node.args[1]) if len(node.args) > 1 else None
                self._signal(shape, node, constant)
            return
        self._opaque(f"calls opaque callable {name!r}", node)

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = root_name(func.value)
        if base is None:
            self._opaque("method call on a computed object", node)
            return
        kind = self.scope.kind(base)
        if kind in ("param", "local", "self"):
            # Candidate accessors and string methods on candidate-derived
            # locals: the columnar backend maps these to column expressions.
            return
        value = self._resolve(base)
        if is_unresolved(value):
            chain = dotted_chain(func) or [base, func.attr]
            self._opaque(f"calls unresolvable {'.'.join(chain)}", node)
            return
        resolved = _resolve_attribute_base(value, func.value)
        if isinstance(resolved, re.Pattern) and func.attr in _REGEX_METHODS:
            self._signal("regex_match", node, resolved)
            return
        if isinstance(resolved, str):
            return  # pure string-method call on a closure constant
        chain = dotted_chain(func) or [base, func.attr]
        self._opaque(f"calls opaque callable {'.'.join(chain)}", node)

    # ------------------------------------------------------------ comparisons
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.In, ast.NotIn)):
                self._check_membership(left, right, node)
            elif isinstance(op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE)):
                self._check_threshold(left, right, node)
            elif isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_equality(left, right, node)
        self.generic_visit(node)

    def _closure_value(self, node: ast.AST) -> Any:
        """The closure/global constant an operand denotes, if any."""
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name) and self.scope.kind(node.id) in ("free", "global"):
            value = self._resolve(node.id)
            if not is_unresolved(value):
                return value
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = self._closure_value(node.operand)
            if isinstance(inner, (int, float)):
                return -inner
        return None

    def _check_membership(self, member: ast.AST, container: ast.AST, node: ast.AST) -> None:
        value = self._closure_value(container)
        if isinstance(value, (set, frozenset, dict, tuple, list)) and self._involves_candidate(
            member
        ):
            self._signal("membership", node, value)

    def _check_threshold(self, left: ast.AST, right: ast.AST, node: ast.AST) -> None:
        for probe, bound in ((left, right), (right, left)):
            value = self._closure_value(bound)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if self._involves_candidate(probe):
                    self._signal("threshold_compare", node, value)
                    return

    def _check_equality(self, left: ast.AST, right: ast.AST, node: ast.AST) -> None:
        for probe, bound in ((left, right), (right, left)):
            value = self._closure_value(bound)
            if value is not None and self._involves_candidate(probe):
                self._signal("field_equality", node, value)
                return

    # ----------------------------------------------------------- set algebra
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.BitAnd, ast.BitOr)):
            for operand, other in ((node.left, node.right), (node.right, node.left)):
                value = self._closure_value(operand)
                if isinstance(value, (set, frozenset)) and self._involves_candidate(other):
                    self._signal("membership", node, value)
                    break
        self.generic_visit(node)


def _resolve_attribute_base(value: Any, node: ast.AST) -> Any:
    """Follow ``a.b`` attribute loads from a resolved root, without calling."""
    chain = dotted_chain(node)
    if chain is None:
        return value
    for attr in chain[1:]:
        value = getattr(value, attr, None)
        if value is None:
            return None
    return value


def classify_pushdown(info: SourceInfo, scope: Optional[FunctionScope] = None) -> PushdownVerdict:
    """Classify one LF body as ``COMPILABLE`` (with shape) or ``OPAQUE``."""
    if info.tree is None:
        return PushdownVerdict("OPAQUE", detail=f"source {info.failure or 'unavailable'}")
    if isinstance(info.tree, ast.Lambda):
        return PushdownVerdict("OPAQUE", detail="lambda bodies are not classified")
    scope = scope or FunctionScope(info)
    visitor = _PushdownVisitor(info, scope)
    visitor.visit(info.tree)
    if visitor.opaque_reasons:
        return PushdownVerdict("OPAQUE", detail=visitor.opaque_reasons[0])
    signals = visitor.signals
    predicates = list(visitor.predicates)
    if not signals:
        shape = _projection_shape(info, scope)
        signals = {shape}
        predicates.append(PredicatePayload(shape=shape, description="return expression"))
    for shape in _SHAPE_ORDER:
        if shape in signals:
            matched = sorted(signals)
            return PushdownVerdict(
                "COMPILABLE",
                shape=shape,
                detail=f"matched predicate(s): {', '.join(matched)}",
                predicates=tuple(predicates),
            )
    return PushdownVerdict("OPAQUE", detail="no recognizable predicate shape")


def _projection_shape(info: SourceInfo, scope: FunctionScope) -> str:
    """Shape of a predicate-free body: a field read or a pure constant."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Return) and node.value is not None:
            for child in ast.walk(node.value):
                if isinstance(child, ast.Name) and scope.kind(child.id) in ("param", "self"):
                    return "field_projection"
    return "constant"
