"""Dynamic cross-checks of the static analyzer's verdicts.

The static passes are heuristics over source; this module is their ground
truth.  :func:`observe_lf` runs an LF repeatedly over synthetic candidates
and reports what actually happened — the labels it emitted, whether repeated
runs agree (determinism), and whether the call mutated the LF's reachable
state (closure cells, instance attributes, referenced globals).
:func:`crosscheck` then compares observation against a static
:class:`~repro.analysis.diagnostics.LFAnalysisResult`: a disagreement in
either direction (static said deterministic but runs diverged, static
inferred a label set the LF escaped, a COMPILABLE LF that turned out impure)
is returned as a message — the differential tests assert the list is empty
for every library LF and non-empty for the planted violations.

:class:`PurityCheckedTask` is the engine-side shim: it wraps a chunk task
and fingerprints the payload before and after every chunk, raising
:class:`~repro.exceptions.LabelingError` on the first observed payload write
— the debug-mode runtime twin of :func:`repro.analysis.contracts.check_task`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.analysis.diagnostics import LFAnalysisResult
from repro.analysis.source import resolve_function
from repro.exceptions import LabelingError

#: Diagnostic codes asserting the LF's output can vary between runs.
NONDETERMINISM_CODES = {"LF201", "LF202", "LF203", "LF204"}

#: Diagnostic codes asserting the LF writes to shared state.
MUTATION_CODES = {"LF301", "LF302", "LF304"}


def state_fingerprint(obj: Any, _depth: int = 0, _seen: Optional[set[int]] = None) -> str:
    """A stable textual fingerprint of an object graph's mutable state.

    Prefers ``pickle`` (stable and deep); falls back to a bounded recursive
    ``repr`` over ``__dict__``/containers for unpicklable graphs (closures,
    compiled patterns).  Two fingerprints comparing equal is evidence the
    state did not change; inequality is proof that it did.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL).hex()
    except Exception:
        pass
    if _seen is None:
        _seen = set()
    if id(obj) in _seen or _depth > 6:
        return "<cycle>"
    _seen.add(id(obj))
    if isinstance(obj, dict):
        items = ", ".join(
            f"{key!r}: {state_fingerprint(value, _depth + 1, _seen)}"
            for key, value in sorted(obj.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(obj, (list, tuple, set, frozenset)):
        elements = obj if isinstance(obj, (list, tuple)) else sorted(obj, key=repr)
        body = ", ".join(state_fingerprint(element, _depth + 1, _seen) for element in elements)
        return f"{type(obj).__name__}[{body}]"
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict:
        return f"{type(obj).__name__}:{state_fingerprint(instance_dict, _depth + 1, _seen)}"
    return repr(obj)


def _lf_state(lf: Any) -> str:
    """Fingerprint of every piece of state an LF call can reach and mutate."""
    function = resolve_function(lf)
    parts: list[str] = []
    instance_dict = getattr(lf, "__dict__", None)
    if instance_dict is not None:
        parts.append(state_fingerprint({k: v for k, v in instance_dict.items() if k != "function"}))
    wrapped = getattr(lf, "function", None)
    if wrapped is not None and getattr(wrapped, "__dict__", None):
        parts.append(state_fingerprint(wrapped.__dict__))
    code = getattr(function, "__code__", None)
    closure = getattr(function, "__closure__", None) or ()
    if code is not None:
        for name, cell in zip(code.co_freevars, closure):
            try:
                parts.append(f"{name}={state_fingerprint(cell.cell_contents)}")
            except ValueError:  # pragma: no cover - unfilled cell
                continue
        # Globals the function actually references (co_names over-approximates
        # but stays bounded); modules and callables are skipped as immutable
        # for our purposes.
        function_globals = getattr(function, "__globals__", {})
        for name in code.co_names:
            if name in function_globals:
                value = function_globals[name]
                if callable(value) or type(value).__name__ == "module":
                    continue
                parts.append(f"g:{name}={state_fingerprint(value)}")
    return "|".join(parts)


@dataclass
class ObservedBehavior:
    """What actually happened when the LF ran on synthetic candidates."""

    labels: list[int] = field(default_factory=list)
    emitted: set[int] = field(default_factory=set)
    deterministic: bool = True
    mutated_state: bool = False
    raised: Optional[str] = None


def observe_lf(lf: Callable, candidates: Sequence, repeats: int = 3) -> ObservedBehavior:
    """Run ``lf`` over ``candidates`` ``repeats`` times and report behavior.

    The LF is called through its :class:`~repro.labeling.lf.LabelingFunction`
    wrapper when given one (so canonicalization applies); exceptions are
    recorded, not propagated, because planted-violation LFs may legally blow
    up on synthetic candidates.
    """
    observed = ObservedBehavior()
    before = _lf_state(lf)
    runs: list[list[Any]] = []
    for _ in range(max(1, repeats)):
        outputs: list[Any] = []
        for candidate in candidates:
            try:
                outputs.append(lf(candidate))
            except Exception as exc:
                observed.raised = type(exc).__name__
                outputs.append(f"<raised {type(exc).__name__}>")
        runs.append(outputs)
    observed.mutated_state = _lf_state(lf) != before
    observed.deterministic = all(run == runs[0] for run in runs[1:])
    observed.labels = [value for value in runs[0] if isinstance(value, int)]
    observed.emitted = set(observed.labels)
    return observed


def crosscheck(static: LFAnalysisResult, observed: ObservedBehavior) -> list[str]:
    """Disagreements between the static verdict and observed behavior.

    Checked both ways:

    * static silence on nondeterminism vs. runs that diverged (and the
      converse is *not* checked — a static nondeterminism flag with stable
      observed runs is legal, e.g. the random branch was never reached);
    * a complete inferred label set the LF escaped at runtime;
    * a ``COMPILABLE`` pushdown verdict for an LF that was observed to be
      nondeterministic or to mutate reachable state (compilable implies
      pure);
    * static mutation findings vs. observed state fingerprints: if the
      analyzer found *no* mutation hazard but the fingerprint changed, the
      analyzer missed a write.
    """
    disagreements: list[str] = []
    codes = static.codes()
    static_nondeterministic = bool(codes & NONDETERMINISM_CODES)
    static_mutates = bool(codes & MUTATION_CODES)
    if not observed.deterministic and not static_nondeterministic:
        disagreements.append(
            f"{static.lf_name}: observed nondeterministic outputs but no "
            "LF2xx diagnostic was emitted"
        )
    if observed.mutated_state and not static_mutates and static.source_available:
        disagreements.append(
            f"{static.lf_name}: observed state mutation but no LF3xx "
            "diagnostic was emitted"
        )
    if static.inferred_labels is not None and observed.raised is None:
        escaped = observed.emitted - set(static.inferred_labels)
        if escaped:
            disagreements.append(
                f"{static.lf_name}: emitted {sorted(escaped)} outside the "
                f"inferred label set {sorted(static.inferred_labels)}"
            )
    if static.pushdown.compilable and (not observed.deterministic or observed.mutated_state):
        disagreements.append(
            f"{static.lf_name}: classified COMPILABLE but observed "
            f"{'nondeterminism' if not observed.deterministic else 'state mutation'}"
        )
    return disagreements


class PurityCheckedTask:
    """Debug-mode wrapper enforcing the chunk-task purity contract at runtime.

    Fingerprints the payload before and after every chunk; a changed
    fingerprint means the task wrote to shared state and raises
    :class:`~repro.exceptions.LabelingError` naming the task.  Instances are
    picklable whenever the wrapped task is (both are typically module-level
    functions), so the shim rides every executor backend.
    """

    def __init__(self, task: Callable) -> None:
        self.task = task

    def __call__(self, payload, fault_tolerant, index, start_row, candidates):
        before = state_fingerprint(payload)
        result = self.task(payload, fault_tolerant, index, start_row, candidates)
        after = state_fingerprint(payload)
        if before != after:
            name = getattr(self.task, "__name__", repr(self.task))
            raise LabelingError(
                f"chunk task {name!r} mutated its payload on chunk {index}; "
                "the purity contract requires payload reads only"
            )
        return result


def observe_task_purity(
    task: Callable,
    payload: Any,
    chunks: Iterable[Sequence],
    fault_tolerant: bool = False,
) -> bool:
    """Run ``task`` over ``chunks`` under the shim; True when it stayed pure."""
    shim = PurityCheckedTask(task)
    start_row = 0
    try:
        for index, chunk in enumerate(chunks):
            shim(payload, fault_tolerant, index, start_row, chunk)
            start_row += len(chunk)
    except LabelingError:
        return False
    return True
