"""Source extraction and environment resolution for LF callables.

The analyzer receives *callables* — plain functions, closures produced by the
declarative operators, ``functools.partial`` objects, bound methods, or class
instances with ``__call__`` (the picklable vote readers) — possibly wrapped
in a :class:`repro.labeling.lf.LabelingFunction`.  This module normalizes all
of those into the underlying function object, recovers its source with
``inspect``/``ast``, and exposes the two environments static evaluation can
draw constants from: the closure cells and the defining module's globals.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

_UNRESOLVED = object()


def resolve_function(fn: Any) -> Callable:
    """Unwrap ``fn`` to the innermost plain function object.

    Handles :class:`~repro.labeling.lf.LabelingFunction` wrappers (their
    ``.function`` attribute), ``functools.partial``, bound methods, and
    callable instances (``type(fn).__call__``).  Returns the original object
    when no further unwrapping applies.
    """
    seen: set[int] = set()
    while id(fn) not in seen:
        seen.add(id(fn))
        wrapped = getattr(fn, "function", None)
        if wrapped is not None and callable(wrapped) and not inspect.isfunction(fn):
            fn = wrapped
            continue
        if isinstance(fn, functools.partial):
            fn = fn.func
            continue
        if inspect.ismethod(fn):
            fn = fn.__func__
            continue
        if not inspect.isfunction(fn) and hasattr(type(fn), "__call__"):
            call = type(fn).__call__
            if inspect.isfunction(call):
                fn = call
                continue
        break
    return fn


@dataclass
class SourceInfo:
    """The analyzable view of one callable."""

    function: Callable
    #: The ``ast.FunctionDef`` / ``ast.Lambda`` node of the body, or ``None``
    #: when source was unavailable or unparsable.
    tree: Optional[ast.AST] = None
    source: Optional[str] = None
    #: First source line of the function in its file (diagnostics add the
    #: node's ``lineno - 1`` to this to report absolute positions when known).
    firstlineno: int = 0
    #: Why ``tree`` is ``None``: ``"unavailable"`` or ``"unparsable"``.
    failure: Optional[str] = None
    #: Closure environment: free-variable name -> cell contents.
    closure: dict[str, Any] = field(default_factory=dict)
    #: The defining module's global namespace (may be empty for builtins).
    globals: dict[str, Any] = field(default_factory=dict)

    @property
    def parameters(self) -> list[str]:
        """Positional parameter names of the analyzed function."""
        if self.tree is None:
            return []
        args = self.tree.args
        names = [arg.arg for arg in args.posonlyargs + args.args]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        names.extend(arg.arg for arg in args.kwonlyargs)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        return names

    def resolve_name(self, name: str) -> Any:
        """Look ``name`` up in the closure, then the globals, then builtins.

        Returns :data:`_UNRESOLVED` when the name is not bound anywhere the
        analyzer can see (e.g. a local).
        """
        if name in self.closure:
            return self.closure[name]
        if name in self.globals:
            return self.globals[name]
        builtins = self.globals.get("__builtins__")
        if isinstance(builtins, dict) and name in builtins:
            return builtins[name]
        if builtins is not None and not isinstance(builtins, dict):
            return getattr(builtins, name, _UNRESOLVED)
        return _UNRESOLVED


def is_unresolved(value: Any) -> bool:
    """True when :meth:`SourceInfo.resolve_name` failed to bind the name."""
    return value is _UNRESOLVED


def _find_function_node(module: ast.Module) -> Optional[ast.AST]:
    """First function-like node in a parsed source fragment.

    ``inspect.getsource`` of a decorated function returns the decorated
    definition; of a lambda, the whole assignment statement.  Either way the
    target is the first ``FunctionDef``/``AsyncFunctionDef``/``Lambda`` in
    the fragment.
    """
    for node in ast.walk(module):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return node
    return None


def extract_source(fn: Any) -> SourceInfo:
    """Build the :class:`SourceInfo` for any callable the analyzer accepts."""
    function = resolve_function(fn)
    info = SourceInfo(function=function)
    if inspect.isfunction(function):
        code = function.__code__
        freevars = code.co_freevars
        cells = function.__closure__ or ()
        for name, cell in zip(freevars, cells):
            try:
                info.closure[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                continue
        info.globals = function.__globals__
        info.firstlineno = code.co_firstlineno
    if not (inspect.isfunction(function) or inspect.ismethod(function)):
        info.failure = "unavailable"
        return info
    try:
        source = textwrap.dedent(inspect.getsource(function))
    except (OSError, TypeError):
        info.failure = "unavailable"
        return info
    info.source = source
    try:
        module = ast.parse(source)
    except SyntaxError:
        # A lambda inside a larger expression (e.g. a call argument) does
        # not dedent into valid standalone source.
        info.failure = "unparsable"
        return info
    tree = _find_function_node(module)
    if tree is None:
        info.failure = "unparsable"
        return info
    info.tree = tree
    return info
