"""Baselines the paper compares against: distant supervision, hand supervision,
and training the end model on unweighted LF averages."""

from repro.baselines.distant_supervision import distant_supervision_baseline
from repro.baselines.hand_supervision import hand_supervision_baseline
from repro.baselines.unweighted import unweighted_lf_baseline

__all__ = [
    "distant_supervision_baseline",
    "hand_supervision_baseline",
    "unweighted_lf_baseline",
]
