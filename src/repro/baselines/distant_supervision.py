"""Distant-supervision baseline (Table 3, first column).

The most popular prior weak-supervision practice: align the training
candidates against an external knowledge base and train the end model on the
resulting hard labels directly, without modeling source accuracies or mixing
in other supervision types.  For tasks without a KB (EHR) the paper compared
against the prior regular-expression labeler; the task datasets expose that
set through the same ``distant_supervision_lfs`` hook.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import TaskDataset
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.evaluation.scorer import BinaryScorer, ScoreReport
from repro.exceptions import DatasetError
from repro.labeling.applier import LFApplier
from repro.labelmodel.majority import MajorityVoter
from repro.types import NEGATIVE, POSITIVE


def distant_supervision_baseline(
    task: TaskDataset,
    featurizer: Optional[RelationFeaturizer] = None,
    epochs: int = 40,
    seed: int = 0,
) -> ScoreReport:
    """Train the end model on hard KB-alignment labels and score it on the test split.

    Candidates the KB labels positive get +1, candidates it labels negative
    get -1, and unlabeled candidates are treated as negative (the standard
    closed-world assumption of distant supervision, which is exactly what
    costs it precision and recall in the paper's comparison).
    """
    if not task.distant_supervision_lfs:
        raise DatasetError(
            f"task {task.name!r} provides no distant-supervision labeling functions"
        )
    featurizer = featurizer or RelationFeaturizer(num_features=1024)
    featurizer.fit()
    train_candidates = task.split_candidates("train")
    test_candidates = task.split_candidates("test")

    applier = LFApplier(task.distant_supervision_lfs)
    train_votes = MajorityVoter().predict(applier.apply(train_candidates), tie_break=NEGATIVE)
    train_votes = np.where(train_votes == POSITIVE, POSITIVE, NEGATIVE)

    model = NoiseAwareLogisticRegression(epochs=epochs, seed=seed)
    model.fit(featurizer.transform(train_candidates), (train_votes == POSITIVE).astype(float))
    probs = model.predict_proba(featurizer.transform(test_candidates))
    return BinaryScorer().score_probabilities(task.split_gold("test"), probs)
