"""Hand-supervision baseline (Table 3, last column).

Trains the same end model on true gold labels for a (possibly limited)
number of training candidates — the "large hand-curated training set" that
took weeks or months to assemble in the real deployments.  Used both for the
Table 3 / Table 4 comparisons and for the user-study baseline, where the
budget is capped at the number of labels a worker could produce in seven
hours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import TaskDataset
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.evaluation.scorer import BinaryScorer, ScoreReport
from repro.types import POSITIVE
from repro.utils.rng import SeedLike, ensure_rng


def hand_supervision_baseline(
    task: TaskDataset,
    label_budget: Optional[int] = None,
    featurizer: Optional[RelationFeaturizer] = None,
    epochs: int = 40,
    seed: SeedLike = 0,
) -> ScoreReport:
    """Train the end model on gold labels for up to ``label_budget`` candidates.

    ``label_budget=None`` uses every training candidate (the full
    hand-curated set); a finite budget samples that many training candidates
    uniformly, which is how the user-study hand-labeling baselines are built
    (2,500 labels ≈ 7 hours at 10 seconds per label).
    """
    rng = ensure_rng(seed)
    featurizer = featurizer or RelationFeaturizer(num_features=1024)
    featurizer.fit()
    train_candidates = task.split_candidates("train")
    gold = task.split_gold("train")
    if label_budget is not None and label_budget < len(train_candidates):
        chosen = rng.choice(len(train_candidates), size=label_budget, replace=False)
        chosen = np.sort(chosen)
        train_candidates = [train_candidates[int(i)] for i in chosen]
        gold = gold[chosen]

    model = NoiseAwareLogisticRegression(epochs=epochs, seed=0)
    model.fit(featurizer.transform(train_candidates), (gold == POSITIVE).astype(float))
    test_candidates = task.split_candidates("test")
    probs = model.predict_proba(featurizer.transform(test_candidates))
    return BinaryScorer().score_probabilities(task.split_gold("test"), probs)
