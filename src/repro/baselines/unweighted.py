"""Unweighted-LF baseline (Table 5).

Skips the generative modeling stage entirely: the discriminative model is
trained on the unweighted average of the labeling functions' outputs.  The
gap between this and the full pipeline quantifies how much modeling LF
accuracies and correlations actually contributes to end predictive
performance (the paper reports an average 5.81% relative gain).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.base import TaskDataset
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.evaluation.scorer import BinaryScorer, ScoreReport
from repro.labeling.applier import LFApplier
from repro.labelmodel.majority import MajorityVoter


def unweighted_lf_baseline(
    task: TaskDataset,
    featurizer: Optional[RelationFeaturizer] = None,
    epochs: int = 40,
    seed: int = 0,
) -> ScoreReport:
    """Train the end model on the unweighted LF average and score the test split."""
    featurizer = featurizer or RelationFeaturizer(num_features=1024)
    featurizer.fit()
    train_candidates = task.split_candidates("train")
    test_candidates = task.split_candidates("test")

    applier = LFApplier(task.lfs)
    label_matrix = applier.apply(train_candidates)
    soft_labels = MajorityVoter().predict_proba(label_matrix)

    covered = np.flatnonzero(~np.isclose(soft_labels, 0.5))
    if covered.size == 0:
        covered = np.arange(len(train_candidates))
    model = NoiseAwareLogisticRegression(epochs=epochs, seed=seed)
    model.fit(featurizer.transform(train_candidates)[covered], soft_labels[covered])
    probs = model.predict_proba(featurizer.transform(test_candidates))
    return BinaryScorer().score_probabilities(task.split_gold("test"), probs)
