"""The context hierarchy data model (Documents → Sentences → Spans → Candidates).

This is the reproduction of Snorkel's data model (paper Section 2, Figure 3):
input data is stored as a hierarchy of context types connected by
parent/child relationships, persisted through the ORM layer in
:mod:`repro.db`, and candidates — the data points to be classified — are
tuples of contexts (here: pairs of entity-tagged spans in a sentence).
"""

from repro.context.candidates import Candidate
from repro.context.contexts import Document, EntityMention, Sentence, Span
from repro.context.corpus import Corpus
from repro.context.extraction import CandidateExtractor, PairedEntityCandidateSpace
from repro.context.preprocessing import (
    DictionaryEntityTagger,
    SimpleSentenceSplitter,
    SimpleTokenizer,
    TextPreprocessor,
)

__all__ = [
    "Document",
    "Sentence",
    "Span",
    "EntityMention",
    "Candidate",
    "Corpus",
    "SimpleTokenizer",
    "SimpleSentenceSplitter",
    "DictionaryEntityTagger",
    "TextPreprocessor",
    "CandidateExtractor",
    "PairedEntityCandidateSpace",
]
