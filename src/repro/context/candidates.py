"""Candidates: the data points labeling functions vote on.

A candidate is a tuple of context objects (paper Figure 3).  In this
reproduction candidates are binary relation mentions: a pair of entity-tagged
spans within one sentence, plus denormalized convenience attributes (the
sentence's words, the spans' word ranges, entity types and canonical KB ids)
so that labeling functions can be written against plain attributes without a
live database session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.db.orm import MappedRecord
from repro.exceptions import ContextError


class CandidateRecord(MappedRecord):
    """Relational record for a candidate (persisted form).

    Fields reference the sentence and the two entity spans by id, plus the
    split and an optional gold label used only for evaluation.
    """

    __tablename__ = "candidates"
    __fields__ = (
        "sentence_id",
        "span1_id",
        "span2_id",
        "relation_type",
        "split",
        "gold_label",
    )


@dataclass
class SpanView:
    """A denormalized, read-only view of an entity span inside a candidate."""

    text: str
    word_start: int
    word_end: int
    entity_type: Optional[str] = None
    canonical_id: Optional[str] = None

    def get_word_range(self) -> tuple[int, int]:
        """Token range ``(start, end)`` of the span (end exclusive)."""
        return self.word_start, self.word_end

    @property
    def length(self) -> int:
        """Number of tokens covered by the span."""
        return self.word_end - self.word_start


@dataclass
class SentenceView:
    """A denormalized, read-only view of the sentence containing a candidate."""

    words: list[str]
    text: str
    position: int = 0
    document_name: str = ""
    document_metadata: dict[str, Any] = field(default_factory=dict)


@dataclass
class Candidate:
    """A relation-mention candidate: two entity spans in one sentence.

    Labeling functions receive instances of this class.  The first span is
    conventionally the "subject" entity (e.g. the chemical in a
    chemical-disease relation) and the second the "object" (the disease).

    Attributes
    ----------
    uid:
        Stable integer id of the candidate (the primary key of its
        :class:`CandidateRecord`).
    span1, span2:
        The two entity spans.
    sentence:
        The containing sentence view (``candidate.sentence.words`` gives the
        token list, matching the paper's ``x.parent.words``).
    relation_type:
        Name of the relation being classified (e.g. ``"causes"``).
    split:
        Evaluation split of the candidate.
    gold_label:
        Ground-truth label if known (used for evaluation only; the pipeline
        never trains on it).
    metadata:
        Extra task-specific attributes (e.g. image feature vectors for the
        cross-modal radiology task).
    """

    uid: int
    span1: SpanView
    span2: SpanView
    sentence: SentenceView
    relation_type: str = "relation"
    split: str = "train"
    gold_label: Optional[int] = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def parent(self) -> SentenceView:
        """Alias matching the paper's ``x.parent`` (the containing sentence)."""
        return self.sentence

    @property
    def chemical(self) -> SpanView:
        """Alias for :attr:`span1` used by CDR/Chem-style labeling functions."""
        return self.span1

    @property
    def disease(self) -> SpanView:
        """Alias for :attr:`span2` used by CDR/Chem-style labeling functions."""
        return self.span2

    @property
    def person1(self) -> SpanView:
        """Alias for :attr:`span1` used by Spouses-style labeling functions."""
        return self.span1

    @property
    def person2(self) -> SpanView:
        """Alias for :attr:`span2` used by Spouses-style labeling functions."""
        return self.span2

    def words_between(self) -> list[str]:
        """Tokens strictly between the two spans, in sentence order."""
        first, second = self.ordered_spans()
        return list(self.sentence.words[first.word_end : second.word_start])

    def text_between(self) -> str:
        """Space-joined text between the two spans."""
        return " ".join(self.words_between())

    def ordered_spans(self) -> tuple[SpanView, SpanView]:
        """The two spans ordered by sentence position (leftmost first)."""
        if self.span1.word_start <= self.span2.word_start:
            return self.span1, self.span2
        return self.span2, self.span1

    def span1_precedes_span2(self) -> bool:
        """True when span1 occurs before span2 in the sentence."""
        return self.span1.word_start < self.span2.word_start

    def token_distance(self) -> int:
        """Number of tokens separating the two spans (0 when adjacent)."""
        first, second = self.ordered_spans()
        return max(0, second.word_start - first.word_end)

    def window_left(self, size: int) -> list[str]:
        """Tokens immediately to the left of the earlier span."""
        first, _ = self.ordered_spans()
        return list(self.sentence.words[max(0, first.word_start - size) : first.word_start])

    def window_right(self, size: int) -> list[str]:
        """Tokens immediately to the right of the later span."""
        _, second = self.ordered_spans()
        return list(self.sentence.words[second.word_end : second.word_end + size])

    def validate(self) -> None:
        """Check span offsets lie within the sentence; raise :class:`ContextError` if not."""
        num_words = len(self.sentence.words)
        for name, span in (("span1", self.span1), ("span2", self.span2)):
            if span.word_start < 0 or span.word_end > num_words or span.word_start >= span.word_end:
                raise ContextError(
                    f"{name} range [{span.word_start}, {span.word_end}) is invalid for a "
                    f"sentence with {num_words} tokens"
                )
