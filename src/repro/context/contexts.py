"""Context types: Document, Sentence, Span, and EntityMention records.

Each context type is a :class:`repro.db.orm.MappedRecord` subclass so the
whole hierarchy persists through the relational store, mirroring Snorkel's
SQLAlchemy-backed context hierarchy.  Convenience accessors (``words``,
``get_word_range``, text slices) reproduce the object-oriented traversal that
labeling functions rely on (paper Example 2.3).
"""

from __future__ import annotations

from typing import Optional

from repro.db.orm import MappedRecord
from repro.exceptions import ContextError


class Document(MappedRecord):
    """A source document: the root of the context hierarchy.

    Fields
    ------
    name:
        Stable external identifier (e.g. a synthetic PubMed id).
    text:
        Raw document text.
    split:
        Which evaluation split the document belongs to: ``"train"``,
        ``"dev"``, or ``"test"``.
    metadata:
        Free-form dict of extra attributes (e.g. MeSH-like codes for the
        radiology reports).
    """

    __tablename__ = "documents"
    __fields__ = ("name", "text", "split", "metadata")


class Sentence(MappedRecord):
    """A sentence within a document, carrying its tokenization.

    Fields
    ------
    document_id:
        Foreign key to the parent :class:`Document`.
    position:
        Zero-based index of the sentence within its document.
    text:
        Sentence text.
    words:
        List of token strings.
    char_offsets:
        List of ``(start, end)`` character offsets of each token within the
        sentence text.
    """

    __tablename__ = "sentences"
    __fields__ = ("document_id", "position", "text", "words", "char_offsets")

    def word_slice(self, start: int, end: int) -> list[str]:
        """Return ``words[start:end]`` with bounds checking."""
        words = self.words or []
        if start < 0 or end > len(words) or start > end:
            raise ContextError(
                f"word slice [{start}:{end}] out of range for sentence of length {len(words)}"
            )
        return list(words[start:end])


class Span(MappedRecord):
    """A contiguous token span within a sentence.

    Fields
    ------
    sentence_id:
        Foreign key to the parent :class:`Sentence`.
    word_start, word_end:
        Inclusive-start / exclusive-end token indices within the sentence.
    text:
        The surface text of the span.
    """

    __tablename__ = "spans"
    __fields__ = ("sentence_id", "word_start", "word_end", "text")

    def get_word_range(self) -> tuple[int, int]:
        """Return the ``(word_start, word_end)`` token range of this span.

        ``word_end`` is exclusive, matching Python slicing; the paper's
        ``get_word_range`` example uses inclusive ends but every use in this
        library is through :meth:`words_between`-style helpers so the
        convention only needs to be internally consistent.
        """
        return int(self.word_start), int(self.word_end)

    @property
    def length(self) -> int:
        """Number of tokens covered by the span."""
        return int(self.word_end) - int(self.word_start)


class EntityMention(MappedRecord):
    """A typed entity annotation over a span (e.g. chemical / disease / person).

    Fields
    ------
    span_id:
        Foreign key to the annotated :class:`Span`.
    entity_type:
        Entity type label, e.g. ``"chemical"``.
    canonical_id:
        Optional knowledge-base identifier used by distant-supervision LFs.
    """

    __tablename__ = "entity_mentions"
    __fields__ = ("span_id", "entity_type", "canonical_id")


CONTEXT_RECORD_TYPES = (Document, Sentence, Span, EntityMention)
