"""Corpus: the persisted context hierarchy plus candidate materialization.

A :class:`Corpus` owns an in-memory relational database (see
:mod:`repro.db`) holding documents, sentences, spans, entity mentions, and
candidate records, and can materialize :class:`repro.context.candidates.Candidate`
views — the denormalized objects labeling functions receive.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.context.candidates import Candidate, CandidateRecord, SentenceView, SpanView
from repro.context.contexts import CONTEXT_RECORD_TYPES, Document, EntityMention, Sentence, Span
from repro.context.preprocessing import TaggedEntity, TextPreprocessor
from repro.db.orm import Session, schema_for_records
from repro.db.storage import Database
from repro.exceptions import ContextError

_ALL_RECORD_TYPES = CONTEXT_RECORD_TYPES + (CandidateRecord,)


class Corpus:
    """A collection of documents with their context hierarchy and candidates.

    Parameters
    ----------
    name:
        Human-readable corpus name (e.g. ``"cdr-synthetic"``).
    preprocessor:
        Pipeline used by :meth:`add_document` to split, tokenize, and tag
        entities.  Optional when documents are ingested pre-processed.
    """

    def __init__(self, name: str, preprocessor: Optional[TextPreprocessor] = None) -> None:
        self.name = name
        self.preprocessor = preprocessor
        self.database = Database(schema_for_records(_ALL_RECORD_TYPES))
        self.session = Session(self.database)

    # ------------------------------------------------------------------ ingest
    def add_document(
        self,
        name: str,
        text: str,
        split: str = "train",
        metadata: Optional[dict] = None,
    ) -> Document:
        """Ingest a raw document: preprocess, persist sentences, spans, entities."""
        if self.preprocessor is None:
            raise ContextError(
                "corpus has no preprocessor; use add_processed_document for "
                "pre-tokenized input"
            )
        sentences = self.preprocessor.process_document(text)
        return self.add_processed_document(name, text, sentences, split=split, metadata=metadata)

    def add_processed_document(
        self,
        name: str,
        text: str,
        sentences: Sequence[dict],
        split: str = "train",
        metadata: Optional[dict] = None,
    ) -> Document:
        """Ingest a document whose sentences are already tokenized and tagged.

        Each sentence dict must have keys ``text``, ``words``, ``position``;
        optional keys are ``char_offsets`` and ``entities`` (a list of
        :class:`TaggedEntity` or equivalent dicts).
        """
        document = self.session.add(
            Document(name=name, text=text, split=split, metadata=dict(metadata or {}))
        )
        for sentence_dict in sentences:
            sentence = self.session.add(
                Sentence(
                    document_id=document.id,
                    position=sentence_dict["position"],
                    text=sentence_dict["text"],
                    words=list(sentence_dict["words"]),
                    char_offsets=[list(pair) for pair in sentence_dict.get("char_offsets", [])],
                )
            )
            for entity in sentence_dict.get("entities", []):
                self._add_entity(sentence, entity)
        return document

    def _add_entity(self, sentence: Sentence, entity: TaggedEntity | dict) -> EntityMention:
        if isinstance(entity, dict):
            entity = TaggedEntity(**entity)
        span = self.session.add(
            Span(
                sentence_id=sentence.id,
                word_start=entity.word_start,
                word_end=entity.word_end,
                text=entity.text,
            )
        )
        return self.session.add(
            EntityMention(
                span_id=span.id,
                entity_type=entity.entity_type,
                canonical_id=entity.canonical_id,
            )
        )

    def add_candidate_record(
        self,
        sentence: Sentence,
        span1: Span,
        span2: Span,
        relation_type: str,
        split: str,
        gold_label: Optional[int] = None,
    ) -> CandidateRecord:
        """Persist a candidate record linking a sentence and two spans."""
        return self.session.add(
            CandidateRecord(
                sentence_id=sentence.id,
                span1_id=span1.id,
                span2_id=span2.id,
                relation_type=relation_type,
                split=split,
                gold_label=gold_label,
            )
        )

    # ----------------------------------------------------------------- queries
    @property
    def num_documents(self) -> int:
        """Number of documents in the corpus."""
        return self.session.count(Document)

    @property
    def num_sentences(self) -> int:
        """Number of sentences in the corpus."""
        return self.session.count(Sentence)

    @property
    def num_candidates(self) -> int:
        """Number of persisted candidate records."""
        return self.session.count(CandidateRecord)

    def documents(self, split: Optional[str] = None) -> list[Document]:
        """All documents, optionally filtered to one split."""
        if split is None:
            return self.session.all(Document)
        return self.session.find(Document, split=split)

    def sentences_of(self, document: Document) -> list[Sentence]:
        """Sentences of ``document`` ordered by position."""
        sentences = self.session.children(document, Sentence, "document_id")
        return sorted(sentences, key=lambda s: s.position)

    def entities_of(self, sentence: Sentence) -> list[tuple[Span, EntityMention]]:
        """All ``(span, entity_mention)`` pairs tagged in ``sentence``."""
        pairs = []
        for span in self.session.children(sentence, Span, "sentence_id"):
            for mention in self.session.children(span, EntityMention, "span_id"):
                pairs.append((span, mention))
        pairs.sort(key=lambda pair: pair[0].word_start)
        return pairs

    def candidate_records(self, split: Optional[str] = None) -> list[CandidateRecord]:
        """Persisted candidate records, optionally filtered by split."""
        if split is None:
            records = self.session.all(CandidateRecord)
        else:
            records = self.session.find(CandidateRecord, split=split)
        return sorted(records, key=lambda record: record.id)

    # ----------------------------------------------------------- materialization
    def materialize_candidate(self, record: CandidateRecord) -> Candidate:
        """Build the denormalized :class:`Candidate` view for ``record``."""
        sentence = self.session.get(Sentence, record.sentence_id)
        document = self.session.get(Document, sentence.document_id)
        span1 = self.session.get(Span, record.span1_id)
        span2 = self.session.get(Span, record.span2_id)
        candidate = Candidate(
            uid=record.id,
            span1=self._span_view(span1),
            span2=self._span_view(span2),
            sentence=SentenceView(
                words=list(sentence.words),
                text=sentence.text,
                position=sentence.position,
                document_name=document.name,
                document_metadata=dict(document.metadata or {}),
            ),
            relation_type=record.relation_type,
            split=record.split,
            gold_label=record.gold_label,
        )
        candidate.validate()
        return candidate

    def candidates(self, split: Optional[str] = None) -> list[Candidate]:
        """Materialize all candidates, optionally restricted to one split."""
        return [self.materialize_candidate(record) for record in self.candidate_records(split)]

    def _span_view(self, span: Span) -> SpanView:
        mentions = self.session.children(span, EntityMention, "span_id")
        mention = mentions[0] if mentions else None
        return SpanView(
            text=span.text,
            word_start=span.word_start,
            word_end=span.word_end,
            entity_type=mention.entity_type if mention else None,
            canonical_id=mention.canonical_id if mention else None,
        )
