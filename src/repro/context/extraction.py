"""Candidate extraction: turning tagged sentences into candidate records.

The paper's running example defines candidates as all co-occurring
(chemical, disease) mention pairs within a sentence.  The
:class:`PairedEntityCandidateSpace` generalizes this: given two entity types,
every ordered pair of mentions of those types in a sentence is a candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.context.candidates import Candidate, CandidateRecord
from repro.context.contexts import Document, EntityMention, Span
from repro.context.corpus import Corpus


@dataclass(frozen=True)
class PairedEntityCandidateSpace:
    """Defines the candidate space as pairs of entity mentions in a sentence.

    Parameters
    ----------
    relation_type:
        Name given to extracted candidates (e.g. ``"causes"``).
    type1, type2:
        Entity types of the first / second argument (e.g. ``"chemical"`` and
        ``"disease"``).  When the types are equal (e.g. person-person for the
        Spouses task), unordered pairs are produced once, with the leftmost
        mention as the first argument.
    max_token_distance:
        Optional cap on the number of tokens between the two mentions;
        ``None`` allows any distance within a sentence.
    """

    relation_type: str
    type1: str
    type2: str
    max_token_distance: Optional[int] = None

    def pairs(
        self, entities: list[tuple[Span, EntityMention]]
    ) -> list[tuple[Span, Span]]:
        """Enumerate candidate span pairs for one sentence's tagged entities."""
        first = [(span, mention) for span, mention in entities if mention.entity_type == self.type1]
        second = [
            (span, mention) for span, mention in entities if mention.entity_type == self.type2
        ]
        pairs: list[tuple[Span, Span]] = []
        if self.type1 == self.type2:
            for i in range(len(first)):
                for j in range(i + 1, len(first)):
                    pairs.append((first[i][0], first[j][0]))
        else:
            for span1, _ in first:
                for span2, _ in second:
                    if span1.id == span2.id:
                        continue
                    pairs.append((span1, span2))
        if self.max_token_distance is None:
            return pairs
        kept = []
        for span1, span2 in pairs:
            left, right = sorted((span1, span2), key=lambda s: s.word_start)
            if right.word_start - left.word_end <= self.max_token_distance:
                kept.append((span1, span2))
        return kept


class CandidateExtractor:
    """Extracts and persists candidate records from a corpus.

    Parameters
    ----------
    candidate_space:
        The :class:`PairedEntityCandidateSpace` describing which entity pairs
        become candidates.
    gold_labeler:
        Optional callable mapping a materialized :class:`Candidate` to its
        gold label (or ``None``).  Used by the synthetic dataset generators,
        which know the planted relations; real deployments would only have
        gold labels on dev/test splits.
    """

    def __init__(
        self,
        candidate_space: PairedEntityCandidateSpace,
        gold_labeler: Optional[Callable[[Candidate], Optional[int]]] = None,
    ) -> None:
        self.candidate_space = candidate_space
        self.gold_labeler = gold_labeler

    def extract(self, corpus: Corpus, splits: Optional[list[str]] = None) -> int:
        """Extract candidates for every document (optionally restricted to splits).

        Returns the number of candidate records created.
        """
        created = 0
        for document in corpus.documents():
            if splits is not None and document.split not in splits:
                continue
            created += self.extract_document(corpus, document)
        return created

    def extract_document(self, corpus: Corpus, document: Document) -> int:
        """Extract candidates from a single document."""
        created = 0
        for sentence in corpus.sentences_of(document):
            entities = corpus.entities_of(sentence)
            for span1, span2 in self.candidate_space.pairs(entities):
                record = corpus.add_candidate_record(
                    sentence=sentence,
                    span1=span1,
                    span2=span2,
                    relation_type=self.candidate_space.relation_type,
                    split=document.split,
                )
                if self.gold_labeler is not None:
                    candidate = corpus.materialize_candidate(record)
                    gold = self.gold_labeler(candidate)
                    if gold is not None:
                        self._set_gold(corpus, record, gold)
                created += 1
        return created

    @staticmethod
    def _set_gold(corpus: Corpus, record: CandidateRecord, gold: int) -> None:
        """Persist a gold label onto an existing candidate record."""
        record.gold_label = int(gold)
        # The record object is shared with the session's identity map, but the
        # stored row must be refreshed too: delete and re-insert with the same id.
        corpus.database.delete(CandidateRecord.__tablename__, record.id)
        corpus.database.insert(CandidateRecord.__tablename__, record.to_row())
