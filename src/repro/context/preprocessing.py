"""Text preprocessing: tokenization, sentence splitting, and dictionary NER.

The paper wraps CoreNLP / SpaCy for preprocessing and named-entity
recognition.  For the synthetic corpora used here, a regex tokenizer,
punctuation-based sentence splitter, and a dictionary (gazetteer) entity
tagger exercise the same pipeline stages: documents are split into sentences,
sentences into tokens with character offsets, and entity mentions are tagged
as typed spans that candidate extraction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.utils.textutils import normalize, split_sentences, tokenize_with_offsets


class SimpleTokenizer:
    """Regex word/punctuation tokenizer that records character offsets."""

    def tokenize(self, text: str) -> tuple[list[str], list[tuple[int, int]]]:
        """Return ``(words, char_offsets)`` for ``text``."""
        triples = tokenize_with_offsets(text)
        words = [token for token, _, _ in triples]
        offsets = [(start, end) for _, start, end in triples]
        return words, offsets


class SimpleSentenceSplitter:
    """Sentence splitter on terminal punctuation followed by whitespace."""

    def split(self, text: str) -> list[str]:
        """Split ``text`` into sentence strings."""
        return split_sentences(text)


@dataclass(frozen=True)
class TaggedEntity:
    """An entity found by the tagger: token range, surface text, type, KB id."""

    word_start: int
    word_end: int
    text: str
    entity_type: str
    canonical_id: Optional[str] = None


class DictionaryEntityTagger:
    """Gazetteer-based entity tagger.

    Parameters
    ----------
    dictionaries:
        Mapping from entity type (e.g. ``"chemical"``) to a mapping from
        surface form to canonical id.  Multi-word surface forms are matched
        greedily, longest-first, case-insensitively.
    """

    def __init__(self, dictionaries: Mapping[str, Mapping[str, str]]) -> None:
        self._entries: list[tuple[tuple[str, ...], str, str]] = []
        for entity_type, surface_to_id in dictionaries.items():
            for surface, canonical_id in surface_to_id.items():
                tokens = tuple(normalize(token) for token in surface.split())
                if tokens:
                    self._entries.append((tokens, entity_type, canonical_id))
        # Longest surface forms first so greedy matching prefers them.
        self._entries.sort(key=lambda entry: len(entry[0]), reverse=True)

    def tag(self, words: Sequence[str]) -> list[TaggedEntity]:
        """Tag entity mentions in a tokenized sentence.

        Matches are non-overlapping; when two dictionary entries could match
        at the same position the longer one wins.
        """
        normalized = [normalize(word) for word in words]
        tagged: list[TaggedEntity] = []
        position = 0
        while position < len(words):
            match = self._match_at(normalized, position)
            if match is None:
                position += 1
                continue
            tokens, entity_type, canonical_id = match
            end = position + len(tokens)
            tagged.append(
                TaggedEntity(
                    word_start=position,
                    word_end=end,
                    text=" ".join(words[position:end]),
                    entity_type=entity_type,
                    canonical_id=canonical_id,
                )
            )
            position = end
        return tagged

    def _match_at(
        self, normalized: Sequence[str], position: int
    ) -> Optional[tuple[tuple[str, ...], str, str]]:
        for tokens, entity_type, canonical_id in self._entries:
            end = position + len(tokens)
            if end <= len(normalized) and tuple(normalized[position:end]) == tokens:
                return tokens, entity_type, canonical_id
        return None


class TextPreprocessor:
    """Full preprocessing pipeline: split, tokenize, and (optionally) tag.

    Produces plain dictionaries describing sentences and tagged entities so
    that :class:`repro.context.corpus.Corpus` can persist them through the
    ORM layer without this module depending on the database.
    """

    def __init__(
        self,
        tokenizer: Optional[SimpleTokenizer] = None,
        sentence_splitter: Optional[SimpleSentenceSplitter] = None,
        entity_tagger: Optional[DictionaryEntityTagger] = None,
    ) -> None:
        self.tokenizer = tokenizer or SimpleTokenizer()
        self.sentence_splitter = sentence_splitter or SimpleSentenceSplitter()
        self.entity_tagger = entity_tagger

    def process_document(self, text: str) -> list[dict]:
        """Process one document's text into sentence dicts.

        Each returned dict has keys ``text``, ``words``, ``char_offsets``,
        ``position``, and ``entities`` (a list of :class:`TaggedEntity`).
        """
        sentences = []
        for position, sentence_text in enumerate(self.sentence_splitter.split(text)):
            words, offsets = self.tokenizer.tokenize(sentence_text)
            entities = self.entity_tagger.tag(words) if self.entity_tagger else []
            sentences.append(
                {
                    "text": sentence_text,
                    "words": words,
                    "char_offsets": offsets,
                    "position": position,
                    "entities": entities,
                }
            )
        return sentences
