"""Synthetic task datasets emulating the paper's six applications.

The real deployments use PubMed abstracts, EHR notes, news articles, OpenI
radiology reports, and CrowdFlower annotations, none of which can be shipped
offline.  Each module here generates a seeded synthetic substitute with the
same statistical structure the corresponding application exercises (entity
pairs planted with a controlled positive rate, cue phrases correlated with
the gold relation, noisy knowledge bases for distant supervision, correlated
labeling-function families, crowd workers of varying accuracy, and paired
"image" features for the cross-modal task).

Use :func:`repro.datasets.base.load_task` / ``registered_tasks`` to construct
a task by name.
"""

from repro.datasets.base import TaskDataset, TaskSummary, load_task, registered_tasks
from repro.datasets.synthetic import (
    SyntheticMatrixResult,
    generate_correlated_label_matrix,
    generate_label_matrix,
)

__all__ = [
    "TaskDataset",
    "TaskSummary",
    "load_task",
    "registered_tasks",
    "SyntheticMatrixResult",
    "generate_label_matrix",
    "generate_correlated_label_matrix",
]
