"""Task dataset containers and the task registry.

A :class:`TaskDataset` bundles everything an end-to-end experiment needs:
the materialized candidates per split, their gold labels (used for evaluation
only), the task's labeling-function suite (optionally grouped by source
type), and summary statistics matching the paper's Table 2 / Table 7 columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.context.candidates import Candidate
from repro.exceptions import DatasetError
from repro.labeling.lf import LabelingFunction
from repro.types import POSITIVE

SPLITS = ("train", "dev", "test")


@dataclass(frozen=True)
class TaskSummary:
    """Summary statistics of a task (the paper's Table 2 and Table 7 rows)."""

    name: str
    num_lfs: int
    positive_fraction: Optional[float]
    num_documents: int
    num_candidates: int
    split_sizes: dict[str, int]


@dataclass
class TaskDataset:
    """A fully constructed weak-supervision task.

    Attributes
    ----------
    name:
        Task name (``"cdr"``, ``"chem"``, ``"ehr"``, ``"spouses"``,
        ``"radiology"``, ``"crowd"``).
    candidates:
        Mapping from split name to the list of candidates in that split.
    gold:
        Mapping from split name to the gold label vector (evaluation only —
        the training split's gold labels are never given to the pipeline).
    lfs:
        The task's labeling functions.
    distant_supervision_lfs:
        The subset of LFs used by the distant-supervision-only baseline
        (Table 3's first column); empty for tasks without a KB.
    cardinality:
        Number of classes (2 except the Crowd task).
    num_documents:
        Number of source documents the candidates were extracted from.
    metadata:
        Free-form extras (e.g. the synthetic KB, true relation pairs).
    """

    name: str
    candidates: dict[str, list[Candidate]]
    gold: dict[str, np.ndarray]
    lfs: list[LabelingFunction]
    distant_supervision_lfs: list[LabelingFunction] = field(default_factory=list)
    cardinality: int = 2
    num_documents: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for split in self.candidates:
            if split not in SPLITS:
                raise DatasetError(f"unknown split {split!r}; expected one of {SPLITS}")
            if split in self.gold and len(self.gold[split]) != len(self.candidates[split]):
                raise DatasetError(
                    f"split {split!r} has {len(self.candidates[split])} candidates but "
                    f"{len(self.gold[split])} gold labels"
                )

    # ------------------------------------------------------------------- access
    def split_candidates(self, split: str) -> list[Candidate]:
        """Candidates of one split."""
        try:
            return self.candidates[split]
        except KeyError:
            raise DatasetError(f"task {self.name!r} has no split {split!r}") from None

    def stream_candidates(self, split: str):
        """Yield one split's candidates one at a time.

        The streaming entry point for the labeling execution engine: feed
        this generator to :meth:`repro.labeling.applier.LFApplier.apply` and
        the candidate list is consumed chunk by chunk rather than handed
        over as one materialized sequence.  (Task datasets hold their
        candidates in memory today, but consumers written against this
        iterator keep working when a split is backed by out-of-core
        storage.)
        """
        yield from self.split_candidates(split)

    def split_gold(self, split: str) -> np.ndarray:
        """Gold labels of one split."""
        try:
            return self.gold[split]
        except KeyError:
            raise DatasetError(
                f"task {self.name!r} has no gold labels for split {split!r}"
            ) from None

    @property
    def num_candidates(self) -> int:
        """Total number of candidates across splits."""
        return sum(len(candidates) for candidates in self.candidates.values())

    def lfs_by_type(self) -> dict[str, list[LabelingFunction]]:
        """Group the LF suite by source type (for the Table 6 ablation)."""
        groups: dict[str, list[LabelingFunction]] = {}
        for lf in self.lfs:
            groups.setdefault(lf.source_type, []).append(lf)
        return groups

    def summary(self) -> TaskSummary:
        """Build the Table 2 / Table 7 style summary row."""
        train_gold = self.gold.get("train")
        if self.cardinality == 2 and train_gold is not None and train_gold.size:
            positive_fraction = float((train_gold == POSITIVE).mean())
        else:
            positive_fraction = None
        return TaskSummary(
            name=self.name,
            num_lfs=len(self.lfs),
            positive_fraction=positive_fraction,
            num_documents=self.num_documents,
            num_candidates=len(self.candidates.get("train", [])),
            split_sizes={split: len(items) for split, items in self.candidates.items()},
        )


# --------------------------------------------------------------------- registry
_TASK_BUILDERS: dict[str, Callable[..., TaskDataset]] = {}


def register_task(name: str) -> Callable[[Callable[..., TaskDataset]], Callable[..., TaskDataset]]:
    """Decorator registering a task builder under ``name``."""

    def decorate(builder: Callable[..., TaskDataset]) -> Callable[..., TaskDataset]:
        _TASK_BUILDERS[name] = builder
        return builder

    return decorate


def registered_tasks() -> list[str]:
    """Names of all registered tasks (importing the task modules lazily)."""
    _import_task_modules()
    return sorted(_TASK_BUILDERS)


def load_task(name: str, scale: float = 1.0, seed: int = 0, **kwargs) -> TaskDataset:
    """Build a registered task dataset.

    Parameters
    ----------
    name:
        Registered task name.
    scale:
        Multiplier on the default corpus size (use < 1 for fast tests).
    seed:
        RNG seed; the same (name, scale, seed) always produces the same task.
    """
    _import_task_modules()
    try:
        builder = _TASK_BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown task {name!r}; registered tasks are {sorted(_TASK_BUILDERS)}"
        ) from None
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    return builder(scale=scale, seed=seed, **kwargs)


def _import_task_modules() -> None:
    """Import the task modules so their ``register_task`` decorators run."""
    from repro.datasets import cdr, chem, crowd, ehr, radiology, spouses  # noqa: F401
