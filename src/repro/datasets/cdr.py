"""The CDR task: chemical-induced disease relation extraction (paper Section 4.1.1).

The real task is the BioCreative V chemical–disease relation benchmark with
distant supervision from the Comparative Toxicogenomics Database (CTD).  The
synthetic substitute plants a chemical→disease "causes" relation, writes
PubMed-abstract-style sentences whose cue phrases are noisily correlated with
the planted truth, builds a CTD-like noisy KB over the canonical ids, and
defines a 33-LF suite mixing text patterns, distant supervision, and
structure-based heuristics — the same mix the paper's Table 6 ablation
studies.
"""

from __future__ import annotations

from repro.datasets.base import TaskDataset, register_task
from repro.datasets.kb import build_noisy_kb
from repro.datasets.lf_library import (
    distant_supervision_lfs,
    keyword_pattern_lfs,
    regex_variant_lfs,
    structure_based_lfs,
)
from repro.datasets.synth_text import RelationTaskSpec, build_relation_task
from repro.datasets.vocab import CHEMICALS, DISEASES
from repro.types import NEGATIVE, POSITIVE

POSITIVE_TEMPLATES = [
    "{e1} causes {e2} in some patients.",
    "{e1} caused severe {e2} during the trial.",
    "{e1} induced {e2} was reported in two cases.",
    "The patient developed {e2} after {e1} administration.",
    "{e2} following {e1} therapy was documented.",
    "{e1} is associated with an increased risk of {e2}.",
    "{e1} aggravates existing {e2} in elderly patients.",
    "Exposure to {e1} resulted in {e2}.",
    "{e2} secondary to {e1} was noted on admission.",
    "{e1} has been linked to {e2} in a retrospective study.",
    "We describe a case of {e2} induced by {e1}.",
]

NEGATIVE_TEMPLATES = [
    "{e1} treats {e2} effectively.",
    "{e1} is used for the treatment of {e2}.",
    "{e2} improved after {e1} therapy.",
    "{e1} reduced the severity of {e2}.",
    "{e1} prevented {e2} in the treated cohort.",
    "{e1} alleviates the symptoms of {e2}.",
    "{e1} was effective against {e2}.",
    "Patients with {e2} were treated with {e1}.",
    "{e2} was relieved by low dose {e1}.",
]

NEUTRAL_TEMPLATES = [
    "The study measured {e1} levels in patients with {e2}.",
    "Both {e1} and {e2} were mentioned in the discharge report.",
    "{e2} was present before {e1} was given.",
    "Serum {e1} was monitored during the course of {e2}.",
    "A history of {e2} was recorded prior to starting {e1}.",
]

#: Cue words whose presence between the argument spans votes positive.
POSITIVE_CUES = [
    "causes", "caused", "induced", "induces", "associated", "linked",
    "aggravates", "following", "resulted", "secondary",
]

#: Cue words whose presence between the argument spans votes negative.
NEGATIVE_CUES = [
    "treats", "treated", "treatment", "improved", "reduced", "prevented",
    "alleviates", "effective", "relieved",
]

#: Regex stems that deliberately overlap with the keyword LFs (correlated LFs).
CORRELATED_STEMS = [
    ("caus", POSITIVE),
    ("induc", POSITIVE),
    ("treat", NEGATIVE),
    ("prevent", NEGATIVE),
]


def build_spec(scale: float = 1.0) -> RelationTaskSpec:
    """The CDR corpus specification (900 documents at scale 1.0, ~25% positive)."""
    return RelationTaskSpec(
        name="cdr",
        relation_type="causes",
        entity_type1="chemical",
        entity_type2="disease",
        entities1=dict(CHEMICALS),
        entities2=dict(DISEASES),
        positive_templates=POSITIVE_TEMPLATES,
        negative_templates=NEGATIVE_TEMPLATES,
        neutral_templates=NEUTRAL_TEMPLATES,
        positive_fraction=0.246,
        cue_noise=0.15,
        false_positive_cue_rate=0.04,
        false_negative_cue_rate=0.25,
        neutral_probability=0.2,
        num_documents=int(round(900 * scale)),
        sentences_per_document=(3, 8),
    )


@register_task("cdr")
def build_cdr_task(scale: float = 0.35, seed: int = 0) -> TaskDataset:
    """Build the synthetic CDR task dataset.

    The default scale (0.35) keeps the corpus laptop-fast (~300 documents,
    a few thousand candidates) while preserving the paper's label density
    (d_Λ ≈ 1.8) and positive rate (≈ 25%).
    """
    spec = build_spec(scale=scale / 0.35 * 0.35) if scale == 0.35 else build_spec(scale=scale)
    data = build_relation_task(spec, seed=seed, scale=1.0)

    knowledge_base = build_noisy_kb(
        name="ctd",
        true_pairs=data.true_pairs,
        all_pairs=data.all_pairs,
        positive_subset="causes",
        negative_subset="treats",
        coverage=0.5,
        precision=0.85,
        negative_coverage=0.25,
        negative_precision=0.85,
        seed=seed + 1,
    )
    secondary_kb = build_noisy_kb(
        name="drugbank",
        true_pairs=data.true_pairs,
        all_pairs=data.all_pairs,
        positive_subset="adverse_effects",
        negative_subset="indications",
        coverage=0.3,
        precision=0.7,
        negative_coverage=0.15,
        negative_precision=0.7,
        seed=seed + 2,
    )

    pattern_lfs = keyword_pattern_lfs(POSITIVE_CUES, NEGATIVE_CUES)
    correlated_lfs = regex_variant_lfs(CORRELATED_STEMS)
    ds_lfs = distant_supervision_lfs(knowledge_base, "causes", "treats")
    ds_lfs += distant_supervision_lfs(secondary_kb, "adverse_effects", "indications")
    structure_lfs = structure_based_lfs()
    lfs = pattern_lfs + correlated_lfs + ds_lfs + structure_lfs

    return TaskDataset(
        name="cdr",
        candidates=data.candidates,
        gold=data.gold,
        lfs=lfs,
        distant_supervision_lfs=distant_supervision_lfs(knowledge_base, "causes", "treats"),
        num_documents=data.num_documents,
        metadata={
            "knowledge_base": knowledge_base,
            "secondary_knowledge_base": secondary_kb,
            "true_pairs": data.true_pairs,
            "spec": spec,
        },
    )
