"""The Chem task: chemical reagent → reaction product extraction (Section 4.1.1).

The real deployment (with FDA collaborators) extracts reagent/product
relations from PubMed abstracts with distant supervision from MetaCyc.  The
synthetic substitute plants a sparse "produces" relation (≈ 4% positive,
matching Table 2), generates reaction-description sentences, and defines a
16-LF suite.  The sparse positives and low label density (d_Λ ≈ 1.2) are the
reason the paper's optimizer picks majority vote for this task (Table 1) —
the synthetic version preserves exactly that property.
"""

from __future__ import annotations

from repro.datasets.base import TaskDataset, register_task
from repro.datasets.kb import build_noisy_kb
from repro.datasets.lf_library import (
    distant_supervision_lfs,
    keyword_pattern_lfs,
    structure_based_lfs,
)
from repro.datasets.synth_text import RelationTaskSpec, build_relation_task
from repro.datasets.vocab import PRODUCTS, REAGENTS

POSITIVE_TEMPLATES = [
    "{e1} yields {e2} under reflux.",
    "Reaction of {e1} gave {e2} in high yield.",
    "{e1} was converted to {e2} by oxidation.",
    "Treatment with {e1} afforded {e2}.",
    "{e1} produces {e2} in the presence of a catalyst.",
    "{e2} was synthesized from {e1}.",
    "{e1} reacted to form {e2} at room temperature.",
]

NEGATIVE_TEMPLATES = [
    "{e1} was dissolved before {e2} was added separately.",
    "{e1} did not react to give {e2}.",
    "{e2} was purchased and compared with {e1} as a control.",
    "{e1} was recovered unchanged while {e2} degraded.",
    "No conversion of {e1} into {e2} was observed.",
    "{e1} and {e2} were analysed in separate experiments.",
    "{e2} was stable in the presence of {e1}.",
]

NEUTRAL_TEMPLATES = [
    "The mixture containing {e1} and {e2} was analysed by chromatography.",
    "Spectra of {e1} and {e2} were recorded.",
    "{e1} and {e2} were stored at low temperature.",
]

POSITIVE_CUES = ["yields", "gave", "converted", "afforded", "produces", "synthesized", "form"]
NEGATIVE_CUES = ["separately", "unchanged", "control", "stable", "no"]


def build_spec(scale: float = 1.0) -> RelationTaskSpec:
    """The Chem corpus specification (~4% positive candidates, sparse cues)."""
    return RelationTaskSpec(
        name="chem",
        relation_type="produces",
        entity_type1="reagent",
        entity_type2="product",
        entities1=dict(REAGENTS),
        entities2=dict(PRODUCTS),
        positive_templates=POSITIVE_TEMPLATES,
        negative_templates=NEGATIVE_TEMPLATES,
        neutral_templates=NEUTRAL_TEMPLATES,
        positive_fraction=0.041,
        cue_noise=0.2,
        false_positive_cue_rate=0.03,
        false_negative_cue_rate=0.3,
        neutral_probability=0.45,
        num_documents=int(round(1753 * scale)),
        sentences_per_document=(2, 5),
    )


@register_task("chem")
def build_chem_task(scale: float = 0.2, seed: int = 0) -> TaskDataset:
    """Build the synthetic Chem task dataset (16 labeling functions)."""
    data = build_relation_task(build_spec(scale=scale), seed=seed, scale=1.0)
    knowledge_base = build_noisy_kb(
        name="metacyc",
        true_pairs=data.true_pairs,
        all_pairs=data.all_pairs,
        positive_subset="reactions",
        negative_subset="non_reactions",
        coverage=0.5,
        precision=0.8,
        negative_coverage=0.1,
        negative_precision=0.9,
        seed=seed + 1,
    )
    pattern_lfs = keyword_pattern_lfs(POSITIVE_CUES, NEGATIVE_CUES)
    ds_lfs = distant_supervision_lfs(knowledge_base, "reactions", "non_reactions")
    structure_lfs = structure_based_lfs(
        far_distance=12,
        reversed_negative_cues=("purchased", "compared"),
        neutral_sentence_cues=("analysed", "spectra", "stored"),
    )[:2]
    lfs = pattern_lfs + ds_lfs + structure_lfs

    return TaskDataset(
        name="chem",
        candidates=data.candidates,
        gold=data.gold,
        lfs=lfs,
        distant_supervision_lfs=ds_lfs,
        num_documents=data.num_documents,
        metadata={"knowledge_base": knowledge_base, "true_pairs": data.true_pairs},
    )
