"""The Crowd task: crowdsourced weather sentiment (Section 4.1.2).

The real task uses CrowdFlower's weather-sentiment dataset: twenty
contributors grade each of 505 tweets into five sentiment categories, and
each contributor becomes one labeling function.  The synthetic substitute
generates 505 weather tweets from a latent five-class sentiment, simulates
102 crowd workers of heterogeneous accuracy (20 graders per tweet), and
exposes one LF per worker through
:class:`repro.labeling.generators.CrowdWorkerLFGenerator` — demonstrating
that Snorkel subsumes crowdsourcing label models.  The discriminative model
then classifies the tweet *text*, independent of the workers.

Labels follow the categorical convention (``0`` = abstain, classes ``1..5``
per :data:`CROWD_CLASSES`), so the task runs end-to-end through
:class:`repro.pipeline.SnorkelPipeline`: the k-ary generative model produces
``(m, 5)`` posteriors and the noise-aware softmax end model trains on them
(the Table 4 driver keeps Dawid–Skene as a cross-check baseline).
"""

from __future__ import annotations

import numpy as np

from repro.context.candidates import Candidate, SentenceView, SpanView
from repro.datasets.base import TaskDataset, register_task
from repro.datasets.vocab import (
    WEATHER_NEGATIVE_WORDS,
    WEATHER_NEUTRAL_WORDS,
    WEATHER_POSITIVE_WORDS,
)
from repro.evaluation.splits import assign_document_splits
from repro.labeling.generators import CrowdWorkerLFGenerator
from repro.utils.rng import ensure_rng

#: The five sentiment classes of the CrowdFlower task.
CROWD_CLASSES = {
    1: "negative",
    2: "neutral",
    3: "positive",
    4: "not_weather",
    5: "cannot_tell",
}

#: Latent class prior (roughly matching the skew of the real task).
CLASS_PRIOR = np.array([0.30, 0.25, 0.30, 0.10, 0.05])

_NOT_WEATHER_WORDS = ["traffic", "game", "election", "coffee", "meeting", "concert"]
_AMBIGUOUS_WORDS = ["hmm", "maybe", "whatever", "something", "odd", "unsure"]

_CLASS_VOCAB = {
    1: WEATHER_NEGATIVE_WORDS,
    2: WEATHER_NEUTRAL_WORDS,
    3: WEATHER_POSITIVE_WORDS,
    4: _NOT_WEATHER_WORDS,
    5: _AMBIGUOUS_WORDS,
}

_FILLER = ["today", "outside", "really", "so", "this", "morning", "here", "feeling", "just", "very"]


def _generate_tweet(rng: np.random.Generator, sentiment: int) -> list[str]:
    """Generate tweet tokens whose vocabulary reflects the latent sentiment."""
    vocab = _CLASS_VOCAB[sentiment]
    num_class_words = int(rng.integers(1, 4))
    num_filler = int(rng.integers(3, 8))
    words = [vocab[int(rng.integers(len(vocab)))] for _ in range(num_class_words)]
    words += [_FILLER[int(rng.integers(len(_FILLER)))] for _ in range(num_filler)]
    # Occasionally mix in a word from another class to make the text noisy.
    if rng.random() < 0.25:
        other = int(rng.integers(1, 6))
        words.append(_CLASS_VOCAB[other][int(rng.integers(len(_CLASS_VOCAB[other])))])
    rng.shuffle(words)
    return words


@register_task("crowd")
def build_crowd_task(
    scale: float = 1.0,
    seed: int = 0,
    num_workers: int = 102,
    graders_per_tweet: int = 20,
) -> TaskDataset:
    """Build the synthetic Crowd sentiment task (505 tweets at scale 1.0)."""
    rng = ensure_rng(seed)
    num_tweets = max(30, int(round(505 * scale)))
    num_classes = len(CROWD_CLASSES)

    sentiments = rng.choice(
        np.arange(1, num_classes + 1), size=num_tweets, p=CLASS_PRIOR
    ).astype(np.int64)
    splits = assign_document_splits(num_tweets, 0.125, 0.125, seed=rng)

    # Simulate workers: per-worker accuracy, uniform confusion over wrong classes.
    worker_accuracies = rng.uniform(0.35, 0.9, size=num_workers)
    annotations: dict[str, dict[int, int]] = {f"{w:03d}": {} for w in range(num_workers)}
    candidates: dict[str, list[Candidate]] = {"train": [], "dev": [], "test": []}
    gold: dict[str, list[int]] = {"train": [], "dev": [], "test": []}

    for tweet_index in range(num_tweets):
        sentiment = int(sentiments[tweet_index])
        words = _generate_tweet(rng, sentiment)
        candidate = Candidate(
            uid=tweet_index,
            span1=SpanView(text=words[0], word_start=0, word_end=1),
            span2=SpanView(text=words[-1], word_start=len(words) - 1, word_end=len(words)),
            sentence=SentenceView(
                words=words,
                text=" ".join(words),
                document_name=f"tweet-{tweet_index:05d}",
            ),
            relation_type="weather_sentiment",
            split=splits[tweet_index],
            gold_label=sentiment,
        )
        candidates[splits[tweet_index]].append(candidate)
        gold[splits[tweet_index]].append(sentiment)

        graders = rng.choice(num_workers, size=min(graders_per_tweet, num_workers), replace=False)
        for worker in graders:
            if rng.random() < worker_accuracies[worker]:
                vote = sentiment
            else:
                wrong = [klass for klass in range(1, num_classes + 1) if klass != sentiment]
                vote = int(wrong[int(rng.integers(len(wrong)))])
            annotations[f"{int(worker):03d}"][tweet_index] = vote

    generator = CrowdWorkerLFGenerator(annotations, cardinality=num_classes)
    return TaskDataset(
        name="crowd",
        candidates=candidates,
        gold={split: np.array(values, dtype=np.int64) for split, values in gold.items()},
        lfs=generator.generate(),
        cardinality=num_classes,
        num_documents=num_tweets,
        metadata={
            "worker_accuracies": worker_accuracies,
            "classes": dict(CROWD_CLASSES),
            "class_prior": CLASS_PRIOR.copy(),
            "graders_per_tweet": graders_per_tweet,
        },
    )
