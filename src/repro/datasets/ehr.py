"""The EHR task: pain level at anatomical location from clinical notes (Section 4.1.1).

The real deployment (with the VA and Stanford Hospital) extracts mentions of
pain at precise anatomical locations from unstructured EHR notes; distant
supervision from a KB is not applicable, so the prior baseline was a set of
hand-written regular expressions.  The synthetic substitute plants a
(pain-descriptor, anatomy) "pain-at-location" relation at the paper's ≈ 37%
positive rate and provides a 24-LF suite of patterns and structure-based
heuristics plus the regex-only baseline set used for Table 3's
"Distant Supervision" column stand-in.
"""

from __future__ import annotations

from repro.datasets.base import TaskDataset, register_task
from repro.datasets.lf_library import keyword_pattern_lfs, regex_variant_lfs, structure_based_lfs
from repro.datasets.synth_text import RelationTaskSpec, build_relation_task
from repro.datasets.vocab import ANATOMY, PAIN_TERMS
from repro.labeling.declarative import lf_search
from repro.types import NEGATIVE, POSITIVE

POSITIVE_TEMPLATES = [
    "Patient reports {e1} localized to the {e2}.",
    "{e1} in the {e2} worsened overnight.",
    "Examination reveals {e1} over the {e2}.",
    "{e1} radiating to the {e2} since surgery.",
    "Complains of {e1} at the {e2}.",
    "Persistent {e1} involving the {e2} was documented.",
    "{e1} noted in the {e2} on palpation.",
    "The {e2} remains tender with {e1} on movement.",
]

NEGATIVE_TEMPLATES = [
    "Denies {e1} in the {e2}.",
    "No {e1} reported at the {e2}.",
    "The {e2} is unremarkable without {e1}.",
    "{e1} resolved and the {e2} is now asymptomatic.",
    "{e1} was ruled out at the {e2}.",
    "The {e2} shows full range of motion and no {e1}.",
]

NEUTRAL_TEMPLATES = [
    "Prior imaging of the {e2} was reviewed before assessing {e1}.",
    "Patient educated about {e1} management and {e2} exercises.",
    "Follow up scheduled for the {e2} and general {e1} screening.",
]

POSITIVE_CUES = [
    "reports", "localized", "worsened", "reveals", "radiating", "complains",
    "persistent", "noted", "tender", "involving",
]
NEGATIVE_CUES = [
    "denies", "no", "unremarkable", "resolved", "ruled", "asymptomatic",
]
CORRELATED_STEMS = [("radiat", POSITIVE), ("complain", POSITIVE), ("denie", NEGATIVE)]

#: The prior heuristic baseline for EHR in the paper was regular-expression
#: based labeling; these regex LFs stand in for it (Table 3's first column).
REGEX_BASELINE_PATTERNS = [
    (r"reports?\W.*", POSITIVE),
    (r"denies\W.*", NEGATIVE),
    (r"no\W.*", NEGATIVE),
]


def build_spec(scale: float = 1.0) -> RelationTaskSpec:
    """The EHR corpus specification (≈ 37% positive candidates)."""
    return RelationTaskSpec(
        name="ehr",
        relation_type="pain_at_location",
        entity_type1="pain",
        entity_type2="anatomy",
        entities1=dict(PAIN_TERMS),
        entities2=dict(ANATOMY),
        positive_templates=POSITIVE_TEMPLATES,
        negative_templates=NEGATIVE_TEMPLATES,
        neutral_templates=NEUTRAL_TEMPLATES,
        positive_fraction=0.368,
        cue_noise=0.12,
        false_positive_cue_rate=0.05,
        false_negative_cue_rate=0.2,
        neutral_probability=0.2,
        num_documents=int(round(47827 * scale)),
        sentences_per_document=(2, 4),
    )


@register_task("ehr")
def build_ehr_task(scale: float = 0.01, seed: int = 0) -> TaskDataset:
    """Build the synthetic EHR task dataset (24 labeling functions).

    The default scale (0.01) maps the paper's 47,827 documents to ~480
    synthetic notes, keeping end-to-end runs fast.
    """
    data = build_relation_task(build_spec(scale=scale), seed=seed, scale=1.0)
    pattern_lfs = keyword_pattern_lfs(POSITIVE_CUES, NEGATIVE_CUES)
    correlated_lfs = regex_variant_lfs(CORRELATED_STEMS)
    structure_lfs = structure_based_lfs(
        far_distance=10,
        reversed_negative_cues=("imaging", "reviewed"),
        neutral_sentence_cues=("educated", "scheduled", "screening"),
    )
    regex_baseline = [
        lf_search(pattern, label=label, name=f"lf_regex_baseline_{index}")
        for index, (pattern, label) in enumerate(REGEX_BASELINE_PATTERNS)
    ]
    lfs = pattern_lfs + correlated_lfs + structure_lfs

    return TaskDataset(
        name="ehr",
        candidates=data.candidates,
        gold=data.gold,
        lfs=lfs,
        distant_supervision_lfs=regex_baseline,
        num_documents=data.num_documents,
        metadata={"true_pairs": data.true_pairs, "baseline": "regex"},
    )
