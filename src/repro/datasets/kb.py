"""Synthetic knowledge bases for distant supervision.

The paper's deployments align candidates against external KBs (CTD, MetaCyc,
DBpedia), whose subsets have different accuracy and coverage (Example 2.4).
:func:`build_noisy_kb` constructs the synthetic equivalent from the planted
ground-truth relation set: a "positive" subset covering part of the true
pairs with some false entries mixed in, and a "negative" subset asserting
pairs that (mostly) do not hold — exactly the structure the Ontology LF
generator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class KnowledgeBase:
    """A named collection of relation subsets (canonical-id pairs)."""

    name: str
    subsets: dict[str, list[tuple[str, str]]] = field(default_factory=dict)

    def subset(self, subset_name: str) -> list[tuple[str, str]]:
        """Pairs asserted by one subset."""
        try:
            return self.subsets[subset_name]
        except KeyError:
            raise DatasetError(
                f"knowledge base {self.name!r} has no subset {subset_name!r}; "
                f"available: {sorted(self.subsets)}"
            ) from None

    @property
    def subset_names(self) -> list[str]:
        """Names of all subsets."""
        return sorted(self.subsets)

    def size(self) -> int:
        """Total number of asserted pairs across subsets."""
        return sum(len(pairs) for pairs in self.subsets.values())


def build_noisy_kb(
    name: str,
    true_pairs: Iterable[tuple[str, str]],
    all_pairs: Iterable[tuple[str, str]],
    positive_subset: str = "causes",
    negative_subset: str = "treats",
    coverage: float = 0.6,
    precision: float = 0.85,
    negative_coverage: float = 0.3,
    negative_precision: float = 0.85,
    seed: SeedLike = 0,
) -> KnowledgeBase:
    """Build a two-subset KB from the planted relation ground truth.

    Parameters
    ----------
    true_pairs:
        Canonical-id pairs for which the relation truly holds.
    all_pairs:
        The universe of candidate pairs (true and false).
    coverage:
        Fraction of true pairs included in the positive subset.
    precision:
        Fraction of the positive subset's entries that are actually true
        (the rest are sampled from the false pairs — KB noise).
    negative_coverage:
        Fraction of false pairs included in the negative ("treats"-style)
        subset.
    negative_precision:
        Fraction of the negative subset's entries that are actually false.
    """
    for value, label in ((coverage, "coverage"), (precision, "precision"),
                         (negative_coverage, "negative_coverage"),
                         (negative_precision, "negative_precision")):
        if not 0.0 <= value <= 1.0:
            raise DatasetError(f"{label} must lie in [0, 1], got {value}")
    rng = ensure_rng(seed)
    true_set = {tuple(pair) for pair in true_pairs}
    universe = [tuple(pair) for pair in all_pairs]
    false_pairs = [pair for pair in universe if pair not in true_set]
    true_list = sorted(true_set)

    def sample(pairs: Sequence[tuple[str, str]], fraction: float) -> list[tuple[str, str]]:
        if not pairs or fraction <= 0.0:
            return []
        count = max(1, int(round(fraction * len(pairs))))
        indices = rng.choice(len(pairs), size=min(count, len(pairs)), replace=False)
        return [pairs[int(i)] for i in indices]

    covered_true = sample(true_list, coverage)
    if precision < 1.0 and covered_true:
        num_noise = int(round(len(covered_true) * (1.0 - precision) / max(precision, 1e-9)))
        covered_true = covered_true + sample(false_pairs, num_noise / max(len(false_pairs), 1))
    covered_false = sample(false_pairs, negative_coverage)
    if negative_precision < 1.0 and covered_false:
        num_noise = int(
            round(len(covered_false) * (1.0 - negative_precision) / max(negative_precision, 1e-9))
        )
        covered_false = covered_false + sample(true_list, num_noise / max(len(true_list), 1))

    return KnowledgeBase(
        name=name,
        subsets={positive_subset: covered_true, negative_subset: covered_false},
    )
