"""Shared helpers for building task LF suites.

Every relation-extraction task builds its labeling functions from the same
three ingredient types the paper's ablation distinguishes (Table 6): text
patterns, distant supervision from a (noisy) knowledge base, and
structure-based heuristics over the context hierarchy.  The helpers here
produce those groups from task-specific keyword lists and KBs; the per-task
modules only supply vocabulary.
"""

from __future__ import annotations

from typing import Sequence

from repro.context.candidates import Candidate
from repro.datasets.kb import KnowledgeBase
from repro.labeling.declarative import lf_search, pattern_lf
from repro.labeling.generators import OntologyLFGenerator
from repro.labeling.lf import LabelingFunction
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.textutils import normalize


def keyword_pattern_lfs(
    positive_keywords: Sequence[str],
    negative_keywords: Sequence[str],
    where: str = "between",
) -> list[LabelingFunction]:
    """One pattern LF per cue keyword (positive cues vote +1, negative cues -1)."""
    lfs = [
        pattern_lf(keyword, label=POSITIVE, where=where, name=f"lf_pos_{_slug(keyword)}")
        for keyword in positive_keywords
    ]
    lfs.extend(
        pattern_lf(keyword, label=NEGATIVE, where=where, name=f"lf_neg_{_slug(keyword)}")
        for keyword in negative_keywords
    )
    return lfs


def regex_variant_lfs(stems: Sequence[tuple[str, int]]) -> list[LabelingFunction]:
    """Regex LFs keyed on word stems (e.g. ``caus`` matches causes/caused).

    These are deliberately *correlated* with the keyword LFs built from the
    same cue families — the redundancy users produce in practice and that
    structure learning is meant to discover.
    """
    return [
        lf_search(rf"\w*{stem}\w*", label=label, name=f"lf_stem_{_slug(stem)}")
        for stem, label in stems
    ]


def distant_supervision_lfs(
    knowledge_base: KnowledgeBase,
    positive_subset: str,
    negative_subset: str,
) -> list[LabelingFunction]:
    """Ontology-generator LFs: one per KB subset (paper Example 2.4)."""
    generator = OntologyLFGenerator(
        name=knowledge_base.name,
        subsets=knowledge_base.subsets,
        subset_labels={positive_subset: True, negative_subset: False},
    )
    return generator.generate()


def structure_based_lfs(
    far_distance: int = 15,
    reversed_negative_cues: Sequence[str] = ("treated", "given", "received"),
    neutral_sentence_cues: Sequence[str] = ("measured", "monitored", "history"),
) -> list[LabelingFunction]:
    """Heuristics over the context hierarchy rather than raw text patterns.

    * ``lf_far_apart`` — arguments separated by many tokens are usually not
      related (votes negative).
    * ``lf_adjacent_arguments`` — immediately adjacent arguments in these
      corpora are usually list-like co-mentions (votes negative).
    * ``lf_arg2_first_passive`` — when the second argument precedes the first
      and a passive "treated/given/received" cue appears between them, the
      sentence is about treatment, not causation (votes negative).
    * ``lf_neutral_context`` — sentences about measurement or patient history
      rarely assert the relation (votes negative).
    * ``lf_late_sentence`` — relations asserted deep inside a document's tail
      sentences are less reliable in these synthetic corpora; abstains unless
      the sentence is late and no cue is present, then votes negative.
    """
    reversed_cues = {normalize(cue) for cue in reversed_negative_cues}
    neutral_cues = {normalize(cue) for cue in neutral_sentence_cues}

    def far_apart(candidate: Candidate) -> int:
        return NEGATIVE if candidate.token_distance() > far_distance else ABSTAIN

    def adjacent_arguments(candidate: Candidate) -> int:
        return NEGATIVE if candidate.token_distance() == 0 else ABSTAIN

    def arg2_first_passive(candidate: Candidate) -> int:
        if candidate.span1_precedes_span2():
            return ABSTAIN
        between = {normalize(token) for token in candidate.words_between()}
        return NEGATIVE if between & reversed_cues else ABSTAIN

    def neutral_context(candidate: Candidate) -> int:
        between = {normalize(token) for token in candidate.words_between()}
        return NEGATIVE if between & neutral_cues else ABSTAIN

    def late_sentence(candidate: Candidate) -> int:
        if candidate.sentence.position < 6:
            return ABSTAIN
        between = {normalize(token) for token in candidate.words_between()}
        return NEGATIVE if not between else ABSTAIN

    definitions = [
        ("lf_far_apart", far_apart),
        ("lf_adjacent_arguments", adjacent_arguments),
        ("lf_arg2_first_passive", arg2_first_passive),
        ("lf_neutral_context", neutral_context),
        ("lf_late_sentence", late_sentence),
    ]
    return [
        LabelingFunction(name, function, source_type="structure")
        for name, function in definitions
    ]


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in text.lower()).strip("_")


def LINT_LFS() -> list[LabelingFunction]:
    """Representative suite for ``python -m repro.analysis`` (see its CLI docs).

    The library's LFs are built by parameterized factories, so there is
    nothing at module level for the linter to collect; this hook instantiates
    one of each factory family with sample vocabulary.  CI self-lints this
    suite, so a factory change that introduces an out-of-range label, hidden
    randomness, or shared-state mutation fails the build.
    """
    kb = KnowledgeBase(
        name="lint_kb",
        subsets={
            "known_pairs": {("aspirin", "headache")},
            "known_negatives": {("water", "headache")},
        },
    )
    return (
        keyword_pattern_lfs(["causes"], ["treats"])
        + regex_variant_lfs([("caus", POSITIVE), ("treat", NEGATIVE)])
        + distant_supervision_lfs(kb, "known_pairs", "known_negatives")
        + structure_based_lfs()
    )
