"""The Radiology task: cross-modal abnormality detection (Section 4.1.2).

The real deployment writes labeling functions over narrative radiology
reports from the OpenI repository and trains a ResNet-50 on the paired chest
X-ray images.  The synthetic substitute keeps the cross-modal split intact:

* each synthetic "report" is generated from a latent abnormality label
  (≈ 36% positive, per Table 2) with finding/region mentions and
  positively- or negatively-phrased sentences, plus MeSH-like codes in the
  document metadata,
* each report is paired with a synthetic *image feature vector* whose
  distribution depends on the same latent label but which is never visible to
  the labeling functions,
* the 18 LFs read only the report text and metadata; the end model
  (:class:`repro.discriminative.image.ImageFeatureClassifier`) reads only the
  image features.
"""

from __future__ import annotations

import numpy as np

from repro.context.candidates import Candidate
from repro.context.corpus import Corpus
from repro.context.extraction import CandidateExtractor, PairedEntityCandidateSpace
from repro.context.preprocessing import DictionaryEntityTagger, TextPreprocessor
from repro.datasets.base import TaskDataset, register_task
from repro.datasets.vocab import RADIOLOGY_FINDINGS, RADIOLOGY_REGIONS
from repro.discriminative.image import IMAGE_FEATURE_KEY
from repro.evaluation.splits import assign_document_splits
from repro.labeling.declarative import keyword_lf
from repro.labeling.lf import LabelingFunction
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.rng import ensure_rng
from repro.utils.textutils import normalize

ABNORMAL_TEMPLATES = [
    "There is a large {e1} in the {e2}.",
    "Persistent {e1} involving the {e2} is concerning for infection.",
    "New {e1} seen at the {e2} compared with prior study.",
    "Findings consistent with {e1} in the {e2}.",
    "Worsening {e1} projecting over the {e2}.",
    "{e1} noted within the {e2} is suspicious.",
]

NORMAL_TEMPLATES = [
    "No focal {e1} identified in the {e2}.",
    "The {e2} is clear without evidence of {e1}.",
    "No acute {e1} at the {e2}.",
    "Lungs are well expanded and the {e2} shows no {e1}.",
    "{e1} previously questioned at the {e2} has resolved.",
    "The {e2} is unremarkable with no {e1}.",
]

CLOSING_TEMPLATES = [
    "Heart size is within normal limits.",
    "Comparison was made with the prior examination.",
    "The osseous structures are intact.",
    "Clinical correlation is recommended.",
]

POSITIVE_REPORT_CUES = [
    "large", "persistent", "new", "consistent", "worsening", "suspicious", "concerning",
]
NEGATIVE_REPORT_CUES = [
    "no", "clear", "without", "resolved", "unremarkable", "normal",
]

#: Number of synthetic image feature dimensions (the "ResNet embedding" size).
IMAGE_FEATURE_DIM = 24

#: MeSH-like codes attached to abnormal / normal reports (noisily).
ABNORMAL_MESH_CODES = ("opacity", "effusion", "cardiomegaly")
NORMAL_MESH_CODES = ("normal", "no indexing")


def _metadata_lfs() -> list[LabelingFunction]:
    """Structure-based LFs reading the document-level MeSH-like metadata."""

    def mesh_abnormal(candidate: Candidate) -> int:
        codes = candidate.sentence.document_metadata.get("mesh_codes", [])
        return POSITIVE if any(code in ABNORMAL_MESH_CODES for code in codes) else ABSTAIN

    def mesh_normal(candidate: Candidate) -> int:
        codes = candidate.sentence.document_metadata.get("mesh_codes", [])
        return NEGATIVE if any(code in NORMAL_MESH_CODES for code in codes) else ABSTAIN

    def short_report(candidate: Candidate) -> int:
        num_sentences = candidate.sentence.document_metadata.get("num_sentences", 0)
        return NEGATIVE if num_sentences <= 2 else ABSTAIN

    def comparison_mentioned(candidate: Candidate) -> int:
        words = {normalize(token) for token in candidate.sentence.words}
        return POSITIVE if "compared" in words or "worsening" in words else ABSTAIN

    definitions = [
        ("lf_mesh_abnormal", mesh_abnormal),
        ("lf_mesh_normal", mesh_normal),
        ("lf_short_report", short_report),
        ("lf_comparison_mentioned", comparison_mentioned),
    ]
    return [
        LabelingFunction(name, function, source_type="structure")
        for name, function in definitions
    ]


def build_report_lfs() -> list[LabelingFunction]:
    """The 18-LF radiology suite: report-text cues plus metadata heuristics."""
    lfs = [
        keyword_lf([cue], label=POSITIVE, where="sentence", name=f"lf_report_pos_{cue}")
        for cue in POSITIVE_REPORT_CUES
    ]
    lfs += [
        keyword_lf([cue], label=NEGATIVE, where="sentence", name=f"lf_report_neg_{cue}")
        for cue in NEGATIVE_REPORT_CUES
    ]
    lfs += _metadata_lfs()
    return lfs


@register_task("radiology")
def build_radiology_task(scale: float = 0.15, seed: int = 0) -> TaskDataset:
    """Build the synthetic radiology task (one candidate per report).

    At scale 1.0 the corpus has 3,851 reports (the OpenI size); the default
    scale keeps runs fast while preserving the ≈ 36% abnormal rate.
    """
    rng = ensure_rng(seed)
    num_reports = max(30, int(round(3851 * scale)))
    findings = sorted(RADIOLOGY_FINDINGS)
    regions = sorted(RADIOLOGY_REGIONS)

    tagger = DictionaryEntityTagger(
        {"finding": dict(RADIOLOGY_FINDINGS), "region": dict(RADIOLOGY_REGIONS)}
    )
    corpus = Corpus(name="radiology", preprocessor=TextPreprocessor(entity_tagger=tagger))
    splits = assign_document_splits(num_reports, 0.1, 0.1, seed=rng)

    abnormal_flags = rng.random(num_reports) < 0.36
    image_features_by_document: dict[str, np.ndarray] = {}
    signal_direction = rng.normal(size=IMAGE_FEATURE_DIM)
    signal_direction /= np.linalg.norm(signal_direction)

    for index in range(num_reports):
        abnormal = bool(abnormal_flags[index])
        finding = findings[int(rng.integers(len(findings)))]
        region = regions[int(rng.integers(len(regions)))]
        # The first sentence carries the finding/region mention; the phrasing is
        # noisily aligned with the latent label (12% cue noise).
        # Asymmetric phrasing noise: abnormal findings are occasionally not
        # called out (12%), but normal studies are rarely phrased as abnormal (4%).
        flip_rate = 0.12 if abnormal else 0.04
        phrased_abnormal = abnormal if rng.random() >= flip_rate else not abnormal
        templates = ABNORMAL_TEMPLATES if phrased_abnormal else NORMAL_TEMPLATES
        first = templates[int(rng.integers(len(templates)))].format(e1=finding, e2=region)
        closers = [
            CLOSING_TEMPLATES[int(rng.integers(len(CLOSING_TEMPLATES)))]
            for _ in range(int(rng.integers(1, 4)))
        ]
        mesh_source = ABNORMAL_MESH_CODES if abnormal else NORMAL_MESH_CODES
        mesh_codes = (
            [mesh_source[int(rng.integers(len(mesh_source)))]] if rng.random() < 0.7 else []
        )
        document_name = f"radiology-report-{index:05d}"
        corpus.add_document(
            name=document_name,
            text=" ".join([first, *closers]),
            split=splits[index],
            metadata={"mesh_codes": mesh_codes, "num_sentences": 1 + len(closers)},
        )
        # Synthetic "X-ray": a feature vector shifted along a fixed direction
        # when the latent label is abnormal.  LFs never see these features.
        noise = rng.normal(scale=1.0, size=IMAGE_FEATURE_DIM)
        shift = (1.5 if abnormal else -0.3) * signal_direction
        image_features_by_document[document_name] = noise + shift

    extractor = CandidateExtractor(
        PairedEntityCandidateSpace(relation_type="abnormality", type1="finding", type2="region")
    )
    extractor.extract(corpus)

    abnormal_by_document = {
        f"radiology-report-{index:05d}": bool(abnormal_flags[index])
        for index in range(num_reports)
    }
    candidates: dict[str, list[Candidate]] = {}
    gold: dict[str, np.ndarray] = {}
    for split in ("train", "dev", "test"):
        split_candidates = corpus.candidates(split)
        for candidate in split_candidates:
            candidate.metadata[IMAGE_FEATURE_KEY] = image_features_by_document[
                candidate.sentence.document_name
            ].tolist()
            candidate.gold_label = (
                POSITIVE if abnormal_by_document[candidate.sentence.document_name] else NEGATIVE
            )
        candidates[split] = split_candidates
        gold[split] = np.array([c.gold_label for c in split_candidates], dtype=np.int64)

    return TaskDataset(
        name="radiology",
        candidates=candidates,
        gold=gold,
        lfs=build_report_lfs(),
        num_documents=corpus.num_documents,
        metadata={"image_feature_dim": IMAGE_FEATURE_DIM, "modality": "cross-modal"},
    )
