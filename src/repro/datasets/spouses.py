"""The Spouses task: spouse relation mentions in news articles (Section 4.1.1).

The real task identifies spouse relationships between person mentions in the
Signal Media news corpus, with distant supervision from DBpedia and
crowdsourced evaluation labels.  The synthetic substitute plants a symmetric
"spouse_of" relation over person names (≈ 8% positive, matching Table 2),
writes news-style sentences, builds a DBpedia-like noisy KB, and defines an
11-LF suite.  The Spouses LF suite is also the seed pool for the simulated
user study (Section 4.2), which mixes participant-authored variants of these
functions.
"""

from __future__ import annotations

from repro.datasets.base import TaskDataset, register_task
from repro.datasets.kb import build_noisy_kb
from repro.datasets.lf_library import (
    distant_supervision_lfs,
    keyword_pattern_lfs,
    structure_based_lfs,
)
from repro.datasets.synth_text import RelationTaskSpec, build_relation_task
from repro.datasets.vocab import PERSONS

POSITIVE_TEMPLATES = [
    "{e1} married {e2} in a private ceremony.",
    "{e1} and her husband {e2} attended the gala.",
    "{e1} and his wife {e2} announced the news.",
    "{e1} celebrated a wedding anniversary with {e2}.",
    "{e1} is the spouse of {e2}.",
    "{e1} tied the knot with {e2} last spring.",
    "{e1} and {e2} renewed their wedding vows.",
]

NEGATIVE_TEMPLATES = [
    "{e1} met {e2} at the conference.",
    "{e1} interviewed {e2} about the merger.",
    "{e1} defeated {e2} in the semifinal.",
    "{e1} succeeded {e2} as chief executive.",
    "{e1} and colleague {e2} published the report.",
    "{e1} criticized {e2} during the debate.",
    "{e1} was hired by {e2} to lead the project.",
]

NEUTRAL_TEMPLATES = [
    "{e1} and {e2} both appeared at the press briefing.",
    "The article mentioned {e1} alongside {e2}.",
    "{e1} was photographed near {e2} at the premiere.",
]

POSITIVE_CUES = ["married", "husband", "wife", "wedding", "spouse", "knot"]
NEGATIVE_CUES = ["interviewed", "defeated", "succeeded", "colleague", "hired"]


def build_spec(scale: float = 1.0) -> RelationTaskSpec:
    """The Spouses corpus specification (≈ 8% positive candidates)."""
    return RelationTaskSpec(
        name="spouses",
        relation_type="spouse_of",
        entity_type1="person",
        entity_type2="person",
        entities1=dict(PERSONS),
        entities2=dict(PERSONS),
        positive_templates=POSITIVE_TEMPLATES,
        negative_templates=NEGATIVE_TEMPLATES,
        neutral_templates=NEUTRAL_TEMPLATES,
        positive_fraction=0.083,
        cue_noise=0.15,
        false_positive_cue_rate=0.04,
        false_negative_cue_rate=0.3,
        neutral_probability=0.3,
        num_documents=int(round(2073 * scale)),
        sentences_per_document=(2, 6),
    )


@register_task("spouses")
def build_spouses_task(scale: float = 0.15, seed: int = 0) -> TaskDataset:
    """Build the synthetic Spouses task dataset (11 labeling functions)."""
    data = build_relation_task(build_spec(scale=scale), seed=seed, scale=1.0)
    knowledge_base = build_noisy_kb(
        name="dbpedia",
        true_pairs=data.true_pairs,
        all_pairs=data.all_pairs,
        positive_subset="spouse",
        negative_subset="colleague",
        coverage=0.4,
        precision=0.9,
        negative_coverage=0.2,
        negative_precision=0.85,
        seed=seed + 1,
    )
    pattern_lfs = keyword_pattern_lfs(POSITIVE_CUES, NEGATIVE_CUES, where="sentence")
    ds_lfs = distant_supervision_lfs(knowledge_base, "spouse", "colleague")
    structure_lfs = structure_based_lfs(
        far_distance=12,
        reversed_negative_cues=("hired", "interviewed"),
        neutral_sentence_cues=("photographed", "briefing", "mentioned"),
    )[:3]
    lfs = (pattern_lfs + ds_lfs + structure_lfs)[:16]

    return TaskDataset(
        name="spouses",
        candidates=data.candidates,
        gold=data.gold,
        lfs=lfs,
        distant_supervision_lfs=ds_lfs,
        num_documents=data.num_documents,
        metadata={"knowledge_base": knowledge_base, "true_pairs": data.true_pairs},
    )
