"""Synthetic relation-extraction corpus builder.

All four relation-extraction tasks (Chem, EHR, CDR, Spouses) are produced by
the same machinery: a :class:`RelationTaskSpec` describing the entity
vocabularies, sentence templates, positive rate and corpus size, and
:func:`build_relation_task`, which

1. plants a ground-truth relation over canonical entity-id pairs,
2. writes documents whose sentences mention entity pairs with cue phrases
   *correlated* (not perfectly aligned) with the planted truth,
3. runs the real preprocessing pipeline (tokenizer, dictionary NER) and the
   candidate extractor over the generated documents, and
4. returns the materialized candidates, gold labels, and the planted truth
   (for building noisy KBs and for evaluation).

Because cue phrases are noisy and some sentences are neutral, pattern LFs
derived from the cue words have realistic accuracies (roughly 60–90%) and
coverages, which is what the generative model needs to be able to exploit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.context.candidates import Candidate
from repro.context.corpus import Corpus
from repro.context.extraction import CandidateExtractor, PairedEntityCandidateSpace
from repro.context.preprocessing import DictionaryEntityTagger, TextPreprocessor
from repro.datasets.vocab import FILLER_WORDS
from repro.evaluation.splits import assign_document_splits
from repro.exceptions import DatasetError
from repro.types import NEGATIVE, POSITIVE
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class RelationTaskSpec:
    """Everything needed to generate one synthetic relation-extraction task."""

    name: str
    relation_type: str
    entity_type1: str
    entity_type2: str
    entities1: Mapping[str, str]
    entities2: Mapping[str, str]
    positive_templates: Sequence[str]
    negative_templates: Sequence[str]
    neutral_templates: Sequence[str] = field(default_factory=list)
    positive_fraction: float = 0.25
    cue_noise: float = 0.15
    false_positive_cue_rate: Optional[float] = None
    false_negative_cue_rate: Optional[float] = None
    neutral_probability: float = 0.25
    num_documents: int = 300
    sentences_per_document: tuple[int, int] = (2, 5)
    dev_fraction: float = 0.1
    test_fraction: float = 0.15
    filler_words: Sequence[str] = tuple(FILLER_WORDS)

    def __post_init__(self) -> None:
        if not self.positive_templates or not self.negative_templates:
            raise DatasetError("positive_templates and negative_templates must be non-empty")
        if not 0.0 < self.positive_fraction < 1.0:
            raise DatasetError(
                f"positive_fraction must lie in (0, 1), got {self.positive_fraction}"
            )
        if not 0.0 <= self.cue_noise <= 1.0:
            raise DatasetError(f"cue_noise must lie in [0, 1], got {self.cue_noise}")
        for name in ("false_positive_cue_rate", "false_negative_cue_rate"):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must lie in [0, 1], got {value}")
        low, high = self.sentences_per_document
        if low < 1 or high < low:
            raise DatasetError(
                f"sentences_per_document must be a valid (low, high) range, got "
                f"{self.sentences_per_document}"
            )


@dataclass
class RelationTaskData:
    """The output of :func:`build_relation_task`."""

    spec: RelationTaskSpec
    corpus: Corpus
    candidates: dict[str, list[Candidate]]
    gold: dict[str, np.ndarray]
    true_pairs: set[tuple[str, str]]
    all_pairs: list[tuple[str, str]]

    @property
    def num_documents(self) -> int:
        """Number of generated documents."""
        return self.corpus.num_documents


def build_relation_task(
    spec: RelationTaskSpec, seed: SeedLike = 0, scale: float = 1.0
) -> RelationTaskData:
    """Generate the corpus, candidates, and gold labels for a task spec."""
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    rng = ensure_rng(seed)
    num_documents = max(10, int(round(spec.num_documents * scale)))

    true_pairs, all_pairs = _plant_relations(spec, rng)
    same_type = spec.entity_type1 == spec.entity_type2
    gold_lookup = _make_gold_lookup(true_pairs, symmetric=same_type)

    tagger = DictionaryEntityTagger(
        {spec.entity_type1: dict(spec.entities1), spec.entity_type2: dict(spec.entities2)}
        if not same_type
        else {spec.entity_type1: {**dict(spec.entities1), **dict(spec.entities2)}}
    )
    corpus = Corpus(name=spec.name, preprocessor=TextPreprocessor(entity_tagger=tagger))
    splits = assign_document_splits(
        num_documents, spec.dev_fraction, spec.test_fraction, seed=rng
    )

    surfaces1 = sorted(spec.entities1)
    surfaces2 = sorted(spec.entities2)
    for document_index in range(num_documents):
        sentences = []
        low, high = spec.sentences_per_document
        for _ in range(int(rng.integers(low, high + 1))):
            sentences.append(
                _generate_sentence(spec, rng, surfaces1, surfaces2, gold_lookup)
            )
        corpus.add_document(
            name=f"{spec.name}-doc-{document_index:05d}",
            text=" ".join(sentences),
            split=splits[document_index],
        )

    def gold_labeler(candidate: Candidate) -> Optional[int]:
        key = (candidate.span1.canonical_id, candidate.span2.canonical_id)
        return gold_lookup(key)

    extractor = CandidateExtractor(
        PairedEntityCandidateSpace(
            relation_type=spec.relation_type,
            type1=spec.entity_type1,
            type2=spec.entity_type2,
        ),
        gold_labeler=gold_labeler,
    )
    extractor.extract(corpus)

    candidates: dict[str, list[Candidate]] = {}
    gold: dict[str, np.ndarray] = {}
    for split in ("train", "dev", "test"):
        split_candidates = corpus.candidates(split)
        candidates[split] = split_candidates
        gold[split] = np.array(
            [candidate.gold_label for candidate in split_candidates], dtype=np.int64
        )
    return RelationTaskData(
        spec=spec,
        corpus=corpus,
        candidates=candidates,
        gold=gold,
        true_pairs=true_pairs,
        all_pairs=all_pairs,
    )


# ------------------------------------------------------------------------ internals
def _plant_relations(
    spec: RelationTaskSpec, rng: np.random.Generator
) -> tuple[set[tuple[str, str]], list[tuple[str, str]]]:
    """Sample which canonical-id pairs truly stand in the relation."""
    ids1 = sorted(set(spec.entities1.values()))
    ids2 = sorted(set(spec.entities2.values()))
    if spec.entity_type1 == spec.entity_type2:
        all_pairs = [(a, b) for a, b in itertools.combinations(sorted(set(ids1) | set(ids2)), 2)]
    else:
        all_pairs = [(a, b) for a in ids1 for b in ids2]
    truth_mask = rng.random(len(all_pairs)) < spec.positive_fraction
    true_pairs = {pair for pair, is_true in zip(all_pairs, truth_mask) if is_true}
    return true_pairs, all_pairs


def _make_gold_lookup(true_pairs: set[tuple[str, str]], symmetric: bool):
    def lookup(pair: tuple[Optional[str], Optional[str]]) -> Optional[int]:
        first, second = pair
        if first is None or second is None:
            return None
        if (first, second) in true_pairs:
            return POSITIVE
        if symmetric and (second, first) in true_pairs:
            return POSITIVE
        return NEGATIVE

    return lookup


def _generate_sentence(
    spec: RelationTaskSpec,
    rng: np.random.Generator,
    surfaces1: Sequence[str],
    surfaces2: Sequence[str],
    gold_lookup,
) -> str:
    """Write one sentence mentioning an entity pair with a (noisy) cue template."""
    surface1 = surfaces1[int(rng.integers(len(surfaces1)))]
    surface2 = surfaces2[int(rng.integers(len(surfaces2)))]
    if spec.entity_type1 == spec.entity_type2:
        while surface2 == surface1:
            surface2 = surfaces2[int(rng.integers(len(surfaces2)))]
    entities1, entities2 = spec.entities1, spec.entities2
    canonical1 = entities1[surface1] if surface1 in entities1 else entities2[surface1]
    canonical2 = entities2[surface2] if surface2 in entities2 else entities1[surface2]
    gold = gold_lookup((canonical1, canonical2))

    use_neutral = spec.neutral_templates and rng.random() < spec.neutral_probability
    if use_neutral:
        templates = spec.neutral_templates
    else:
        # Cue noise may be asymmetric: sentences asserting a relation that does
        # not hold (false-positive cues) are rarer in real corpora than true
        # relations expressed without an explicit cue (false-negative cues).
        if gold == POSITIVE:
            flip_rate = (
                spec.false_negative_cue_rate
                if spec.false_negative_cue_rate is not None
                else spec.cue_noise
            )
        else:
            flip_rate = (
                spec.false_positive_cue_rate
                if spec.false_positive_cue_rate is not None
                else spec.cue_noise
            )
        cue_matches_gold = rng.random() >= flip_rate
        wants_positive = (gold == POSITIVE) == cue_matches_gold
        templates = spec.positive_templates if wants_positive else spec.negative_templates
    template = templates[int(rng.integers(len(templates)))]
    sentence = template.format(e1=surface1, e2=surface2)

    # Pad with a short filler clause so sentences vary in length and the
    # discriminative featurizer sees non-cue context words.
    num_filler = int(rng.integers(0, 5))
    if num_filler:
        filler = " ".join(
            spec.filler_words[int(rng.integers(len(spec.filler_words)))]
            for _ in range(num_filler)
        )
        sentence = f"{sentence[:-1]} {filler}."
    return sentence
