"""Pure-synthetic label matrix generators.

These generators produce label matrices directly (no text), matching the
synthetic settings of the paper's Figure 4 (independent labeling functions
with fixed accuracy and propensity) and Figure 5-left (labeling functions
with planted correlated families), plus a mis-specification scenario
reproducing Example 3.1 (a block of perfectly correlated LFs next to
independent ones).

Beyond the binary settings there is a categorical generator
(:func:`generate_multiclass_label_matrix`: labels ``1..k``, ``0`` = abstain,
symmetric Dawid–Skene-style workers) and :func:`build_multiclass_task`,
which wraps its votes into a full :class:`repro.datasets.base.TaskDataset`
(one LF per simulated worker, class-indicative tweet-like text) so the
multi-class pipeline path can be exercised end-to-end without the full
crowd task.

For the labeling execution engine there is also a *streaming* front-end:
:func:`stream_synthetic_candidates` yields lightweight picklable candidates
one at a time (each carrying its precomputed vote row, drawn from a
per-candidate RNG so the stream is deterministic and order-independent), and
:func:`synthetic_vote_lfs` builds the matching LF suite.  Feeding the stream
to :class:`repro.labeling.applier.LFApplier` reproduces the same votes under
every executor backend without ever materializing the candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import SparseLabelMatrix
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.rng import SeedLike, ensure_rng


@dataclass
class SyntheticMatrixResult:
    """A generated label matrix plus everything the generator knows about it."""

    label_matrix: LabelMatrix
    gold_labels: np.ndarray
    lf_accuracies: np.ndarray
    lf_propensities: np.ndarray
    correlated_pairs: list[tuple[int, int]] = field(default_factory=list)


def generate_label_matrix(
    num_points: int = 1000,
    num_lfs: int = 10,
    accuracy: float | Sequence[float] = 0.75,
    propensity: float | Sequence[float] = 0.1,
    class_balance: float = 0.5,
    seed: SeedLike = 0,
    sparse: bool = False,
) -> SyntheticMatrixResult:
    """Generate an independent-LF label matrix (the Figure 4 setting).

    Parameters
    ----------
    num_points:
        Number of data points ``m``.
    num_lfs:
        Number of labeling functions ``n``.
    accuracy:
        Scalar accuracy shared by all LFs, or one accuracy per LF.
    propensity:
        Probability of a non-abstaining vote, scalar or per LF (the paper's
        ``p_l``; 10% in the Figure 4 simulation).
    class_balance:
        Fraction of positive gold labels.
    sparse:
        When ``True`` the non-abstain votes are accumulated as triples and
        the returned matrix uses CSR storage — the dense ``(m, n)`` array is
        never allocated, so very large low-coverage matrices fit in memory.
        The same seed emits the same votes in both modes.
    """
    if num_points <= 0 or num_lfs <= 0:
        raise DatasetError(f"num_points and num_lfs must be positive, got {num_points}, {num_lfs}")
    if not 0.0 < class_balance < 1.0:
        raise DatasetError(f"class_balance must lie in (0, 1), got {class_balance}")
    rng = ensure_rng(seed)
    accuracies = _broadcast("accuracy", accuracy, num_lfs)
    propensities = _broadcast("propensity", propensity, num_lfs)
    gold = np.where(rng.random(num_points) < class_balance, POSITIVE, NEGATIVE).astype(np.int64)
    if sparse:
        row_chunks: list[np.ndarray] = []
        col_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        for j in range(num_lfs):
            votes = rng.random(num_points) < propensities[j]
            correct = rng.random(num_points) < accuracies[j]
            rows = np.flatnonzero(votes)
            row_chunks.append(rows)
            col_chunks.append(np.full(rows.size, j, dtype=np.int64))
            val_chunks.append(np.where(correct[rows], gold[rows], -gold[rows]))
        storage = SparseLabelMatrix.from_triples(
            np.concatenate(row_chunks) if row_chunks else [],
            np.concatenate(col_chunks) if col_chunks else [],
            np.concatenate(val_chunks) if val_chunks else [],
            (num_points, num_lfs),
        )
        label_matrix = LabelMatrix(storage)
    else:
        matrix = np.zeros((num_points, num_lfs), dtype=np.int64)
        for j in range(num_lfs):
            votes = rng.random(num_points) < propensities[j]
            correct = rng.random(num_points) < accuracies[j]
            matrix[votes, j] = np.where(correct[votes], gold[votes], -gold[votes])
        label_matrix = LabelMatrix(matrix)
    return SyntheticMatrixResult(
        label_matrix=label_matrix,
        gold_labels=gold,
        lf_accuracies=accuracies,
        lf_propensities=propensities,
    )


def generate_multiclass_label_matrix(
    num_points: int = 1000,
    num_lfs: int = 10,
    cardinality: int = 3,
    accuracy: float | Sequence[float] = 0.75,
    propensity: float | Sequence[float] = 0.3,
    class_balance: Optional[Sequence[float]] = None,
    seed: SeedLike = 0,
    sparse: bool = False,
) -> SyntheticMatrixResult:
    """Generate an independent-LF *categorical* label matrix (labels ``1..k``).

    Each labeling function behaves like a symmetric Dawid–Skene worker: it
    votes with probability ``propensity``, votes the gold class with
    probability ``accuracy``, and otherwise votes uniformly among the
    ``k - 1`` wrong classes.  Abstentions are ``0``.  ``class_balance`` is an
    optional length-``k`` prior over gold classes (uniform by default).  With
    ``sparse=True`` the votes are accumulated as triples into CSR storage;
    the same seed emits the same votes in both modes.
    """
    if num_points <= 0 or num_lfs <= 0:
        raise DatasetError(f"num_points and num_lfs must be positive, got {num_points}, {num_lfs}")
    if cardinality < 2:
        raise DatasetError(f"cardinality must be >= 2, got {cardinality}")
    if class_balance is None:
        prior = np.full(cardinality, 1.0 / cardinality)
    else:
        prior = np.asarray(class_balance, dtype=float)
        if prior.shape != (cardinality,) or np.any(prior <= 0):
            raise DatasetError(
                f"class_balance must be a length-{cardinality} positive vector"
            )
        prior = prior / prior.sum()
    rng = ensure_rng(seed)
    accuracies = _broadcast("accuracy", accuracy, num_lfs)
    propensities = _broadcast("propensity", propensity, num_lfs)
    gold = rng.choice(np.arange(1, cardinality + 1), size=num_points, p=prior).astype(np.int64)

    def column_votes(j: int) -> tuple[np.ndarray, np.ndarray]:
        """Voting rows of LF ``j`` and the classes it emits there."""
        votes = rng.random(num_points) < propensities[j]
        correct = rng.random(num_points) < accuracies[j]
        # A wrong vote shifts the gold class by 1..k-1 (mod k), i.e. uniform
        # over the wrong classes.
        shifts = rng.integers(1, cardinality, size=num_points)
        wrong = ((gold - 1 + shifts) % cardinality) + 1
        rows = np.flatnonzero(votes)
        return rows, np.where(correct[rows], gold[rows], wrong[rows])

    if sparse:
        row_chunks, col_chunks, val_chunks = [], [], []
        for j in range(num_lfs):
            rows, values = column_votes(j)
            row_chunks.append(rows)
            col_chunks.append(np.full(rows.size, j, dtype=np.int64))
            val_chunks.append(values)
        storage = SparseLabelMatrix.from_triples(
            np.concatenate(row_chunks),
            np.concatenate(col_chunks),
            np.concatenate(val_chunks),
            (num_points, num_lfs),
        )
        label_matrix = LabelMatrix(storage, cardinality=cardinality)
    else:
        matrix = np.zeros((num_points, num_lfs), dtype=np.int64)
        for j in range(num_lfs):
            rows, values = column_votes(j)
            matrix[rows, j] = values
        label_matrix = LabelMatrix(matrix, cardinality=cardinality)
    return SyntheticMatrixResult(
        label_matrix=label_matrix,
        gold_labels=gold,
        lf_accuracies=accuracies,
        lf_propensities=propensities,
    )


def build_multiclass_task(
    num_points: int = 300,
    num_lfs: int = 12,
    cardinality: int = 3,
    accuracy: float | Sequence[float] = 0.75,
    propensity: float | Sequence[float] = 0.4,
    seed: int = 0,
    name: str = "synthetic-multiclass",
):
    """Wrap :func:`generate_multiclass_label_matrix` into a full task dataset.

    Every simulated worker becomes one labeling function (via
    :class:`repro.labeling.generators.CrowdWorkerLFGenerator`), and each data
    point becomes a tweet-like candidate whose tokens weakly indicate its
    gold class, so the discriminative stage has real features to learn from.
    The task exercises the complete multi-class pipeline path at test sizes.
    """
    from repro.context.candidates import Candidate, SentenceView, SpanView
    from repro.datasets.base import TaskDataset
    from repro.evaluation.splits import assign_document_splits
    from repro.labeling.generators import CrowdWorkerLFGenerator

    data = generate_multiclass_label_matrix(
        num_points=num_points,
        num_lfs=num_lfs,
        cardinality=cardinality,
        accuracy=accuracy,
        propensity=propensity,
        seed=seed,
    )
    matrix = data.label_matrix.values
    rng = ensure_rng((seed, 1))
    splits = assign_document_splits(num_points, 0.125, 0.125, seed=rng)

    filler = [f"filler{i}" for i in range(8)]
    candidates: dict[str, list] = {"train": [], "dev": [], "test": []}
    gold: dict[str, list[int]] = {"train": [], "dev": [], "test": []}
    for uid in range(num_points):
        klass = int(data.gold_labels[uid])
        words = [f"class{klass}tok{int(rng.integers(3))}" for _ in range(int(rng.integers(1, 4)))]
        words += [filler[int(rng.integers(len(filler)))] for _ in range(int(rng.integers(3, 7)))]
        rng.shuffle(words)
        candidate = Candidate(
            uid=uid,
            span1=SpanView(text=words[0], word_start=0, word_end=1),
            span2=SpanView(text=words[-1], word_start=len(words) - 1, word_end=len(words)),
            sentence=SentenceView(
                words=words, text=" ".join(words), document_name=f"synth-{uid:05d}"
            ),
            relation_type="synthetic_multiclass",
            split=splits[uid],
            gold_label=klass,
        )
        candidates[splits[uid]].append(candidate)
        gold[splits[uid]].append(klass)

    annotations = {
        f"{j:03d}": {
            int(uid): int(matrix[uid, j])
            for uid in np.flatnonzero(matrix[:, j] != ABSTAIN)
        }
        for j in range(num_lfs)
    }
    generator = CrowdWorkerLFGenerator(annotations, cardinality=cardinality)
    return TaskDataset(
        name=name,
        candidates=candidates,
        gold={split: np.array(values, dtype=np.int64) for split, values in gold.items()},
        lfs=generator.generate(),
        cardinality=cardinality,
        num_documents=num_points,
        metadata={"lf_accuracies": data.lf_accuracies},
    )


def generate_correlated_label_matrix(
    num_points: int = 1000,
    num_independent: int = 10,
    num_groups: int = 5,
    group_size: int = 3,
    accuracy: float = 0.75,
    propensity: float = 0.3,
    copy_probability: float = 0.9,
    class_balance: float = 0.5,
    seed: SeedLike = 0,
    sparse: bool = False,
) -> SyntheticMatrixResult:
    """Generate a matrix with planted correlated LF families (Figure 5-left).

    ``num_groups`` families are created; each family has one "source" LF and
    ``group_size - 1`` near-copies that repeat the source's vote with
    probability ``copy_probability`` (and otherwise behave independently).
    ``num_independent`` genuinely independent LFs are appended.  The returned
    ``correlated_pairs`` lists every within-family pair — the ground-truth
    structure a structure learner should recover.
    """
    if group_size < 2:
        raise DatasetError(f"group_size must be >= 2, got {group_size}")
    rng = ensure_rng(seed)
    gold = np.where(rng.random(num_points) < class_balance, POSITIVE, NEGATIVE).astype(np.int64)

    def sample_independent_column() -> np.ndarray:
        column = np.zeros(num_points, dtype=np.int64)
        votes = rng.random(num_points) < propensity
        correct = rng.random(num_points) < accuracy
        column[votes] = np.where(correct[votes], gold[votes], -gold[votes])
        return column

    columns: list[np.ndarray] = []
    correlated_pairs: list[tuple[int, int]] = []
    for _ in range(num_groups):
        source_index = len(columns)
        source = sample_independent_column()
        columns.append(source)
        for _ in range(group_size - 1):
            copy_index = len(columns)
            independent_behaviour = sample_independent_column()
            copies = rng.random(num_points) < copy_probability
            column = np.where(copies, source, independent_behaviour)
            columns.append(column)
            correlated_pairs.append((source_index, copy_index))
    for _ in range(num_independent):
        columns.append(sample_independent_column())

    matrix = np.column_stack(columns) if columns else np.zeros((num_points, 0), dtype=np.int64)
    num_lfs = matrix.shape[1]
    label_matrix = LabelMatrix(matrix)
    if sparse:
        label_matrix = label_matrix.to_sparse()
    return SyntheticMatrixResult(
        label_matrix=label_matrix,
        gold_labels=gold,
        lf_accuracies=np.full(num_lfs, accuracy),
        lf_propensities=np.full(num_lfs, propensity),
        correlated_pairs=correlated_pairs,
    )


def generate_misspecification_example(
    num_points: int = 2000,
    num_correlated: int = 5,
    num_independent: int = 5,
    correlated_accuracy: float = 0.5,
    independent_accuracy: float = 0.99,
    seed: SeedLike = 0,
    sparse: bool = False,
) -> SyntheticMatrixResult:
    """The catastrophic-mis-specification scenario of paper Example 3.1.

    ``num_correlated`` LFs vote identically on every data point with accuracy
    ``correlated_accuracy``; ``num_independent`` LFs are conditionally
    independent with accuracy ``independent_accuracy``.  All LFs always vote.
    An independence-assuming model badly mis-estimates the accuracies here,
    while a correlation-aware model does not.
    """
    rng = ensure_rng(seed)
    gold = np.where(rng.random(num_points) < 0.5, POSITIVE, NEGATIVE).astype(np.int64)
    correct_shared = rng.random(num_points) < correlated_accuracy
    shared_votes = np.where(correct_shared, gold, -gold)
    columns = [shared_votes.copy() for _ in range(num_correlated)]
    for _ in range(num_independent):
        correct = rng.random(num_points) < independent_accuracy
        columns.append(np.where(correct, gold, -gold))
    matrix = np.column_stack(columns)
    correlated_pairs = [
        (j, k) for j in range(num_correlated) for k in range(j + 1, num_correlated)
    ]
    accuracies = np.array(
        [correlated_accuracy] * num_correlated + [independent_accuracy] * num_independent
    )
    label_matrix = LabelMatrix(matrix)
    if sparse:
        label_matrix = label_matrix.to_sparse()
    return SyntheticMatrixResult(
        label_matrix=label_matrix,
        gold_labels=gold,
        lf_accuracies=accuracies,
        lf_propensities=np.ones(num_correlated + num_independent),
        correlated_pairs=correlated_pairs,
    )


# ------------------------------------------------------------------ streaming
@dataclass(frozen=True)
class SyntheticCandidate:
    """One streamed synthetic candidate: its gold label and vote row.

    Frozen and made of plain ints/tuples so chunks of candidates cross
    process boundaries (the engine's ``processes`` backend pickles them).
    """

    uid: int
    gold: int
    votes: tuple[int, ...]


class _VoteReader:
    """Picklable LF body reading one column of a candidate's vote row."""

    def __init__(self, index: int) -> None:
        self.index = index

    def __call__(self, candidate: SyntheticCandidate) -> int:
        return int(candidate.votes[self.index])


def synthetic_vote_lfs(num_lfs: int) -> list[LabelingFunction]:
    """The LF suite matching :func:`stream_synthetic_candidates` vote rows."""
    if num_lfs <= 0:
        raise DatasetError(f"num_lfs must be positive, got {num_lfs}")
    return [
        LabelingFunction(f"synth_vote_{j}", _VoteReader(j), source_type="synthetic")
        for j in range(num_lfs)
    ]


def _candidate_rng(seed: int, uid: int) -> np.random.Generator:
    return np.random.default_rng((int(seed), int(uid)))


def stream_synthetic_candidates(
    num_points: int = 1000,
    num_lfs: int = 10,
    accuracy: float | Sequence[float] = 0.75,
    propensity: float | Sequence[float] = 0.1,
    class_balance: float = 0.5,
    seed: int = 0,
) -> Iterator[SyntheticCandidate]:
    """Lazily generate independent-LF candidates (the Figure 4 setting).

    Each candidate's draws come from its own ``(seed, uid)``-keyed RNG, so
    the stream is reproducible, independent of consumption order, and uses
    O(1) memory — votes are not drawn column-major as in
    :func:`generate_label_matrix`, so the two front-ends emit different (but
    identically distributed) vote sets for the same seed.
    """
    if num_points < 0:
        raise DatasetError(f"num_points must be non-negative, got {num_points}")
    if not 0.0 < class_balance < 1.0:
        raise DatasetError(f"class_balance must lie in (0, 1), got {class_balance}")
    accuracies = _broadcast("accuracy", accuracy, num_lfs)
    propensities = _broadcast("propensity", propensity, num_lfs)
    for uid in range(num_points):
        rng = _candidate_rng(seed, uid)
        gold = POSITIVE if rng.random() < class_balance else NEGATIVE
        votes = []
        for j in range(num_lfs):
            if rng.random() < propensities[j]:
                correct = rng.random() < accuracies[j]
                votes.append(gold if correct else -gold)
            else:
                votes.append(ABSTAIN)
        yield SyntheticCandidate(uid=uid, gold=gold, votes=tuple(votes))


def synthetic_stream_gold(
    num_points: int,
    class_balance: float = 0.5,
    seed: int = 0,
) -> np.ndarray:
    """Gold labels of :func:`stream_synthetic_candidates`, O(m) memory.

    Recomputes each candidate's first RNG draw without building the
    candidates, so a streaming engine run can be evaluated against gold
    after the stream has been consumed.
    """
    gold = np.empty(num_points, dtype=np.int64)
    for uid in range(num_points):
        rng = _candidate_rng(seed, uid)
        gold[uid] = POSITIVE if rng.random() < class_balance else NEGATIVE
    return gold


# ----------------------------------------------------- streaming text candidates
class _TokenVoteReader:
    """Picklable LF body decoding one LF's planted vote token from the text.

    :func:`stream_text_candidates` plants a token ``lf{j}v{code}`` into a
    candidate's sentence whenever simulated LF ``j`` votes on it; this
    reader scans the words for its own prefix and decodes the vote, so the
    LF is a pure function of the candidate text (picklable, stateless) and
    the same suite works under every executor backend.
    """

    def __init__(self, index: int, cardinality: int) -> None:
        self.index = index
        self.cardinality = cardinality
        self.prefix = f"lf{index}v"

    def __call__(self, candidate: "Candidate") -> int:  # noqa: F821 - runtime type
        for word in candidate.sentence.words:
            if word.startswith(self.prefix):
                code = word[len(self.prefix) :]
                if self.cardinality == 2:
                    return POSITIVE if code == "p" else NEGATIVE
                return int(code)
        return ABSTAIN


def text_vote_lfs(num_lfs: int, cardinality: int = 2) -> list[LabelingFunction]:
    """The LF suite matching :func:`stream_text_candidates` vote tokens."""
    if num_lfs <= 0:
        raise DatasetError(f"num_lfs must be positive, got {num_lfs}")
    return [
        LabelingFunction(
            f"text_vote_{j}",
            _TokenVoteReader(j, cardinality),
            source_type="synthetic",
            cardinality=cardinality,
        )
        for j in range(num_lfs)
    ]


def _draw_text_gold(rng: np.random.Generator, cardinality: int, prior: np.ndarray) -> int:
    if cardinality == 2:
        return POSITIVE if rng.random() < prior[0] else NEGATIVE
    return int(rng.choice(np.arange(1, cardinality + 1), p=prior))


def _text_class_prior(cardinality: int, class_balance) -> np.ndarray:
    if cardinality == 2:
        balance = 0.5 if class_balance is None else float(class_balance)
        if not 0.0 < balance < 1.0:
            raise DatasetError(f"class_balance must lie in (0, 1), got {balance}")
        return np.array([balance])
    if class_balance is None:
        return np.full(cardinality, 1.0 / cardinality)
    prior = np.asarray(class_balance, dtype=float)
    if prior.shape != (cardinality,) or np.any(prior <= 0):
        raise DatasetError(f"class_balance must be a length-{cardinality} positive vector")
    return prior / prior.sum()


def stream_text_candidates(
    num_points: int = 1000,
    num_lfs: int = 10,
    cardinality: int = 2,
    accuracy: float | Sequence[float] = 0.75,
    propensity: float | Sequence[float] = 0.3,
    class_balance=None,
    seed: int = 0,
) -> "Iterator[Candidate]":
    """Lazily generate full *text* candidates for end-to-end streaming runs.

    The discriminative-stage companion of
    :func:`stream_synthetic_candidates`: each candidate is a real
    :class:`repro.context.candidates.Candidate` whose sentence carries (a)
    one planted ``lf{j}v{code}`` token per simulated LF vote — decoded by
    the stateless :func:`text_vote_lfs` suite — and (b) class-indicative
    ``class{y}tok*`` tokens plus filler, so the featurized end model has
    real signal to generalize from.  Votes follow the usual synthetic
    model (vote with probability ``propensity``, correct with probability
    ``accuracy``, wrong votes uniform among the other classes).  Every
    candidate's draws come from its own ``(seed, uid)``-keyed RNG, so the
    stream is reproducible, order-independent, O(1)-memory, and picklable
    chunk by chunk — the 50k-candidate out-of-core benchmark and the
    streaming differential tests both ride on it.
    """
    from repro.context.candidates import Candidate, SentenceView, SpanView

    if num_points < 0:
        raise DatasetError(f"num_points must be non-negative, got {num_points}")
    if cardinality < 2:
        raise DatasetError(f"cardinality must be >= 2, got {cardinality}")
    accuracies = _broadcast("accuracy", accuracy, num_lfs)
    propensities = _broadcast("propensity", propensity, num_lfs)
    prior = _text_class_prior(cardinality, class_balance)
    filler = [f"filler{i}" for i in range(8)]
    for uid in range(num_points):
        rng = _candidate_rng(seed, uid)
        gold = _draw_text_gold(rng, cardinality, prior)
        words: list[str] = []
        for j in range(num_lfs):
            if rng.random() >= propensities[j]:
                continue
            correct = rng.random() < accuracies[j]
            if cardinality == 2:
                vote = gold if correct else -gold
                words.append(f"lf{j}v{'p' if vote == POSITIVE else 'n'}")
            else:
                if correct:
                    vote = gold
                else:
                    shift = int(rng.integers(1, cardinality))
                    vote = ((gold - 1 + shift) % cardinality) + 1
                words.append(f"lf{j}v{vote}")
        klass = gold if cardinality > 2 else (1 if gold == POSITIVE else 2)
        words += [f"class{klass}tok{int(rng.integers(3))}" for _ in range(int(rng.integers(1, 4)))]
        words += [filler[int(rng.integers(len(filler)))] for _ in range(int(rng.integers(3, 7)))]
        rng.shuffle(words)
        yield Candidate(
            uid=uid,
            span1=SpanView(text=words[0], word_start=0, word_end=1),
            span2=SpanView(text=words[-1], word_start=len(words) - 1, word_end=len(words)),
            sentence=SentenceView(
                words=words, text=" ".join(words), document_name=f"stream-{uid:06d}"
            ),
            relation_type="synthetic_stream",
            split="train",
            gold_label=gold,
        )


def stream_text_gold(
    num_points: int,
    cardinality: int = 2,
    class_balance=None,
    seed: int = 0,
) -> np.ndarray:
    """Gold labels of :func:`stream_text_candidates` without building the text.

    Replays only each candidate's gold draw (the first consumption of its
    per-uid RNG), so a streamed split can be scored after the generator has
    been consumed — O(m) ints, no candidates.
    """
    prior = _text_class_prior(cardinality, class_balance)
    gold = np.empty(num_points, dtype=np.int64)
    for uid in range(num_points):
        rng = _candidate_rng(seed, uid)
        gold[uid] = _draw_text_gold(rng, cardinality, prior)
    return gold


# ------------------------------------------------- streaming relation candidates
#: Cue vocabulary planted between the argument spans; covers every cue family
#: the library suite (:func:`repro.datasets.lf_library.LINT_LFS`) reacts to —
#: causal/treatment stems, passive-reversal cues, and neutral-context cues.
_RELATION_CUES = (
    "causes", "caused", "causing", "treats", "treated", "treating",
    "given", "received", "measured", "monitored", "history", "prevents",
)
#: Argument pairs; the first two match the ``LINT_LFS`` knowledge base.
_RELATION_PAIRS = (
    ("aspirin", "headache"),
    ("water", "headache"),
    ("ibuprofen", "fever"),
    ("caffeine", "insomnia"),
)


def stream_relation_candidates(
    num_points: int = 1000,
    seed: int = 0,
    error_rate: float = 0.0,
) -> "Iterator[Candidate]":
    """Lazily generate relation candidates exercising a full library LF suite.

    The relation-extraction companion of :func:`stream_text_candidates`,
    built for the pushdown differential tests and the ``lf_pushdown``
    benchmark: every candidate is a real two-span
    :class:`repro.context.candidates.Candidate` whose geometry and
    vocabulary tickle all the :mod:`repro.datasets.lf_library` LF families —
    cue words between the spans (keyword/pattern/regex LFs), canonical KB
    ids matching the ``LINT_LFS`` knowledge base (distant supervision),
    token distances from 0 to ~20 including adjacent and far-apart extremes,
    reversed span order (passive-voice heuristics), and varying sentence
    positions (late-sentence heuristic).

    ``error_rate`` plants a non-string token between the spans on that
    fraction of candidates, so token-reading LFs raise on exactly those rows
    — the differential tests use this to check compiled error accounting
    against the interpreted path.  Candidates come from per-``(seed, uid)``
    RNGs: reproducible, order-independent, O(1) memory, picklable chunks.
    """
    from repro.context.candidates import Candidate, SentenceView, SpanView

    if num_points < 0:
        raise DatasetError(f"num_points must be non-negative, got {num_points}")
    if not 0.0 <= error_rate <= 1.0:
        raise DatasetError(f"error_rate must lie in [0, 1], got {error_rate}")
    filler = [f"w{i}" for i in range(12)]
    for uid in range(num_points):
        rng = _candidate_rng(seed, uid)
        entity1, entity2 = _RELATION_PAIRS[int(rng.integers(len(_RELATION_PAIRS)))]
        has_ids = rng.random() < 0.7
        distance = int(rng.integers(0, 21))
        between: list = [
            _RELATION_CUES[int(rng.integers(len(_RELATION_CUES)))]
            if rng.random() < 0.35
            else filler[int(rng.integers(len(filler)))]
            for _ in range(distance)
        ]
        if between and rng.random() < error_rate:
            between[int(rng.integers(len(between)))] = 7  # non-string token
        reverse = rng.random() < 0.25
        left = [filler[int(rng.integers(len(filler)))] for _ in range(int(rng.integers(0, 4)))]
        right = [filler[int(rng.integers(len(filler)))] for _ in range(int(rng.integers(0, 4)))]
        first_text, second_text = (entity2, entity1) if reverse else (entity1, entity2)
        words = left + [first_text] + between + [second_text] + right
        first_start = len(left)
        second_start = first_start + 1 + distance
        spans = {
            first_text: SpanView(
                text=first_text,
                word_start=first_start,
                word_end=first_start + 1,
                entity_type="chemical" if first_text == entity1 else "disease",
                canonical_id=first_text if has_ids else None,
            ),
            second_text: SpanView(
                text=second_text,
                word_start=second_start,
                word_end=second_start + 1,
                entity_type="chemical" if second_text == entity1 else "disease",
                canonical_id=second_text if has_ids else None,
            ),
        }
        yield Candidate(
            uid=uid,
            span1=spans[entity1],
            span2=spans[entity2],
            sentence=SentenceView(
                words=words,
                text=" ".join(str(word) for word in words),
                position=int(rng.integers(0, 12)),
                document_name=f"relation-{uid:06d}",
            ),
            relation_type="chemical_disease",
            split="train",
        )


def _broadcast(name: str, value: float | Sequence[float], length: int) -> np.ndarray:
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        array = np.full(length, float(array))
    if array.shape != (length,):
        raise DatasetError(f"{name} must be a scalar or length-{length} sequence")
    if np.any(array < 0.0) or np.any(array > 1.0):
        raise DatasetError(f"{name} values must lie in [0, 1]")
    return array
