"""Entity vocabularies and phrase lists for the synthetic corpora.

Surface forms are synthetic but shaped like the real domains (chemical-ish
names, disease-ish names, person names, anatomy terms), so labeling functions
and the dictionary entity tagger exercise realistic code paths (multi-word
mentions, shared substrings, case-insensitive matching).
"""

from __future__ import annotations

from typing import Mapping


def _with_ids(prefix: str, surfaces: list[str]) -> dict[str, str]:
    """Assign stable canonical ids (``prefix:0001`` ...) to surface forms."""
    return {surface: f"{prefix}:{index:04d}" for index, surface in enumerate(surfaces, start=1)}


# --------------------------------------------------------------------- chemicals
CHEMICALS: Mapping[str, str] = _with_ids(
    "chem",
    [
        "magnesium", "lithium", "cisplatin", "warfarin", "haloperidol",
        "metformin", "ibuprofen", "dexamethasone", "amiodarone", "clozapine",
        "methotrexate", "penicillamine", "carbamazepine", "phenytoin", "doxorubicin",
        "gentamicin", "isoniazid", "propranolol", "captopril", "verapamil",
        "morphine sulfate", "valproic acid", "tacrolimus", "cyclosporine", "prednisone",
        "heparin", "levodopa", "amphotericin", "ketamine", "naloxone",
    ],
)

DISEASES: Mapping[str, str] = _with_ids(
    "dis",
    [
        "quadriplegia", "preeclampsia", "hepatotoxicity", "nephrotoxicity", "seizures",
        "bradycardia", "thrombocytopenia", "myasthenia gravis", "hypotension", "anemia",
        "pancreatitis", "neutropenia", "tremor", "hyperkalemia", "agranulocytosis",
        "cardiomyopathy", "ototoxicity", "rhabdomyolysis", "hyperglycemia", "nausea",
        "renal failure", "liver injury", "qt prolongation", "proteinuria", "delirium",
        "hemorrhage", "dyskinesia", "hypertension", "edema", "rash",
    ],
)

# Reagent / product vocabulary for the Chem (chemical reactions) task.
REAGENTS: Mapping[str, str] = _with_ids(
    "rgt",
    [
        "sodium borohydride", "palladium acetate", "acetic anhydride", "thionyl chloride",
        "lithium aluminium hydride", "sulfuric acid", "benzaldehyde", "aniline",
        "grignard reagent", "potassium permanganate", "hydrogen peroxide", "acetyl chloride",
        "sodium hydroxide", "phosphorus trichloride", "toluene", "ethanolamine",
        "chloroacetic acid", "dimethylformamide", "triethylamine", "boron trifluoride",
    ],
)

PRODUCTS: Mapping[str, str] = _with_ids(
    "prd",
    [
        "benzyl alcohol", "acetanilide", "ethyl acetate", "nitrobenzene", "aspirin",
        "paracetamol precursor", "benzoic acid", "salicylic acid", "phenol derivative",
        "amide intermediate", "ester adduct", "sulfonamide product", "ketone intermediate",
        "aldehyde product", "carboxylic acid", "imine adduct", "azo compound",
        "lactone product", "epoxide intermediate", "nitrile product",
    ],
)

# Anatomy + pain descriptors for the EHR pain-location task.
ANATOMY: Mapping[str, str] = _with_ids(
    "anat",
    [
        "lower back", "left knee", "right shoulder", "cervical spine", "abdomen",
        "left hip", "right ankle", "lumbar region", "right wrist", "thoracic spine",
        "left elbow", "pelvis", "right knee", "left shoulder", "neck",
        "right hip", "left ankle", "sternum", "right elbow", "left wrist",
    ],
)

PAIN_TERMS: Mapping[str, str] = _with_ids(
    "pain",
    [
        "sharp pain", "chronic pain", "dull ache", "severe pain", "burning pain",
        "intermittent pain", "throbbing pain", "radiating pain", "mild discomfort",
        "acute pain", "stabbing pain", "persistent soreness", "tenderness",
        "shooting pain", "aching sensation",
    ],
)

# Person names for the Spouses task.
PERSONS: Mapping[str, str] = _with_ids(
    "pers",
    [
        "maria alvarez", "john keller", "wei zhang", "fatima hassan", "david cohen",
        "elena petrova", "james okafor", "sofia rossi", "liam murphy", "aisha khan",
        "noah fischer", "grace kim", "omar farouk", "lucia mendes", "peter novak",
        "hannah weiss", "diego ramirez", "yuki tanaka", "anna kowalska", "samuel osei",
        "claire dubois", "ivan markov", "nina haddad", "tom bradley", "priya sharma",
        "mark jensen", "leila nasser", "carlos ortiz", "emma lindqvist", "victor hugo reyes",
    ],
)

# Radiology findings and anatomy terms.
RADIOLOGY_FINDINGS: Mapping[str, str] = _with_ids(
    "find",
    [
        "opacity", "consolidation", "pleural effusion", "cardiomegaly", "pneumothorax",
        "infiltrate", "atelectasis", "nodule", "interstitial markings", "edema pattern",
        "hyperinflation", "granuloma", "mass", "fracture", "degenerative changes",
    ],
)

RADIOLOGY_REGIONS: Mapping[str, str] = _with_ids(
    "reg",
    [
        "right lower lobe", "left upper lobe", "right middle lobe", "left lower lobe",
        "bilateral bases", "right apex", "left apex", "cardiac silhouette",
        "costophrenic angle", "hilar region",
    ],
)

# Weather-sentiment vocabulary for the Crowd task.
WEATHER_POSITIVE_WORDS = [
    "sunny", "gorgeous", "beautiful", "perfect", "lovely", "warm", "bright", "pleasant",
]
WEATHER_NEGATIVE_WORDS = [
    "storm", "miserable", "freezing", "awful", "gloomy", "flooding", "terrible", "humid",
]
WEATHER_NEUTRAL_WORDS = [
    "forecast", "cloudy", "breeze", "temperature", "degrees", "weekend", "afternoon", "evening",
]

# Generic filler vocabulary for padding sentences.
FILLER_WORDS = [
    "the", "a", "patient", "study", "report", "case", "observed", "noted", "during",
    "after", "with", "without", "history", "of", "and", "in", "on", "for", "this",
    "recent", "further", "results", "findings", "clinical", "data",
]
