"""A small in-memory relational store with an ORM-ish session layer.

This package is the reproduction's substitute for the paper's PostgreSQL +
SQLAlchemy stack.  It provides:

* :mod:`repro.db.schema` — table and column definitions with primary and
  foreign keys,
* :mod:`repro.db.storage` — the row store with primary-key and secondary
  indexes,
* :mod:`repro.db.query` — a small composable query API (filter, order, join),
* :mod:`repro.db.orm` — a session that maps Python dataclass-like records to
  rows and resolves parent/child relationships lazily.

The context hierarchy (documents, sentences, spans, candidates) and the label
store are built on top of it, exactly as Snorkel's data model sits on its ORM
layer.
"""

from repro.db.orm import MappedRecord, Session
from repro.db.query import Query
from repro.db.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.db.storage import Database

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Schema",
    "Table",
    "Database",
    "Query",
    "Session",
    "MappedRecord",
]
