"""A minimal object-relational mapping layer.

Snorkel exposes its context hierarchy through SQLAlchemy so that labeling
functions traverse parent/child structure with ordinary attribute access.
This module reproduces the part of that experience the LF interface needs:

* :class:`MappedRecord` — declarative base; subclasses declare a table and a
  set of fields, and instances round-trip to database rows,
* :class:`Session` — add / get / query records, and resolve parent and
  children relationships on demand.
"""

from __future__ import annotations

from typing import Any, ClassVar, Iterable, Optional, Type, TypeVar

from repro.db.schema import Column, Schema, Table
from repro.db.storage import Database
from repro.exceptions import SchemaError

R = TypeVar("R", bound="MappedRecord")


class MappedRecord:
    """Base class for objects persisted through a :class:`Session`.

    Subclasses set two class attributes:

    ``__tablename__``
        Name of the backing table.
    ``__fields__``
        Tuple of column names (excluding the implicit ``id`` primary key).

    Instances carry their field values as attributes plus an ``id`` that is
    ``None`` until the record has been added to a session.
    """

    __tablename__: ClassVar[str] = ""
    __fields__: ClassVar[tuple[str, ...]] = ()

    def __init__(self, **values: Any) -> None:
        unknown = set(values) - set(self.__fields__) - {"id"}
        if unknown:
            raise SchemaError(
                f"{type(self).__name__} has no fields {sorted(unknown)!r}; "
                f"declared fields are {list(self.__fields__)!r}"
            )
        self.id: Optional[int] = values.get("id")
        for name in self.__fields__:
            setattr(self, name, values.get(name))

    def to_row(self) -> dict[str, Any]:
        """Serialize the record to a database row dict."""
        row = {name: getattr(self, name) for name in self.__fields__}
        if self.id is not None:
            row["id"] = self.id
        return row

    @classmethod
    def from_row(cls: Type[R], row: dict[str, Any]) -> R:
        """Construct a record from a database row dict."""
        values = {name: row.get(name) for name in cls.__fields__}
        values["id"] = row.get("id")
        return cls(**values)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__fields__[:4])
        return f"{type(self).__name__}(id={self.id!r}, {fields})"


class Session:
    """A unit-of-work facade over :class:`Database` for mapped records."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._identity_map: dict[tuple[str, Any], MappedRecord] = {}

    # ----------------------------------------------------------------- mutation
    def add(self, record: MappedRecord) -> MappedRecord:
        """Persist ``record``; assigns ``record.id`` and returns the record."""
        record.id = self.database.insert(record.__tablename__, record.to_row())
        self._identity_map[(record.__tablename__, record.id)] = record
        return record

    def add_all(self, records: Iterable[MappedRecord]) -> list[MappedRecord]:
        """Persist many records and return them."""
        return [self.add(record) for record in records]

    # -------------------------------------------------------------------- reads
    def get(self, record_type: Type[R], record_id: Any) -> R:
        """Fetch a record by primary key (with identity-map caching)."""
        key = (record_type.__tablename__, record_id)
        cached = self._identity_map.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        row = self.database.get(record_type.__tablename__, record_id)
        record = record_type.from_row(row)
        self._identity_map[key] = record
        return record

    def find(self, record_type: Type[R], **equalities: Any) -> list[R]:
        """Fetch all records of ``record_type`` matching the equality filters."""
        rows = self.database.query(record_type.__tablename__).filter_by(**equalities).all()
        return [record_type.from_row(row) for row in rows]

    def count(self, record_type: Type[MappedRecord]) -> int:
        """Count persisted records of ``record_type``."""
        return self.database.count(record_type.__tablename__)

    def all(self, record_type: Type[R]) -> list[R]:
        """Fetch every persisted record of ``record_type``."""
        return [record_type.from_row(row) for row in self.database.scan(record_type.__tablename__)]

    def children(self, parent: MappedRecord, child_type: Type[R], fk_field: str) -> list[R]:
        """Fetch all ``child_type`` records whose ``fk_field`` equals ``parent.id``."""
        return self.find(child_type, **{fk_field: parent.id})

    def parent(self, child: MappedRecord, parent_type: Type[R], fk_field: str) -> R:
        """Resolve the parent record referenced by ``child.<fk_field>``."""
        return self.get(parent_type, getattr(child, fk_field))


def schema_for_records(record_types: Iterable[Type[MappedRecord]]) -> Schema:
    """Build a :class:`Schema` with one table per mapped record type.

    All non-id columns are created as nullable JSON columns with indexes on
    fields named ``*_id`` (the foreign-key naming convention used by the
    context hierarchy), which gives fast parent→children traversal.
    """
    schema = Schema()
    for record_type in record_types:
        if not record_type.__tablename__:
            raise SchemaError(f"{record_type.__name__} does not declare __tablename__")
        columns = [
            Column(name=name, indexed=name.endswith("_id"))
            for name in record_type.__fields__
        ]
        schema.add_table(Table(name=record_type.__tablename__, columns=columns))
    return schema
