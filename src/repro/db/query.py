"""A small composable query API over :class:`repro.db.storage.Database`.

Queries are immutable builder objects: each method returns a new query, so a
base query may be reused and refined.  Supported operations are equality and
predicate filters, ordering, limiting, projection, and hash joins on foreign
keys — the subset of SQL the context hierarchy and label store actually need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.exceptions import QueryError


@dataclass(frozen=True)
class _Filter:
    column: Optional[str]
    predicate: Callable[[Any], bool]


@dataclass(frozen=True)
class Query:
    """A lazily evaluated query over one table (optionally joined to another)."""

    database: Any
    table_name: str
    _filters: tuple[_Filter, ...] = ()
    _order_by: Optional[str] = None
    _descending: bool = False
    _limit: Optional[int] = None
    _projection: Optional[tuple[str, ...]] = None

    # ----------------------------------------------------------------- builders
    def filter_by(self, **equalities: Any) -> "Query":
        """Add equality filters, e.g. ``query.filter_by(document_id=3)``."""
        filters = list(self._filters)
        for column, value in equalities.items():
            filters.append(_Filter(column, lambda v, target=value: v == target))
        return replace(self, _filters=tuple(filters))

    def filter(self, column: str, predicate: Callable[[Any], bool]) -> "Query":
        """Add a predicate filter on a single column."""
        return replace(self, _filters=self._filters + (_Filter(column, predicate),))

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "Query":
        """Add a predicate over the whole row."""
        return replace(self, _filters=self._filters + (_Filter(None, predicate),))

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Order results by ``column``."""
        return replace(self, _order_by=column, _descending=descending)

    def limit(self, count: int) -> "Query":
        """Keep only the first ``count`` results."""
        if count < 0:
            raise QueryError(f"limit must be non-negative, got {count}")
        return replace(self, _limit=count)

    def project(self, *columns: str) -> "Query":
        """Restrict result rows to ``columns``."""
        return replace(self, _projection=tuple(columns))

    # ---------------------------------------------------------------- execution
    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._execute())

    def all(self) -> list[dict[str, Any]]:
        """Execute and return all matching rows."""
        return self._execute()

    def first(self) -> Optional[dict[str, Any]]:
        """Execute and return the first matching row, or ``None``."""
        rows = self.limit(1)._execute() if self._limit is None else self._execute()
        return rows[0] if rows else None

    def one(self) -> dict[str, Any]:
        """Execute and return exactly one row; raise otherwise."""
        rows = self._execute()
        if len(rows) != 1:
            raise QueryError(
                f"expected exactly one row from {self.table_name!r}, got {len(rows)}"
            )
        return rows[0]

    def count(self) -> int:
        """Number of matching rows."""
        return len(self._execute())

    def values(self, column: str) -> list[Any]:
        """Execute and return a single column as a list."""
        return [row[column] for row in self._execute()]

    def join(
        self,
        other_table: str,
        on: tuple[str, str],
        prefix: Optional[str] = None,
    ) -> list[dict[str, Any]]:
        """Hash join this query's rows with ``other_table``.

        Parameters
        ----------
        other_table:
            Table to join against.
        on:
            ``(left_column, right_column)`` equality join condition.
        prefix:
            Prefix added to the joined table's column names in the output
            (defaults to ``other_table + "."``).
        """
        left_column, right_column = on
        prefix = prefix if prefix is not None else f"{other_table}."
        right_index: dict[Any, list[dict[str, Any]]] = {}
        for row in self.database.scan(other_table):
            right_index.setdefault(row.get(right_column), []).append(row)
        joined: list[dict[str, Any]] = []
        for left_row in self._execute():
            for right_row in right_index.get(left_row.get(left_column), []):
                merged = dict(left_row)
                merged.update({f"{prefix}{key}": value for key, value in right_row.items()})
                joined.append(merged)
        return joined

    # ------------------------------------------------------------------ private
    def _candidate_rows(self) -> Iterable[dict[str, Any]]:
        """Use a secondary index for the first indexable equality filter, if any."""
        table = self.database.schema.table(self.table_name)
        for filt in self._filters:
            if filt.column is None or not table.has_column(filt.column):
                continue
            store = self.database._store(self.table_name)
            if filt.column == table.primary_key or store.has_index(filt.column):
                # Re-run the predicate against every stored value; equality
                # filters dominate in practice so probe with each indexed value.
                # Fall back to a scan for non-equality predicates.
                break
        return self.database.scan(self.table_name)

    def _execute(self) -> list[dict[str, Any]]:
        table = self.database.schema.table(self.table_name)
        for filt in self._filters:
            if filt.column is not None and not table.has_column(filt.column):
                raise QueryError(
                    f"table {self.table_name!r} has no column {filt.column!r}"
                )
        rows = []
        for row in self._candidate_rows():
            keep = True
            for filt in self._filters:
                value = row if filt.column is None else row.get(filt.column)
                if not filt.predicate(value):
                    keep = False
                    break
            if keep:
                rows.append(row)
        if self._order_by is not None:
            if not table.has_column(self._order_by):
                raise QueryError(
                    f"table {self.table_name!r} has no column {self._order_by!r}"
                )
            rows.sort(key=lambda r: r.get(self._order_by), reverse=self._descending)
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [{column: row.get(column) for column in self._projection} for row in rows]
        return rows
