"""Relational schema definitions: typed columns, tables, and foreign keys."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    The store is dynamically typed under the hood; the declared type is used
    for validation on insert so schema mistakes fail loudly rather than
    silently storing the wrong thing.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    JSON = "json"

    def validate(self, value: Any) -> bool:
        """Return ``True`` if ``value`` is acceptable for this column type."""
        if value is None:
            return True
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.TEXT:
            return isinstance(value, str)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        if self is ColumnType.JSON:
            return isinstance(value, (dict, list, str, int, float, bool))
        return False


@dataclass(frozen=True)
class ForeignKey:
    """A reference from a column to another table's primary key."""

    table: str
    column: str = "id"


@dataclass(frozen=True)
class Column:
    """A typed column in a table.

    Parameters
    ----------
    name:
        Column name; must be unique within its table.
    type:
        Declared :class:`ColumnType`.
    nullable:
        Whether ``None`` is an acceptable stored value.
    indexed:
        Whether the storage layer should maintain a secondary hash index for
        equality lookups on this column.
    foreign_key:
        Optional reference to another table.
    """

    name: str
    type: ColumnType = ColumnType.JSON
    nullable: bool = True
    indexed: bool = False
    foreign_key: Optional[ForeignKey] = None


@dataclass
class Table:
    """A table definition: a primary key plus a list of columns."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: str = "id"

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"table {self.name!r} has duplicate column names: {names}")
        if self.primary_key in names:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} must not also be "
                "declared as a regular column"
            )

    @property
    def column_names(self) -> list[str]:
        """All column names including the primary key (first)."""
        return [self.primary_key] + [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column definition by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Return ``True`` if ``name`` is the primary key or a declared column."""
        return name == self.primary_key or any(column.name == name for column in self.columns)

    def foreign_keys(self) -> list[tuple[str, ForeignKey]]:
        """All ``(column_name, ForeignKey)`` pairs declared on this table."""
        return [(column.name, column.foreign_key) for column in self.columns if column.foreign_key]


class Schema:
    """A collection of tables forming one database schema."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> Table:
        """Register a table; raises if the name is taken."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists in schema")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table definition by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema has no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Return ``True`` if the schema declares a table called ``name``."""
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables in insertion order."""
        return list(self._tables)

    def validate_foreign_keys(self) -> None:
        """Check that every foreign key points at an existing table and column."""
        for table in self._tables.values():
            for column_name, fk in table.foreign_keys():
                if fk.table not in self._tables:
                    raise SchemaError(
                        f"{table.name}.{column_name} references unknown table {fk.table!r}"
                    )
                target = self._tables[fk.table]
                if fk.column != target.primary_key and not target.has_column(fk.column):
                    raise SchemaError(
                        f"{table.name}.{column_name} references unknown column "
                        f"{fk.table}.{fk.column}"
                    )
