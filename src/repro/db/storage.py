"""Row storage with primary-key and secondary indexes, plus integrity checks."""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Mapping, Optional

from repro.db.schema import Schema, Table
from repro.exceptions import IntegrityError, QueryError, SchemaError


class _TableStore:
    """Storage for a single table: rows by primary key plus secondary indexes."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.rows: dict[Any, dict[str, Any]] = {}
        self._indexes: dict[str, dict[Any, set[Any]]] = {
            column.name: {} for column in table.columns if column.indexed
        }
        self._auto_id = itertools.count(1)

    def next_id(self) -> int:
        """Allocate the next auto-increment primary key."""
        return next(self._auto_id)

    def insert(self, row: dict[str, Any]) -> Any:
        key = row[self.table.primary_key]
        if key in self.rows:
            raise IntegrityError(
                f"duplicate primary key {key!r} for table {self.table.name!r}"
            )
        self.rows[key] = row
        for column_name, index in self._indexes.items():
            index.setdefault(row.get(column_name), set()).add(key)
        return key

    def delete(self, key: Any) -> None:
        row = self.rows.pop(key, None)
        if row is None:
            raise IntegrityError(f"no row with primary key {key!r} in table {self.table.name!r}")
        for column_name, index in self._indexes.items():
            bucket = index.get(row.get(column_name))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[row.get(column_name)]

    def lookup_index(self, column: str, value: Any) -> set[Any]:
        return set(self._indexes[column].get(value, set()))

    def has_index(self, column: str) -> bool:
        return column in self._indexes


class Database:
    """An in-memory relational database over a :class:`Schema`.

    The database enforces primary-key uniqueness, column types, non-null
    constraints, and foreign-key existence on insert, and maintains hash
    indexes on columns declared ``indexed=True``.
    """

    def __init__(self, schema: Schema) -> None:
        schema.validate_foreign_keys()
        self.schema = schema
        self._stores: dict[str, _TableStore] = {
            name: _TableStore(schema.table(name)) for name in schema.table_names
        }

    # ------------------------------------------------------------------ write
    def insert(self, table_name: str, values: Mapping[str, Any]) -> Any:
        """Insert a row into ``table_name`` and return its primary key.

        If the primary key is absent from ``values`` an auto-increment integer
        is assigned.  Raises :class:`IntegrityError` on constraint violations.
        """
        store = self._store(table_name)
        table = store.table
        row = dict(values)
        unknown = [name for name in row if not table.has_column(name)]
        if unknown:
            raise SchemaError(f"table {table_name!r} has no columns {unknown!r}")
        if table.primary_key not in row or row[table.primary_key] is None:
            row[table.primary_key] = store.next_id()
        for column in table.columns:
            value = row.get(column.name)
            if value is None:
                if not column.nullable:
                    raise IntegrityError(
                        f"{table_name}.{column.name} is not nullable but no value was provided"
                    )
                row.setdefault(column.name, None)
                continue
            if not column.type.validate(value):
                raise IntegrityError(
                    f"{table_name}.{column.name} expects {column.type.value}, got {value!r}"
                )
            if column.foreign_key is not None:
                parent = self._store(column.foreign_key.table)
                if value not in parent.rows:
                    raise IntegrityError(
                        f"{table_name}.{column.name}={value!r} violates foreign key to "
                        f"{column.foreign_key.table}.{column.foreign_key.column}"
                    )
        return store.insert(row)

    def insert_many(self, table_name: str, rows: Iterable[Mapping[str, Any]]) -> list[Any]:
        """Insert many rows; returns the list of assigned primary keys."""
        return [self.insert(table_name, row) for row in rows]

    def delete(self, table_name: str, key: Any) -> None:
        """Delete the row with primary key ``key`` from ``table_name``."""
        self._store(table_name).delete(key)

    # ------------------------------------------------------------------- read
    def get(self, table_name: str, key: Any) -> dict[str, Any]:
        """Fetch a row by primary key; raises :class:`QueryError` if missing."""
        store = self._store(table_name)
        try:
            return dict(store.rows[key])
        except KeyError:
            raise QueryError(f"no row with key {key!r} in table {table_name!r}") from None

    def get_or_none(self, table_name: str, key: Any) -> Optional[dict[str, Any]]:
        """Fetch a row by primary key, returning ``None`` if absent."""
        store = self._store(table_name)
        row = store.rows.get(key)
        return dict(row) if row is not None else None

    def scan(self, table_name: str) -> Iterator[dict[str, Any]]:
        """Iterate over copies of all rows in ``table_name``."""
        store = self._store(table_name)
        for row in store.rows.values():
            yield dict(row)

    def count(self, table_name: str) -> int:
        """Number of rows currently stored in ``table_name``."""
        return len(self._store(table_name).rows)

    def find_by(self, table_name: str, column: str, value: Any) -> list[dict[str, Any]]:
        """Equality lookup, using the secondary index when one exists."""
        store = self._store(table_name)
        if not store.table.has_column(column):
            raise QueryError(f"table {table_name!r} has no column {column!r}")
        if column == store.table.primary_key:
            row = store.rows.get(value)
            return [dict(row)] if row is not None else []
        if store.has_index(column):
            keys = store.lookup_index(column, value)
            return [dict(store.rows[key]) for key in sorted(keys, key=_sort_key)]
        return [dict(row) for row in store.rows.values() if row.get(column) == value]

    def query(self, table_name: str) -> "Query":
        """Start a composable query against ``table_name``."""
        from repro.db.query import Query

        return Query(self, table_name)

    # ---------------------------------------------------------------- helpers
    def _store(self, table_name: str) -> _TableStore:
        try:
            return self._stores[table_name]
        except KeyError:
            raise QueryError(f"database has no table {table_name!r}") from None


def _sort_key(value: Any) -> tuple:
    """Stable ordering key that tolerates mixed key types."""
    return (str(type(value)), str(value))
