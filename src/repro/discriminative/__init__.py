"""Noise-aware discriminative end models and featurizers.

The paper trains a bi-LSTM (text) or a pre-trained ResNet-50 (images) on the
probabilistic labels; this package provides the laptop-scale, framework-free
substitutes: hashing n-gram / relation-window featurizers for text, a
noise-aware logistic regression and MLP trained with Adam, and an image-style
classifier over pre-extracted feature vectors.  All models minimize the
noise-aware loss ``Σ_i E_{y~Ỹ_i}[ℓ(h_θ(x_i), y)]`` (paper Section 2.3).
"""

from repro.discriminative.adam import AdamOptimizer
from repro.discriminative.featurizers import HashingVectorizer, RelationFeaturizer
from repro.discriminative.image import ImageFeatureClassifier
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.discriminative.mlp import NoiseAwareMLP
from repro.discriminative.sparse_features import CSRFeatureMatrix, as_float_features

__all__ = [
    "AdamOptimizer",
    "CSRFeatureMatrix",
    "as_float_features",
    "HashingVectorizer",
    "RelationFeaturizer",
    "NoiseAwareLogisticRegression",
    "NoiseAwareMLP",
    "ImageFeatureClassifier",
]
