"""Adam optimizer (Kingma & Ba, 2014), used by every discriminative model.

The paper trains its end models with Adam; this is a small, dependency-free
implementation over flat numpy parameter arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError


class AdamOptimizer:
    """First-order adaptive-moment optimizer for a single parameter array.

    Parameters
    ----------
    learning_rate:
        Base step size.
    beta1, beta2:
        Exponential decay rates for the first and second moment estimates.
    epsilon:
        Numerical stabilizer added to the denominator.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ConfigurationError("beta1 and beta2 must lie in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: Optional[np.ndarray] = None
        self._second_moment: Optional[np.ndarray] = None
        self._step_count = 0

    def reset(self) -> None:
        """Clear the optimizer state (moments and step count)."""
        self._first_moment = None
        self._second_moment = None
        self._step_count = 0

    def get_state(self) -> dict:
        """Snapshot the optimizer state (moments + step count).

        The snapshot owns its arrays, so later :meth:`step` calls cannot
        mutate it — restoring it with :meth:`set_state` resumes the update
        sequence exactly where the snapshot was taken (epoch checkpointing
        relies on this being bit-exact).
        """
        return {
            "first_moment": None if self._first_moment is None else self._first_moment.copy(),
            "second_moment": None if self._second_moment is None else self._second_moment.copy(),
            "step_count": self._step_count,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        first = state["first_moment"]
        second = state["second_moment"]
        self._first_moment = None if first is None else np.asarray(first, dtype=float).copy()
        self._second_moment = None if second is None else np.asarray(second, dtype=float).copy()
        self._step_count = int(state["step_count"])

    def step(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated parameters after one Adam step along ``-gradient``."""
        parameters = np.asarray(parameters, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if parameters.shape != gradient.shape:
            raise ConfigurationError(
                f"parameter shape {parameters.shape} does not match gradient shape "
                f"{gradient.shape}"
            )
        if self._first_moment is None or self._first_moment.shape != parameters.shape:
            self._first_moment = np.zeros_like(parameters)
            self._second_moment = np.zeros_like(parameters)
            self._step_count = 0
        self._step_count += 1
        self._first_moment = self.beta1 * self._first_moment + (1 - self.beta1) * gradient
        self._second_moment = self.beta2 * self._second_moment + (1 - self.beta2) * gradient**2
        first_unbiased = self._first_moment / (1 - self.beta1**self._step_count)
        second_unbiased = self._second_moment / (1 - self.beta2**self._step_count)
        return parameters - self.learning_rate * first_unbiased / (
            np.sqrt(second_unbiased) + self.epsilon
        )
