"""Shared base class for noise-aware discriminative models.

All end models train on *probabilistic* labels ``Ỹ_i ∈ [0, 1]`` by
minimizing the noise-aware loss (paper Section 2.3)::

    θ̂ = argmin_θ  Σ_i  E_{y ~ Ỹ_i}[ ℓ(h_θ(x_i), y) ]

For the logistic loss this expectation is simply the cross-entropy against
the soft label, so hard labels (0/1) are the special case of confident
probabilistic labels.

**Streaming minibatch training.**  Besides the materialized ``fit(X, Ỹ)``
every end model offers ``fit_stream(blocks)``: ``blocks`` is a *re-iterable
block source* — a sequence of ``(feature block, target block)`` pairs or a
zero-argument callable returning a fresh iterator over them — and the model
trains without ever holding the full ``(m, d)`` feature matrix, dense or
otherwise.  The trainer re-chunks arbitrary incoming block boundaries into
exact ``batch_size`` minibatches (:func:`iter_rebatched`), so the minibatch
sequence — and therefore the trained weights — is *identical* to
``fit(X, Ỹ)`` with ``shuffle=False`` on the concatenated blocks, whatever
chunk size the producer used.  The per-epoch schedule visits rows in stream
order; global shuffling is impossible without random access, which is the
one semantic difference from the shuffled materialized default
(``shuffle=True`` preserves the historical behavior bit-for-bit).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.discriminative.sparse_features import CSRFeatureMatrix
from repro.exceptions import ConfigurationError
from repro.types import NEGATIVE, POSITIVE
from repro.utils.mathutils import clip_probabilities

#: One streamed training block: features (dense array or CSR) + targets
#: (``(b,)`` soft labels or ``(b, k)`` distributions).
FeatureBlock = Union[np.ndarray, CSRFeatureMatrix]
Block = tuple[FeatureBlock, np.ndarray]
#: A re-iterable source of blocks: a sequence, any re-iterable container, or
#: a zero-argument callable returning a fresh iterator (e.g. one that
#: re-featurizes a candidate stream per epoch).
BlockSource = Union[Callable[[], Iterable[Block]], Iterable[Block]]


def resolve_block_source(blocks: BlockSource) -> Callable[[], Iterator[Block]]:
    """Normalize a block source into a fresh-iterator factory.

    One-shot iterators are rejected up front: multi-epoch training replays
    the source once per epoch, and silently training every epoch after the
    first on zero blocks is exactly the kind of bug this layer exists to
    rule out.
    """
    if callable(blocks):
        return blocks
    iterator = iter(blocks)
    if iterator is blocks:
        raise ConfigurationError(
            "streaming fit needs a re-iterable block source (a sequence of "
            "(features, targets) blocks, or a zero-argument callable returning "
            "a fresh iterator); a one-shot generator cannot be replayed across "
            "epochs"
        )
    return lambda: iter(blocks)


def peek_block_width(source: Callable[[], Iterator[Block]]) -> int:
    """Feature dimensionality of the first block (weights are initialized
    before the first epoch, exactly as in the materialized path)."""
    iterator = source()
    try:
        first_features, _ = next(iter(iterator))
    except StopIteration:
        raise ConfigurationError("streaming fit received an empty block stream") from None
    return int(first_features.shape[1])


def iter_materialized_batches(
    rng: np.random.Generator,
    shuffle: bool,
    batch_size: int,
    features: FeatureBlock,
    *arrays: np.ndarray,
) -> Iterator[tuple]:
    """One epoch of materialized minibatches over ``features`` (+ aligned arrays).

    The single batching schedule all three end models share: with
    ``shuffle`` a fresh row permutation (drawn lazily, so the RNG stream
    matches the historical per-epoch ``rng.permutation`` call order), else
    contiguous row-order slices — exactly the sequence
    :func:`iter_rebatched` reproduces from a block stream.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    num_examples = int(features.shape[0])
    if num_examples == 0:
        return
    batch_size = min(batch_size, num_examples)
    if shuffle:
        order = rng.permutation(num_examples)
        for start in range(0, num_examples, batch_size):
            rows = order[start : start + batch_size]
            yield (features[rows], *(array[rows] for array in arrays))
    else:
        for start in range(0, num_examples, batch_size):
            stop = min(start + batch_size, num_examples)
            yield (
                _slice_feature_rows(features, start, stop),
                *(array[start:stop] for array in arrays),
            )


def require_nonempty_batches(batches: Iterable[tuple]) -> Iterator[tuple]:
    """Pass batches through; raise if an epoch produced none.

    Guards every trainer's epoch loop: a silently empty stream would
    otherwise "train" to the random initialization.
    """
    empty = True
    for batch in batches:
        empty = False
        yield batch
    if empty:
        raise ConfigurationError("training produced no examples")


def _merge_feature_parts(parts: Sequence[FeatureBlock]) -> FeatureBlock:
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(part, np.ndarray) for part in parts):
        return np.concatenate(parts, axis=0)
    if all(isinstance(part, CSRFeatureMatrix) for part in parts):
        return CSRFeatureMatrix.vstack(list(parts))
    raise ConfigurationError(
        "streaming blocks mix dense and CSR feature storage; emit one storage "
        "kind per stream"
    )


def _slice_feature_rows(block: FeatureBlock, start: int, stop: int) -> FeatureBlock:
    if isinstance(block, CSRFeatureMatrix):
        return block.row_range(start, stop)
    return block[start:stop]


def iter_rebatched(blocks: Iterable[Block], batch_size: int) -> Iterator[Block]:
    """Re-chunk incoming blocks into exact ``batch_size`` minibatches.

    Rows keep their stream order; block boundaries are stitched with a
    carry buffer smaller than one batch, so memory stays O(batch) beyond
    the incoming block and the produced minibatch sequence is independent
    of the producer's chunking — the invariant the streaming-vs-materialized
    differential tests pin down.  The final minibatch may be ragged.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    feature_parts: list[FeatureBlock] = []
    target_parts: list[np.ndarray] = []
    width: Optional[int] = None
    buffered = 0
    for features, targets in blocks:
        targets = np.asarray(targets, dtype=float)
        if targets.shape[0] != features.shape[0]:
            raise ConfigurationError(
                f"block features have {features.shape[0]} rows but targets "
                f"{targets.shape[0]}"
            )
        if width is None:
            width = int(features.shape[1])
        elif int(features.shape[1]) != width:
            raise ConfigurationError(
                f"streaming blocks disagree on feature width: {width} vs "
                f"{features.shape[1]} (unfitted or misconfigured featurizer?)"
            )
        if features.shape[0] == 0:
            continue
        feature_parts.append(features)
        target_parts.append(targets)
        buffered += int(features.shape[0])
        if buffered < batch_size:
            continue
        merged_features = _merge_feature_parts(feature_parts)
        merged_targets = (
            target_parts[0]
            if len(target_parts) == 1
            else np.concatenate(target_parts, axis=0)
        )
        start = 0
        while buffered - start >= batch_size:
            yield (
                _slice_feature_rows(merged_features, start, start + batch_size),
                merged_targets[start : start + batch_size],
            )
            start += batch_size
        if buffered - start > 0:
            feature_parts = [_slice_feature_rows(merged_features, start, buffered)]
            target_parts = [merged_targets[start:]]
        else:
            feature_parts, target_parts = [], []
        buffered -= start
    if buffered > 0:
        yield (
            _merge_feature_parts(feature_parts),
            target_parts[0] if len(target_parts) == 1 else np.concatenate(target_parts, axis=0),
        )


def as_soft_labels(labels: Sequence[float] | np.ndarray) -> np.ndarray:
    """Canonicalize training labels into soft positive-class probabilities.

    Accepts probabilities in [0, 1] or hard labels in {-1, +1}.
    """
    array = np.asarray(labels, dtype=float)
    if array.ndim != 1:
        raise ConfigurationError(f"labels must be 1-dimensional, got shape {array.shape}")
    values = set(np.unique(array).tolist())
    if values <= {-1.0, 1.0}:
        return (array == 1.0).astype(float)
    if array.min() < 0.0 or array.max() > 1.0:
        raise ConfigurationError(
            "labels must be probabilities in [0, 1] or hard labels in {-1, +1}"
        )
    return array


class NoiseAwareClassifier(abc.ABC):
    """Interface of all binary noise-aware end models."""

    @abc.abstractmethod
    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "NoiseAwareClassifier":
        """Train on features and probabilistic labels."""

    def fit_stream(self, blocks: BlockSource, checkpoint=None) -> "NoiseAwareClassifier":
        """Train from a re-iterable stream of ``(features, soft labels)`` blocks.

        ``checkpoint`` (a :class:`repro.labeling.blockstore.EpochCheckpoint`
        or ``None``) asks the trainer to persist its state after every epoch
        and resume a previously interrupted fit bit-identically.

        Implemented by the concrete models; the default refuses loudly so a
        streaming pipeline never silently falls back to materialization.
        """
        raise ConfigurationError(
            f"{type(self).__name__} does not implement fit_stream(); use a "
            "model with a streaming trainer or run the materialized pipeline"
        )

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard labels in {-1, +1} (0.5 threshold)."""
        probs = self.predict_proba(features)
        return np.where(probs > 0.5, POSITIVE, NEGATIVE).astype(np.int64)

    def score(self, features: np.ndarray, gold_labels: Sequence[int] | np.ndarray) -> float:
        """Accuracy of hard predictions against gold labels."""
        gold = np.asarray(gold_labels)
        return float((self.predict(features) == gold).mean())


def noise_aware_cross_entropy(
    predicted_probs: np.ndarray, soft_labels: np.ndarray
) -> float:
    """Mean noise-aware cross-entropy ``E_{y~Ỹ}[ℓ_log(p, y)]``."""
    predicted = clip_probabilities(predicted_probs)
    soft = np.asarray(soft_labels, dtype=float)
    losses = -(soft * np.log(predicted) + (1.0 - soft) * np.log(1.0 - predicted))
    return float(losses.mean())
