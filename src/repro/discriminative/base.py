"""Shared base class for noise-aware discriminative models.

All end models train on *probabilistic* labels ``Ỹ_i ∈ [0, 1]`` by
minimizing the noise-aware loss (paper Section 2.3)::

    θ̂ = argmin_θ  Σ_i  E_{y ~ Ỹ_i}[ ℓ(h_θ(x_i), y) ]

For the logistic loss this expectation is simply the cross-entropy against
the soft label, so hard labels (0/1) are the special case of confident
probabilistic labels.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.types import NEGATIVE, POSITIVE
from repro.utils.mathutils import clip_probabilities


def as_soft_labels(labels: Sequence[float] | np.ndarray) -> np.ndarray:
    """Canonicalize training labels into soft positive-class probabilities.

    Accepts probabilities in [0, 1] or hard labels in {-1, +1}.
    """
    array = np.asarray(labels, dtype=float)
    if array.ndim != 1:
        raise ConfigurationError(f"labels must be 1-dimensional, got shape {array.shape}")
    values = set(np.unique(array).tolist())
    if values <= {-1.0, 1.0}:
        return (array == 1.0).astype(float)
    if array.min() < 0.0 or array.max() > 1.0:
        raise ConfigurationError(
            "labels must be probabilities in [0, 1] or hard labels in {-1, +1}"
        )
    return array


class NoiseAwareClassifier(abc.ABC):
    """Interface of all binary noise-aware end models."""

    @abc.abstractmethod
    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "NoiseAwareClassifier":
        """Train on features and probabilistic labels."""

    @abc.abstractmethod
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities."""

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard labels in {-1, +1} (0.5 threshold)."""
        probs = self.predict_proba(features)
        return np.where(probs > 0.5, POSITIVE, NEGATIVE).astype(np.int64)

    def score(self, features: np.ndarray, gold_labels: Sequence[int] | np.ndarray) -> float:
        """Accuracy of hard predictions against gold labels."""
        gold = np.asarray(gold_labels)
        return float((self.predict(features) == gold).mean())


def noise_aware_cross_entropy(
    predicted_probs: np.ndarray, soft_labels: np.ndarray
) -> float:
    """Mean noise-aware cross-entropy ``E_{y~Ỹ}[ℓ_log(p, y)]``."""
    predicted = clip_probabilities(predicted_probs)
    soft = np.asarray(soft_labels, dtype=float)
    losses = -(soft * np.log(predicted) + (1.0 - soft) * np.log(1.0 - predicted))
    return float(losses.mean())
