"""Feature extraction for the discriminative text models.

The discriminative model must be able to generalize beyond the labeling
functions: it sees *features* of candidates (word n-grams, window words,
distances) rather than the LF votes.  The paper uses a bi-LSTM over word
embeddings; the substitute here is a hashed sparse bag of n-grams over the
sentence plus relation-specific features (words between the argument spans,
window words, argument order and distance), which preserves the property the
paper relies on: features that co-occur with LF-covered candidates also
appear on uncovered candidates, letting the end model raise recall.

Both featurizers offer a batch-sparse path (``transform(..., sparse=True)``)
returning a :class:`repro.discriminative.sparse_features.CSRFeatureMatrix`
with exactly the same values as the dense output — a candidate touches only
a few hash buckets, so the dense ``(m, num_features)`` allocation is pure
waste at scale.

**Fitted-state discipline.**  Hashing featurizers learn nothing from data,
but their *configuration* (feature-space width, n-gram range, sign mode)
fixes the meaning of every column.  Once chunks are featurized by worker
processes and merged by column index, a featurizer whose configuration
drifted between fit and transform — or that was never frozen at all —
produces silently misaligned columns.  ``fit()`` therefore freezes the
configuration snapshot, and every batch ``transform`` (and the engine's
:func:`repro.labeling.engine.tasks.featurize_chunk`) calls
``require_fitted()`` first, raising :class:`repro.exceptions.NotFittedError`
on an unfitted featurizer and
:class:`repro.exceptions.ConfigurationError` on one mutated after fitting.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.context.candidates import Candidate
from repro.discriminative.sparse_features import CSRFeatureMatrix
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.textutils import ngrams, normalize


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit hash of a string (stable across processes)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingVectorizer:
    """Hashed bag-of-n-grams featurizer over token sequences.

    Parameters
    ----------
    num_features:
        Dimensionality of the hashed feature space.
    ngram_range:
        Inclusive ``(min_n, max_n)`` n-gram sizes.
    signed:
        Use the hash parity as the feature sign (reduces collision bias).
    """

    def __init__(
        self,
        num_features: int = 2048,
        ngram_range: tuple[int, int] = (1, 2),
        signed: bool = True,
    ) -> None:
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        low, high = ngram_range
        if low < 1 or high < low:
            raise ConfigurationError(f"invalid ngram_range {ngram_range}")
        self.num_features = num_features
        self.ngram_range = ngram_range
        self.signed = signed
        self._fitted_config: Optional[tuple] = None

    def _config(self) -> tuple:
        return (self.num_features, tuple(self.ngram_range), self.signed)

    def fit(self, token_sequences: Optional[Iterable[Sequence[str]]] = None) -> "HashingVectorizer":
        """Freeze the feature-space configuration (hashing learns nothing).

        ``token_sequences`` is accepted for API symmetry with learned
        vectorizers and ignored — in particular, a generator argument is
        *not* consumed, so streaming callers can fit before the single pass
        over their data.
        """
        self._fitted_config = self._config()
        return self

    def require_fitted(self) -> None:
        """Fail loudly when transforming before fit / after config mutation."""
        if self._fitted_config is None:
            raise NotFittedError(
                "HashingVectorizer.transform called before fit(); fit() freezes "
                "the feature-space configuration so chunks featurized by "
                "different workers stay column-aligned"
            )
        if self._fitted_config != self._config():
            raise ConfigurationError(
                f"HashingVectorizer configuration changed after fit(): fitted "
                f"{self._fitted_config}, now {self._config()}; transforming "
                "would emit misaligned columns — re-fit first"
            )

    def token_entries(self, tokens: Sequence[str], prefix: str = "") -> Iterator[tuple[int, float]]:
        """Yield every ``(hash bucket, sign)`` pair one token sequence emits."""
        normalized = [normalize(token) for token in tokens]
        low, high = self.ngram_range
        for n in range(low, high + 1):
            for gram in ngrams(normalized, n):
                key = prefix + " ".join(gram)
                value = _stable_hash(key)
                index = value % self.num_features
                sign = 1.0 if not self.signed or (value >> 63) & 1 == 0 else -1.0
                yield index, sign

    def transform_tokens(self, tokens: Sequence[str], prefix: str = "") -> np.ndarray:
        """Featurize a single token sequence into a dense vector."""
        vector = np.zeros(self.num_features)
        for index, sign in self.token_entries(tokens, prefix):
            vector[index] += sign
        return vector

    def transform(
        self, token_sequences: Iterable[Sequence[str]], sparse: bool = False
    ) -> Union[np.ndarray, CSRFeatureMatrix]:
        """Featurize many token sequences into a ``(len, num_features)`` matrix.

        With ``sparse=True`` only the touched hash buckets are stored (CSR);
        the values are identical to the dense output.
        """
        self.require_fitted()
        if sparse:
            rows: list[dict[int, float]] = []
            for tokens in token_sequences:
                entries: dict[int, float] = {}
                for index, sign in self.token_entries(tokens):
                    entries[index] = entries.get(index, 0.0) + sign
                rows.append({k: v for k, v in entries.items() if v != 0.0})
            return CSRFeatureMatrix.from_row_entries(rows, self.num_features)
        dense_rows = [self.transform_tokens(tokens) for tokens in token_sequences]
        if not dense_rows:
            return np.zeros((0, self.num_features))
        return np.vstack(dense_rows)


class RelationFeaturizer:
    """Featurizer for relation candidates (pairs of spans in a sentence).

    Produces a dense vector combining hashed n-grams of several scopes (the
    full sentence, the words between the spans, left/right windows, and the
    argument surface forms) plus a handful of structural features (argument
    order, token distance, span lengths).
    """

    def __init__(
        self,
        num_features: int = 2048,
        ngram_range: tuple[int, int] = (1, 2),
        window_size: int = 3,
    ) -> None:
        self.vectorizer = HashingVectorizer(num_features=num_features, ngram_range=ngram_range)
        self.window_size = window_size
        self.num_features = num_features
        self._fitted_config: Optional[tuple] = None

    @property
    def output_dim(self) -> int:
        """Dimensionality of the produced feature vectors."""
        return self.num_features + 5

    def _config(self) -> tuple:
        return (self.num_features, self.window_size, self.vectorizer._config())

    def fit(self, candidates: Optional[Iterable[Candidate]] = None) -> "RelationFeaturizer":
        """Freeze the feature space (hashing learns nothing from data).

        ``candidates`` is accepted for API symmetry and ignored — generators
        are not consumed.  Fitting snapshots the configuration that fixes
        ``output_dim`` and the meaning of every column; ``transform`` (and
        the engine featurization task) refuse to run before it.
        """
        self.vectorizer.fit()
        self._fitted_config = self._config()
        return self

    def require_fitted(self) -> None:
        """Fail loudly when transforming before fit / after config mutation."""
        if self._fitted_config is None:
            raise NotFittedError(
                "RelationFeaturizer.transform called before fit(); fit() freezes "
                "the feature-space configuration so chunks featurized by "
                "different workers stay column-aligned"
            )
        if self._fitted_config != self._config():
            raise ConfigurationError(
                f"RelationFeaturizer configuration changed after fit(): fitted "
                f"{self._fitted_config}, now {self._config()}; transforming "
                "would emit misaligned columns — re-fit first"
            )

    def _scopes(self, candidate: Candidate) -> tuple[tuple[float, Sequence[str], str], ...]:
        """The hashed token scopes with their weights (the btw scope counts double)."""
        return (
            (1.0, candidate.sentence.words, "sent:"),
            (2.0, candidate.words_between(), "btw:"),
            (1.0, candidate.window_left(self.window_size), "left:"),
            (1.0, candidate.window_right(self.window_size), "right:"),
            (1.0, candidate.span1.text.split(), "arg1:"),
            (1.0, candidate.span2.text.split(), "arg2:"),
        )

    def _structural(self, candidate: Candidate) -> tuple[float, ...]:
        return (
            1.0 if candidate.span1_precedes_span2() else -1.0,
            float(candidate.token_distance()),
            float(candidate.span1.length),
            float(candidate.span2.length),
            float(len(candidate.sentence.words)),
        )

    def transform_candidate(self, candidate: Candidate) -> np.ndarray:
        """Featurize one candidate."""
        hashed = np.zeros(self.num_features)
        for scale, tokens, prefix in self._scopes(candidate):
            hashed += scale * self.vectorizer.transform_tokens(tokens, prefix=prefix)
        return np.concatenate([hashed, np.array(self._structural(candidate))])

    def candidate_entries(self, candidate: Candidate) -> dict[int, float]:
        """One candidate's sparse feature row as a ``{column: value}`` mapping."""
        entries: dict[int, float] = {}
        for scale, tokens, prefix in self._scopes(candidate):
            for index, sign in self.vectorizer.token_entries(tokens, prefix):
                entries[index] = entries.get(index, 0.0) + scale * sign
        entries = {k: v for k, v in entries.items() if v != 0.0}
        for offset, value in enumerate(self._structural(candidate)):
            if value != 0.0:
                entries[self.num_features + offset] = value
        return entries

    def transform(
        self, candidates: Iterable[Candidate], sparse: bool = False
    ) -> Union[np.ndarray, CSRFeatureMatrix]:
        """Featurize a batch of candidates into a feature matrix.

        Accepts any sequence (or other iterable — generators are consumed
        once into a list) without copying sequences the caller already
        materialized.  With ``sparse=True`` the result is a
        :class:`~repro.discriminative.sparse_features.CSRFeatureMatrix`
        holding only the touched columns — the values are identical to the
        dense output, and the end models consume it without densifying.
        """
        self.require_fitted()
        if not isinstance(candidates, Sequence):
            candidates = list(candidates)
        if sparse:
            return CSRFeatureMatrix.from_row_entries(
                [self.candidate_entries(candidate) for candidate in candidates],
                self.output_dim,
            )
        if not candidates:
            return np.zeros((0, self.output_dim))
        return np.vstack([self.transform_candidate(candidate) for candidate in candidates])
