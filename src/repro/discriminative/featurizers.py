"""Feature extraction for the discriminative text models.

The discriminative model must be able to generalize beyond the labeling
functions: it sees *features* of candidates (word n-grams, window words,
distances) rather than the LF votes.  The paper uses a bi-LSTM over word
embeddings; the substitute here is a hashed sparse bag of n-grams over the
sentence plus relation-specific features (words between the argument spans,
window words, argument order and distance), which preserves the property the
paper relies on: features that co-occur with LF-covered candidates also
appear on uncovered candidates, letting the end model raise recall.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.context.candidates import Candidate
from repro.exceptions import ConfigurationError
from repro.utils.textutils import ngrams, normalize


def _stable_hash(token: str) -> int:
    """Deterministic 64-bit hash of a string (stable across processes)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashingVectorizer:
    """Hashed bag-of-n-grams featurizer over token sequences.

    Parameters
    ----------
    num_features:
        Dimensionality of the hashed feature space.
    ngram_range:
        Inclusive ``(min_n, max_n)`` n-gram sizes.
    signed:
        Use the hash parity as the feature sign (reduces collision bias).
    """

    def __init__(
        self,
        num_features: int = 2048,
        ngram_range: tuple[int, int] = (1, 2),
        signed: bool = True,
    ) -> None:
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        low, high = ngram_range
        if low < 1 or high < low:
            raise ConfigurationError(f"invalid ngram_range {ngram_range}")
        self.num_features = num_features
        self.ngram_range = ngram_range
        self.signed = signed

    def transform_tokens(self, tokens: Sequence[str], prefix: str = "") -> np.ndarray:
        """Featurize a single token sequence into a dense vector."""
        vector = np.zeros(self.num_features)
        normalized = [normalize(token) for token in tokens]
        low, high = self.ngram_range
        for n in range(low, high + 1):
            for gram in ngrams(normalized, n):
                key = prefix + " ".join(gram)
                value = _stable_hash(key)
                index = value % self.num_features
                sign = 1.0 if not self.signed or (value >> 63) & 1 == 0 else -1.0
                vector[index] += sign
        return vector

    def transform(self, token_sequences: Iterable[Sequence[str]]) -> np.ndarray:
        """Featurize many token sequences into a ``(len, num_features)`` matrix."""
        rows = [self.transform_tokens(tokens) for tokens in token_sequences]
        if not rows:
            return np.zeros((0, self.num_features))
        return np.vstack(rows)


class RelationFeaturizer:
    """Featurizer for relation candidates (pairs of spans in a sentence).

    Produces a dense vector combining hashed n-grams of several scopes (the
    full sentence, the words between the spans, left/right windows, and the
    argument surface forms) plus a handful of structural features (argument
    order, token distance, span lengths).
    """

    def __init__(
        self,
        num_features: int = 2048,
        ngram_range: tuple[int, int] = (1, 2),
        window_size: int = 3,
    ) -> None:
        self.vectorizer = HashingVectorizer(num_features=num_features, ngram_range=ngram_range)
        self.window_size = window_size
        self.num_features = num_features

    @property
    def output_dim(self) -> int:
        """Dimensionality of the produced feature vectors."""
        return self.num_features + 5

    def transform_candidate(self, candidate: Candidate) -> np.ndarray:
        """Featurize one candidate."""
        hashed = np.zeros(self.num_features)
        hashed += self.vectorizer.transform_tokens(candidate.sentence.words, prefix="sent:")
        hashed += 2.0 * self.vectorizer.transform_tokens(candidate.words_between(), prefix="btw:")
        hashed += self.vectorizer.transform_tokens(
            candidate.window_left(self.window_size), prefix="left:"
        )
        hashed += self.vectorizer.transform_tokens(
            candidate.window_right(self.window_size), prefix="right:"
        )
        hashed += self.vectorizer.transform_tokens(candidate.span1.text.split(), prefix="arg1:")
        hashed += self.vectorizer.transform_tokens(candidate.span2.text.split(), prefix="arg2:")
        structural = np.array(
            [
                1.0 if candidate.span1_precedes_span2() else -1.0,
                float(candidate.token_distance()),
                float(candidate.span1.length),
                float(candidate.span2.length),
                float(len(candidate.sentence.words)),
            ]
        )
        return np.concatenate([hashed, structural])

    def transform(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Featurize a list of candidates into a dense matrix."""
        if not candidates:
            return np.zeros((0, self.output_dim))
        return np.vstack([self.transform_candidate(candidate) for candidate in candidates])
