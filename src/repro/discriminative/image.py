"""Cross-modal "image" classifier over pre-extracted feature vectors.

In the radiology application the paper writes labeling functions over text
reports and trains a ResNet-50 on the paired X-ray images.  Offline we cannot
ship images or a pre-trained CNN, so the substitute keeps the cross-modal
structure intact: each candidate carries a synthetic image feature vector
(generated to be correlated with the latent abnormality but *not* visible to
the labeling functions, which only see the report text), and the end model is
an MLP over those features.  The division of labor — LFs on one modality,
the discriminative model on another — is exactly the paper's.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.context.candidates import Candidate
from repro.discriminative.base import NoiseAwareClassifier
from repro.discriminative.mlp import NoiseAwareMLP
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike

#: Metadata key under which candidates carry their image feature vector.
IMAGE_FEATURE_KEY = "image_features"


def extract_image_features(candidates: Sequence[Candidate]) -> np.ndarray:
    """Stack the image feature vectors stored in candidate metadata."""
    rows = []
    for candidate in candidates:
        features = candidate.metadata.get(IMAGE_FEATURE_KEY)
        if features is None:
            raise ConfigurationError(
                f"candidate {candidate.uid} has no {IMAGE_FEATURE_KEY!r} metadata; "
                "did you build the radiology dataset?"
            )
        rows.append(np.asarray(features, dtype=float))
    if not rows:
        return np.zeros((0, 0))
    return np.vstack(rows)


class ImageFeatureClassifier(NoiseAwareClassifier):
    """Noise-aware classifier over image feature vectors (ResNet substitute)."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (32,),
        epochs: int = 80,
        learning_rate: float = 0.01,
        seed: SeedLike = 0,
    ) -> None:
        self._mlp = NoiseAwareMLP(
            hidden_sizes=hidden_sizes,
            epochs=epochs,
            learning_rate=learning_rate,
            seed=seed,
        )

    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "ImageFeatureClassifier":
        """Train on image feature vectors and probabilistic labels."""
        self._mlp.fit(features, soft_labels, sample_weights)
        return self

    def fit_candidates(
        self, candidates: Sequence[Candidate], soft_labels: Sequence[float] | np.ndarray
    ) -> "ImageFeatureClassifier":
        """Convenience: extract image features from candidates, then fit."""
        return self.fit(extract_image_features(candidates), soft_labels)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class (abnormality) probabilities."""
        return self._mlp.predict_proba(features)

    def predict_proba_candidates(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """Positive-class probabilities computed from candidate metadata features."""
        return self.predict_proba(extract_image_features(candidates))
