"""Noise-aware logistic regression trained with Adam.

The workhorse end model for the relation-extraction tasks: a linear model
over :class:`repro.discriminative.featurizers.RelationFeaturizer` features,
trained by minimizing the expected logistic loss against the probabilistic
labels produced by the generative model.

Training runs through one minibatch core shared by two front doors:

* :meth:`NoiseAwareLogisticRegression.fit` — the materialized path.  By
  default each epoch visits a fresh random permutation, bit-identical to
  the historical behavior; with ``shuffle=False`` epochs visit contiguous
  minibatches in row order.
* :meth:`NoiseAwareLogisticRegression.fit_stream` — the out-of-core path:
  a re-iterable source of ``(feature block, soft-label block)`` pairs is
  re-chunked into exact ``batch_size`` minibatches in stream order, making
  the trained weights identical to ``fit(X, Ỹ, shuffle=False)`` on the
  concatenated blocks regardless of the producer's chunking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import cycle guard
    from repro.labeling.blockstore import EpochCheckpoint

import numpy as np

from repro.discriminative.adam import AdamOptimizer
from repro.discriminative.base import (
    BlockSource,
    NoiseAwareClassifier,
    as_soft_labels,
    iter_materialized_batches,
    iter_rebatched,
    peek_block_width,
    require_nonempty_batches,
    resolve_block_source,
)
from repro.discriminative.sparse_features import as_float_features
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.mathutils import sigmoid
from repro.utils.rng import SeedLike, ensure_rng


class NoiseAwareLogisticRegression(NoiseAwareClassifier):
    """ℓ2-regularized logistic regression on soft labels.

    Parameters
    ----------
    epochs:
        Passes over the training data.
    batch_size:
        Minibatch size.
    learning_rate:
        Adam learning rate.
    reg_strength:
        ℓ2 penalty on the weights (not the bias).
    class_balance:
        Optional re-weighting: when set, positive-leaning examples are scaled
        so the effective positive mass matches this fraction.  Useful for the
        heavily imbalanced tasks (e.g. Chem at ~4% positive).
    shuffle:
        ``None`` (default) = auto: :meth:`fit` draws a fresh row permutation
        each epoch (the historical behavior) while :meth:`fit_stream` runs
        in deterministic stream order (the only schedule a one-pass block
        stream can realize).  ``False`` forces stream order in both — what
        the pipeline uses so streaming and materialized runs are
        value-identical; an explicit ``True`` demands the shuffled schedule
        and makes :meth:`fit_stream` raise instead of silently ignoring it.
    seed:
        RNG seed for shuffling and initialization.
    """

    def __init__(
        self,
        epochs: int = 50,
        batch_size: int = 128,
        learning_rate: float = 0.01,
        reg_strength: float = 1e-4,
        class_balance: Optional[float] = None,
        shuffle: Optional[bool] = None,
        seed: SeedLike = 0,
    ) -> None:
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.reg_strength = reg_strength
        self.class_balance = class_balance
        self.shuffle = shuffle
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.loss_history: list[float] = []

    # ----------------------------------------------------------------- fitting
    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "NoiseAwareLogisticRegression":
        """Train on a feature matrix (dense, scipy sparse, or
        :class:`~repro.discriminative.sparse_features.CSRFeatureMatrix`) and
        probabilistic labels; sparse inputs train without densifying."""
        features = as_float_features(features)
        soft = as_soft_labels(soft_labels)
        if features.ndim != 2 or features.shape[0] != soft.shape[0]:
            raise ConfigurationError(
                f"features {features.shape} incompatible with labels of length {soft.shape[0]}"
            )
        num_features = features.shape[1]
        example_weights = self._example_weights(soft, sample_weights, float(soft.mean()))

        def epoch_batches(rng: np.random.Generator):
            return iter_materialized_batches(
                rng, self.shuffle is not False, self.batch_size, features, soft, example_weights
            )

        return self._train_minibatches(num_features, epoch_batches)

    def fit_stream(
        self,
        blocks: BlockSource,
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareLogisticRegression":
        """Train from a re-iterable stream of ``(features, soft labels)`` blocks.

        Each epoch is one pass over the source in stream order; incoming
        blocks are re-chunked into exact ``batch_size`` minibatches, so the
        result equals ``fit(concatenated blocks, shuffle=False)`` for every
        producer chunking.  With ``class_balance`` set, one extra pass
        computes the global positive mass first (the same statistic the
        materialized path reads off the full label vector).

        ``checkpoint`` (a :class:`repro.labeling.blockstore.EpochCheckpoint`)
        makes the fit resumable: training state is saved durably after every
        epoch, and a restarted fit replays only the remaining epochs with
        bit-identical updates (stream order consumes no RNG after the
        initialization draw, which a resumed fit repeats before restoring
        the snapshot).
        """
        if self.shuffle:
            raise ConfigurationError(
                "shuffle=True cannot be honored by fit_stream (a one-pass "
                "block stream has no random row access); construct the model "
                "with shuffle=None or shuffle=False for streaming training"
            )
        source = resolve_block_source(blocks)
        positive_mass: Optional[float] = None
        if self.class_balance is not None:
            # Fold the width peek into the mass pass: a callable source may
            # re-featurize per iteration, so don't spend a pass on each.
            num_features: Optional[int] = None
            total, count = 0.0, 0
            for block_features, block_labels in source():
                if num_features is None:
                    num_features = int(block_features.shape[1])
                block_soft = as_soft_labels(block_labels)
                total += float(block_soft.sum())
                count += block_soft.size
            if num_features is None:
                raise ConfigurationError("streaming fit received an empty block stream")
            positive_mass = total / count if count else 0.0
        else:
            num_features = peek_block_width(source)

        def epoch_batches(rng: np.random.Generator):
            def canonical_blocks():
                for block_features, block_labels in source():
                    yield as_float_features(block_features), as_soft_labels(block_labels)

            for batch_features, batch_soft in iter_rebatched(canonical_blocks(), self.batch_size):
                yield (
                    batch_features,
                    batch_soft,
                    self._example_weights(batch_soft, None, positive_mass),
                )

        return self._train_minibatches(num_features, epoch_batches, checkpoint=checkpoint)

    def _train_minibatches(
        self,
        num_features: int,
        epoch_batches: Callable[[np.random.Generator], Iterable[tuple]],
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareLogisticRegression":
        """The shared Adam loop: one call per fit, one pass per epoch."""
        rng = ensure_rng(self.seed)
        # Always draw the initialization so the RNG stream matches a fresh
        # fit; a checkpoint then overwrites everything the draw produced.
        weights = rng.normal(scale=0.01, size=num_features)
        bias = 0.0
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        self.loss_history = []
        start_epoch = 0
        state = checkpoint.load() if checkpoint is not None else None
        if state is not None:
            packed = np.asarray(state["packed"], dtype=float)
            weights, bias = packed[:-1].copy(), float(packed[-1])
            optimizer.set_state(state["adam"])
            self.loss_history = list(state["loss_history"])
            start_epoch = min(int(state["epoch"]), self.epochs)

        for epoch in range(start_epoch, self.epochs):
            epoch_loss = 0.0
            for batch_features, batch_soft, batch_weights in require_nonempty_batches(
                epoch_batches(rng)
            ):
                scores = batch_features @ weights + bias
                probs = sigmoid(scores)
                errors = (probs - batch_soft) * batch_weights
                grad_weights = (
                    batch_features.T @ errors / batch_soft.shape[0]
                    + self.reg_strength * weights
                )
                grad_bias = float(errors.mean())
                packed = np.concatenate([weights, [bias]])
                packed_grad = np.concatenate([grad_weights, [grad_bias]])
                packed = optimizer.step(packed, packed_grad)
                weights, bias = packed[:-1], float(packed[-1])
                epoch_loss += self._batch_loss(probs, batch_soft, batch_weights)
            self.loss_history.append(epoch_loss)
            if checkpoint is not None:
                checkpoint.save(
                    {
                        "epoch": epoch + 1,
                        "packed": np.concatenate([weights, [bias]]),
                        "adam": optimizer.get_state(),
                        "loss_history": list(self.loss_history),
                    }
                )

        self.weights = weights
        self.bias = bias
        return self

    def _example_weights(
        self,
        soft: np.ndarray,
        sample_weights: Optional[np.ndarray],
        positive_mass: Optional[float],
    ) -> np.ndarray:
        weights = (
            np.ones(soft.shape[0])
            if sample_weights is None
            else np.asarray(sample_weights, dtype=float)
        )
        if weights.shape != soft.shape:
            raise ConfigurationError(
                f"sample_weights shape {weights.shape} does not match labels {soft.shape}"
            )
        if self.class_balance is not None and positive_mass is not None:
            if 0.0 < positive_mass < 1.0:
                target = self.class_balance
                positive_scale = target / positive_mass
                negative_scale = (1.0 - target) / (1.0 - positive_mass)
                weights = weights * (
                    soft * positive_scale + (1.0 - soft) * negative_scale
                )
        return weights

    @staticmethod
    def _batch_loss(probs: np.ndarray, soft: np.ndarray, weights: np.ndarray) -> float:
        clipped = np.clip(probs, 1e-9, 1 - 1e-9)
        losses = -(soft * np.log(clipped) + (1 - soft) * np.log(1 - clipped))
        return float((losses * weights).sum())

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for a feature matrix."""
        if self.weights is None:
            raise NotFittedError("NoiseAwareLogisticRegression must be fit before predicting")
        features = as_float_features(features)
        return np.asarray(sigmoid(features @ self.weights + self.bias))
