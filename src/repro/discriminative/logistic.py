"""Noise-aware logistic regression trained with Adam.

The workhorse end model for the relation-extraction tasks: a linear model
over :class:`repro.discriminative.featurizers.RelationFeaturizer` features,
trained by minimizing the expected logistic loss against the probabilistic
labels produced by the generative model.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.discriminative.adam import AdamOptimizer
from repro.discriminative.base import NoiseAwareClassifier, as_soft_labels
from repro.discriminative.sparse_features import as_float_features
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.mathutils import sigmoid
from repro.utils.rng import SeedLike, ensure_rng


class NoiseAwareLogisticRegression(NoiseAwareClassifier):
    """ℓ2-regularized logistic regression on soft labels.

    Parameters
    ----------
    epochs:
        Passes over the training data.
    batch_size:
        Minibatch size.
    learning_rate:
        Adam learning rate.
    reg_strength:
        ℓ2 penalty on the weights (not the bias).
    class_balance:
        Optional re-weighting: when set, positive-leaning examples are scaled
        so the effective positive mass matches this fraction.  Useful for the
        heavily imbalanced tasks (e.g. Chem at ~4% positive).
    seed:
        RNG seed for shuffling and initialization.
    """

    def __init__(
        self,
        epochs: int = 50,
        batch_size: int = 128,
        learning_rate: float = 0.01,
        reg_strength: float = 1e-4,
        class_balance: Optional[float] = None,
        seed: SeedLike = 0,
    ) -> None:
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.reg_strength = reg_strength
        self.class_balance = class_balance
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.loss_history: list[float] = []

    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "NoiseAwareLogisticRegression":
        """Train on a feature matrix (dense, scipy sparse, or
        :class:`~repro.discriminative.sparse_features.CSRFeatureMatrix`) and
        probabilistic labels; sparse inputs train without densifying."""
        features = as_float_features(features)
        soft = as_soft_labels(soft_labels)
        if features.ndim != 2 or features.shape[0] != soft.shape[0]:
            raise ConfigurationError(
                f"features {features.shape} incompatible with labels of length {soft.shape[0]}"
            )
        rng = ensure_rng(self.seed)
        num_examples, num_features = features.shape
        weights = rng.normal(scale=0.01, size=num_features)
        bias = 0.0
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        example_weights = self._example_weights(soft, sample_weights)
        batch_size = min(self.batch_size, num_examples)
        self.loss_history = []

        for _ in range(self.epochs):
            order = rng.permutation(num_examples)
            epoch_loss = 0.0
            for start in range(0, num_examples, batch_size):
                rows = order[start : start + batch_size]
                batch_features = features[rows]
                batch_soft = soft[rows]
                batch_weights = example_weights[rows]
                scores = batch_features @ weights + bias
                probs = sigmoid(scores)
                errors = (probs - batch_soft) * batch_weights
                grad_weights = (
                    batch_features.T @ errors / rows.size + self.reg_strength * weights
                )
                grad_bias = float(errors.mean())
                packed = np.concatenate([weights, [bias]])
                packed_grad = np.concatenate([grad_weights, [grad_bias]])
                packed = optimizer.step(packed, packed_grad)
                weights, bias = packed[:-1], float(packed[-1])
                epoch_loss += self._batch_loss(probs, batch_soft, batch_weights)
            self.loss_history.append(epoch_loss)

        self.weights = weights
        self.bias = bias
        return self

    def _example_weights(
        self, soft: np.ndarray, sample_weights: Optional[np.ndarray]
    ) -> np.ndarray:
        weights = (
            np.ones(soft.shape[0])
            if sample_weights is None
            else np.asarray(sample_weights, dtype=float)
        )
        if weights.shape != soft.shape:
            raise ConfigurationError(
                f"sample_weights shape {weights.shape} does not match labels {soft.shape}"
            )
        if self.class_balance is not None:
            positive_mass = float(soft.mean())
            if 0.0 < positive_mass < 1.0:
                target = self.class_balance
                positive_scale = target / positive_mass
                negative_scale = (1.0 - target) / (1.0 - positive_mass)
                weights = weights * (
                    soft * positive_scale + (1.0 - soft) * negative_scale
                )
        return weights

    @staticmethod
    def _batch_loss(probs: np.ndarray, soft: np.ndarray, weights: np.ndarray) -> float:
        clipped = np.clip(probs, 1e-9, 1 - 1e-9)
        losses = -(soft * np.log(clipped) + (1 - soft) * np.log(1 - clipped))
        return float((losses * weights).sum())

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for a feature matrix."""
        if self.weights is None:
            raise NotFittedError("NoiseAwareLogisticRegression must be fit before predicting")
        features = as_float_features(features)
        return np.asarray(sigmoid(features @ self.weights + self.bias))
