"""A small noise-aware multi-layer perceptron.

Serves as the "more expressive end model" option (the paper's LSTM / ResNet
role): one or two hidden layers of ReLU units trained with Adam on the
noise-aware cross-entropy.  Implemented directly in numpy with manual
backpropagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import cycle guard
    from repro.labeling.blockstore import EpochCheckpoint

import numpy as np

from repro.discriminative.adam import AdamOptimizer
from repro.discriminative.base import (
    BlockSource,
    NoiseAwareClassifier,
    as_soft_labels,
    iter_materialized_batches,
    iter_rebatched,
    peek_block_width,
    require_nonempty_batches,
    resolve_block_source,
)
from repro.discriminative.sparse_features import as_dense_features
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.mathutils import sigmoid
from repro.utils.rng import SeedLike, ensure_rng


class NoiseAwareMLP(NoiseAwareClassifier):
    """Feed-forward ReLU network with a sigmoid output, trained on soft labels.

    Parameters
    ----------
    hidden_sizes:
        Sizes of the hidden layers, e.g. ``(64,)`` or ``(128, 32)``.
    epochs, batch_size, learning_rate, reg_strength:
        Optimization hyperparameters (Adam + ℓ2).
    dropout:
        Input dropout probability applied during training only.
    shuffle:
        ``None`` (default) = auto: shuffled :meth:`fit`, stream-order
        :meth:`fit_stream`.  ``False`` forces stream order in both; an
        explicit ``True`` makes :meth:`fit_stream` raise instead of
        silently ignoring the request.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64,),
        epochs: int = 60,
        batch_size: int = 128,
        learning_rate: float = 0.005,
        reg_strength: float = 1e-4,
        dropout: float = 0.0,
        shuffle: Optional[bool] = None,
        seed: SeedLike = 0,
    ) -> None:
        if not hidden_sizes or any(size <= 0 for size in hidden_sizes):
            raise ConfigurationError(f"hidden_sizes must be positive, got {hidden_sizes}")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError(f"dropout must lie in [0, 1), got {dropout}")
        self.hidden_sizes = tuple(int(size) for size in hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.reg_strength = reg_strength
        self.dropout = dropout
        self.shuffle = shuffle
        self.seed = seed
        self._layers: Optional[list[tuple[np.ndarray, np.ndarray]]] = None

    # --------------------------------------------------------------------- fit
    def fit(
        self,
        features: np.ndarray,
        soft_labels: Sequence[float] | np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> "NoiseAwareMLP":
        """Train the network on features and probabilistic labels."""
        features = as_dense_features(features)
        soft = as_soft_labels(soft_labels)
        if features.ndim != 2 or features.shape[0] != soft.shape[0]:
            raise ConfigurationError(
                f"features {features.shape} incompatible with labels of length {soft.shape[0]}"
            )
        weights = (
            np.ones(soft.shape[0])
            if sample_weights is None
            else np.asarray(sample_weights, dtype=float)
        )
        def epoch_batches(rng: np.random.Generator):
            return iter_materialized_batches(
                rng, self.shuffle is not False, self.batch_size, features, soft, weights
            )

        return self._train_minibatches(features.shape[1], epoch_batches)

    def fit_stream(
        self,
        blocks: BlockSource,
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareMLP":
        """Train from a re-iterable stream of ``(features, soft labels)`` blocks.

        Only the current minibatch is densified; the result equals
        ``fit(concatenated blocks, shuffle=False)`` for every producer
        chunking.  ``checkpoint`` makes the fit resumable with bit-identical
        updates, but only with ``dropout=0.0``: dropout draws from the RNG
        every minibatch, and a resumed fit cannot replay draws that died
        with the original process.
        """
        if checkpoint is not None and self.dropout > 0.0:
            raise ConfigurationError(
                "epoch checkpointing requires dropout=0.0: dropout consumes "
                "RNG state per minibatch, so a resumed fit cannot reproduce "
                "the interrupted run's draws"
            )
        if self.shuffle:
            raise ConfigurationError(
                "shuffle=True cannot be honored by fit_stream (a one-pass "
                "block stream has no random row access); construct the model "
                "with shuffle=None or shuffle=False for streaming training"
            )
        source = resolve_block_source(blocks)
        num_features = peek_block_width(source)

        def epoch_batches(rng: np.random.Generator):
            def canonical_blocks():
                for block_features, block_labels in source():
                    yield block_features, as_soft_labels(block_labels)

            for batch_features, batch_soft in iter_rebatched(canonical_blocks(), self.batch_size):
                yield (
                    as_dense_features(batch_features),
                    batch_soft,
                    np.ones(batch_soft.shape[0]),
                )

        return self._train_minibatches(num_features, epoch_batches, checkpoint=checkpoint)

    def _train_minibatches(
        self,
        num_features: int,
        epoch_batches,
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareMLP":
        rng = ensure_rng(self.seed)
        layer_sizes = [num_features, *self.hidden_sizes, 1]
        # The initialization draws always happen (identical RNG stream to a
        # fresh fit); a checkpoint then overwrites the drawn state.
        layers = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            layers.append((rng.normal(scale=scale, size=(fan_in, fan_out)), np.zeros(fan_out)))
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        start_epoch = 0
        state = checkpoint.load() if checkpoint is not None else None
        if state is not None:
            layers = self._unpack(np.asarray(state["packed"], dtype=float).copy(), layer_sizes)
            optimizer.set_state(state["adam"])
            start_epoch = min(int(state["epoch"]), self.epochs)

        for epoch in range(start_epoch, self.epochs):
            for batch, batch_soft, batch_weights in require_nonempty_batches(
                epoch_batches(rng)
            ):
                if self.dropout > 0.0:
                    mask = rng.random(batch.shape) >= self.dropout
                    batch = batch * mask / (1.0 - self.dropout)
                gradients = self._gradients(layers, batch, batch_soft, batch_weights)
                packed = self._pack(layers)
                packed_grad = self._pack(gradients)
                packed = optimizer.step(packed, packed_grad)
                layers = self._unpack(packed, layer_sizes)
            if checkpoint is not None:
                checkpoint.save(
                    {
                        "epoch": epoch + 1,
                        "packed": self._pack(layers),
                        "adam": optimizer.get_state(),
                    }
                )

        self._layers = layers
        return self

    def _gradients(
        self,
        layers: list[tuple[np.ndarray, np.ndarray]],
        batch: np.ndarray,
        soft: np.ndarray,
        weights: np.ndarray,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        activations = [batch]
        pre_activations = []
        hidden = batch
        for index, (weight, bias) in enumerate(layers):
            linear = hidden @ weight + bias
            pre_activations.append(linear)
            hidden = linear if index == len(layers) - 1 else np.maximum(linear, 0.0)
            activations.append(hidden)
        probs = np.asarray(sigmoid(pre_activations[-1][:, 0]))
        delta = ((probs - soft) * weights / batch.shape[0])[:, None]
        gradients: list[tuple[np.ndarray, np.ndarray]]
        gradients = [None] * len(layers)  # type: ignore[list-item]
        for index in range(len(layers) - 1, -1, -1):
            weight, _ = layers[index]
            grad_weight = activations[index].T @ delta + self.reg_strength * weight
            grad_bias = delta.sum(axis=0)
            gradients[index] = (grad_weight, grad_bias)
            if index > 0:
                delta = (delta @ weight.T) * (pre_activations[index - 1] > 0.0)
        return gradients

    @staticmethod
    def _pack(layers: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        return np.concatenate(
            [np.concatenate([weight.ravel(), bias.ravel()]) for weight, bias in layers]
        )

    @staticmethod
    def _unpack(packed: np.ndarray, layer_sizes: list[int]) -> list[tuple[np.ndarray, np.ndarray]]:
        layers = []
        offset = 0
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            weight_size = fan_in * fan_out
            weight = packed[offset : offset + weight_size].reshape(fan_in, fan_out)
            offset += weight_size
            bias = packed[offset : offset + fan_out]
            offset += fan_out
            layers.append((weight, bias))
        return layers

    # --------------------------------------------------------------- inference
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for a feature matrix."""
        if self._layers is None:
            raise NotFittedError("NoiseAwareMLP must be fit before predicting")
        hidden = as_dense_features(features)
        for index, (weight, bias) in enumerate(self._layers):
            linear = hidden @ weight + bias
            hidden = linear if index == len(self._layers) - 1 else np.maximum(linear, 0.0)
        return np.asarray(sigmoid(hidden[:, 0]))
