"""Noise-aware multi-class softmax regression.

Used by the Crowd sentiment task (five classes): the generative label model
produces a full posterior over classes per tweet, and this model minimizes
the expected cross-entropy against that posterior — the multi-class analogue
of the binary noise-aware loss.

Like the binary models, training runs through one minibatch core with two
front doors: the materialized :meth:`NoiseAwareSoftmaxRegression.fit`
(shuffled by default, contiguous row order with ``shuffle=False``) and the
out-of-core :meth:`NoiseAwareSoftmaxRegression.fit_stream`, which re-chunks
a re-iterable ``(feature block, distribution block)`` source into exact
``batch_size`` minibatches — only one minibatch is ever densified, so CSR
block streams train without a dense ``(m, d)`` matrix existing at any point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - annotation-only import cycle guard
    from repro.labeling.blockstore import EpochCheckpoint

import numpy as np

from repro.discriminative.adam import AdamOptimizer
from repro.discriminative.base import (
    BlockSource,
    iter_materialized_batches,
    iter_rebatched,
    peek_block_width,
    require_nonempty_batches,
    resolve_block_source,
)
from repro.discriminative.sparse_features import as_dense_features
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.mathutils import softmax
from repro.utils.rng import SeedLike, ensure_rng


class NoiseAwareSoftmaxRegression:
    """Multi-class linear classifier trained on soft label distributions.

    Parameters
    ----------
    num_classes:
        Number of classes; predictions are in ``1..num_classes``.
    epochs, batch_size, learning_rate, reg_strength:
        Optimization hyperparameters (Adam + ℓ2).
    shuffle:
        ``None`` (default) = auto: shuffled :meth:`fit`, stream-order
        :meth:`fit_stream`.  ``False`` forces stream order in both; an
        explicit ``True`` makes :meth:`fit_stream` raise instead of
        silently ignoring the request.
    """

    def __init__(
        self,
        num_classes: int,
        epochs: int = 60,
        batch_size: int = 64,
        learning_rate: float = 0.05,
        reg_strength: float = 1e-4,
        shuffle: Optional[bool] = None,
        seed: SeedLike = 0,
    ) -> None:
        if num_classes < 2:
            raise ConfigurationError(f"num_classes must be >= 2, got {num_classes}")
        self.num_classes = num_classes
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.reg_strength = reg_strength
        self.shuffle = shuffle
        self.seed = seed
        self.weights: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- fitting
    def fit(
        self,
        features: np.ndarray,
        soft_labels: np.ndarray,
    ) -> "NoiseAwareSoftmaxRegression":
        """Train on a feature matrix and per-class probability targets.

        ``soft_labels`` may be a ``(m, num_classes)`` distribution matrix or a
        vector of hard class labels in ``1..num_classes`` (converted to
        one-hot distributions).
        """
        features = as_dense_features(features)
        targets = self._as_distributions(soft_labels, features.shape[0])

        def epoch_batches(rng: np.random.Generator):
            return iter_materialized_batches(
                rng, self.shuffle is not False, self.batch_size, features, targets
            )

        return self._train_minibatches(features.shape[1], epoch_batches)

    def fit_stream(
        self,
        blocks: BlockSource,
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareSoftmaxRegression":
        """Train from a re-iterable stream of ``(features, targets)`` blocks.

        Targets per block follow the same conventions as :meth:`fit` (a
        ``(b, num_classes)`` distribution block or hard labels in
        ``1..num_classes``).  Only the current minibatch is densified, so a
        CSR block stream trains without any ``(m, d)`` dense matrix.
        ``checkpoint`` makes the fit resumable with bit-identical updates
        (see :class:`repro.labeling.blockstore.EpochCheckpoint`).
        """
        if self.shuffle:
            raise ConfigurationError(
                "shuffle=True cannot be honored by fit_stream (a one-pass "
                "block stream has no random row access); construct the model "
                "with shuffle=None or shuffle=False for streaming training"
            )
        source = resolve_block_source(blocks)
        num_features = peek_block_width(source)

        def epoch_batches(rng: np.random.Generator):
            def canonical_blocks():
                for block_features, block_targets in source():
                    yield (
                        block_features,
                        self._as_distributions(block_targets, int(block_features.shape[0])),
                    )

            batches = iter_rebatched(canonical_blocks(), self.batch_size)
            for batch_features, batch_targets in batches:
                yield as_dense_features(batch_features), batch_targets

        return self._train_minibatches(num_features, epoch_batches, checkpoint=checkpoint)

    def _train_minibatches(
        self,
        num_features: int,
        epoch_batches: Callable[[np.random.Generator], Iterable[tuple]],
        checkpoint: Optional["EpochCheckpoint"] = None,
    ) -> "NoiseAwareSoftmaxRegression":
        rng = ensure_rng(self.seed)
        # The initialization draw always happens (identical RNG stream to a
        # fresh fit); a checkpoint then overwrites the drawn state.
        weights = rng.normal(scale=0.01, size=(num_features, self.num_classes))
        bias = np.zeros(self.num_classes)
        optimizer = AdamOptimizer(learning_rate=self.learning_rate)
        start_epoch = 0
        state = checkpoint.load() if checkpoint is not None else None
        if state is not None:
            packed = np.asarray(state["packed"], dtype=float)
            weights = packed[: num_features * self.num_classes].reshape(
                num_features, self.num_classes
            ).copy()
            bias = packed[num_features * self.num_classes :].copy()
            optimizer.set_state(state["adam"])
            start_epoch = min(int(state["epoch"]), self.epochs)

        for epoch in range(start_epoch, self.epochs):
            for batch, batch_targets in require_nonempty_batches(epoch_batches(rng)):
                probs = softmax(batch @ weights + bias, axis=1)
                errors = (probs - batch_targets) / batch.shape[0]
                grad_weights = batch.T @ errors + self.reg_strength * weights
                grad_bias = errors.sum(axis=0)
                packed = np.concatenate([weights.ravel(), bias])
                packed_grad = np.concatenate([grad_weights.ravel(), grad_bias])
                packed = optimizer.step(packed, packed_grad)
                weights = packed[: num_features * self.num_classes].reshape(
                    num_features, self.num_classes
                )
                bias = packed[num_features * self.num_classes :]
            if checkpoint is not None:
                checkpoint.save(
                    {
                        "epoch": epoch + 1,
                        "packed": np.concatenate([weights.ravel(), bias]),
                        "adam": optimizer.get_state(),
                    }
                )

        self.weights = weights
        self.bias = bias
        return self

    def _as_distributions(self, soft_labels: np.ndarray, num_examples: int) -> np.ndarray:
        targets = np.asarray(soft_labels, dtype=float)
        if targets.ndim == 1:
            if targets.shape[0] != num_examples:
                raise ConfigurationError(
                    f"got {targets.shape[0]} labels for {num_examples} examples"
                )
            if targets.size == 0:
                return np.zeros((0, self.num_classes))
            classes = targets.astype(int)
            if classes.min() < 1 or classes.max() > self.num_classes:
                raise ConfigurationError(
                    f"hard labels must lie in 1..{self.num_classes}, got range "
                    f"[{classes.min()}, {classes.max()}]"
                )
            one_hot = np.zeros((num_examples, self.num_classes))
            one_hot[np.arange(num_examples), classes - 1] = 1.0
            return one_hot
        if targets.shape != (num_examples, self.num_classes):
            raise ConfigurationError(
                f"soft labels must have shape ({num_examples}, {self.num_classes}), got "
                f"{targets.shape}"
            )
        row_sums = targets.sum(axis=1, keepdims=True)
        return targets / np.clip(row_sums, 1e-12, None)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities for a feature matrix."""
        if self.weights is None or self.bias is None:
            raise NotFittedError("NoiseAwareSoftmaxRegression must be fit before predicting")
        features = as_dense_features(features)
        return softmax(features @ self.weights + self.bias, axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class predictions in ``1..num_classes``."""
        return self.predict_proba(features).argmax(axis=1) + 1

    def score(self, features: np.ndarray, gold_classes: Sequence[int] | np.ndarray) -> float:
        """Accuracy against hard gold class labels."""
        gold = np.asarray(gold_classes)
        return float((self.predict(features) == gold).mean())
