"""Sparse (CSR) storage of discriminative feature matrices.

Hashed bag-of-n-gram features are naturally sparse — a candidate touches a
few hundred of the ``num_features`` hash buckets — yet the featurizers
historically materialized dense ``(m, num_features)`` float arrays.
:class:`CSRFeatureMatrix` is the float analogue of
:class:`repro.labeling.sparse.SparseLabelMatrix`: canonical numpy
``indptr`` / ``indices`` / ``data`` arrays, scipy-routed linear algebra when
:mod:`scipy.sparse` is importable, and pure-numpy fallbacks otherwise (the
same ``FORCE_NUMPY_FALLBACK`` switch covers both modules).

The class implements exactly the operations the noise-aware end models use —
row selection (``X[rows]``), matrix-vector products (``X @ w``), and
transposed products (``X.T @ v``) — so
:class:`repro.discriminative.logistic.NoiseAwareLogisticRegression` trains on
sparse features without densifying anything beyond one minibatch's scores.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.labeling.sparse import HAVE_SCIPY, _ranges_gather, _scipy_sparse, _use_scipy


def sorted_entry_arrays(entries: Mapping[int, float]) -> tuple[np.ndarray, np.ndarray]:
    """One sparse row's ``{column: value}`` mapping as sorted parallel arrays.

    The canonical row extraction shared by :meth:`CSRFeatureMatrix.
    from_row_entries` and the engine's per-candidate featurization task —
    one sort, one pass, columns strictly ascending.
    """
    items = sorted(entries.items())
    cols = np.fromiter((column for column, _ in items), dtype=np.int64, count=len(items))
    values = np.fromiter((value for _, value in items), dtype=np.float64, count=len(items))
    return cols, values


class CSRFeatureMatrix:
    """CSR storage of a float feature matrix.

    Parameters
    ----------
    indptr, indices, data:
        Standard CSR arrays; column ids strictly increasing within each row.
    shape:
        ``(num_examples, num_features)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ConfigurationError(
                f"indptr must have length {m + 1} for {m} rows, got {self.indptr.shape}"
            )
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise ConfigurationError(
                f"indices/data must have length {nnz}, got {self.indices.shape}/{self.data.shape}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n):
            raise ConfigurationError(f"column indices out of range for {n} features")

    # ------------------------------------------------------------- construction
    @classmethod
    def from_row_entries(
        cls, rows: Sequence[Mapping[int, float]], num_features: int
    ) -> "CSRFeatureMatrix":
        """Build from one ``{column: value}`` mapping per example."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        indices_blocks: list[np.ndarray] = []
        data_blocks: list[np.ndarray] = []
        for i, entries in enumerate(rows):
            cols, values = sorted_entry_arrays(entries)
            indices_blocks.append(cols)
            data_blocks.append(values)
            indptr[i + 1] = indptr[i] + cols.size
        empty_i, empty_d = np.empty(0, np.int64), np.empty(0, np.float64)
        return cls(
            indptr,
            np.concatenate(indices_blocks) if indices_blocks else empty_i,
            np.concatenate(data_blocks) if data_blocks else empty_d,
            (len(rows), num_features),
        )

    @classmethod
    def from_triples(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRFeatureMatrix":
        """Build from row-major ``(row, col, value)`` triples.

        ``rows`` must be non-decreasing (the engine accumulator's merge
        order); columns are assumed ascending within each row, exactly what
        :func:`repro.labeling.engine.tasks.featurize_chunk` emits.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and np.any(np.diff(rows) < 0):
            raise ConfigurationError("triple rows must be non-decreasing (row-major order)")
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=shape[0]), out=indptr[1:])
        return cls(
            indptr, np.asarray(cols, dtype=np.int64), np.asarray(values, dtype=np.float64), shape
        )

    @classmethod
    def vstack(cls, blocks: Sequence["CSRFeatureMatrix"]) -> "CSRFeatureMatrix":
        """Stack row blocks vertically (all blocks must share the width)."""
        if not blocks:
            raise ConfigurationError("vstack requires at least one block")
        width = blocks[0].shape[1]
        for block in blocks:
            if block.shape[1] != width:
                raise ConfigurationError(
                    f"cannot vstack feature blocks of widths {width} and {block.shape[1]}"
                )
        num_rows = sum(block.shape[0] for block in blocks)
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        offset_row, offset_nnz = 0, 0
        for block in blocks:
            m = block.shape[0]
            indptr[offset_row + 1 : offset_row + m + 1] = block.indptr[1:] + offset_nnz
            offset_row += m
            offset_nnz += block.nnz
        return cls(
            indptr,
            np.concatenate([block.indices for block in blocks]),
            np.concatenate([block.data for block in blocks]),
            (num_rows, width),
        )

    @classmethod
    def from_dense(cls, values: np.ndarray) -> "CSRFeatureMatrix":
        """Compress a dense float matrix (zeros dropped)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ConfigurationError(f"feature matrix must be 2-D, got shape {values.shape}")
        rows, cols = np.nonzero(values != 0.0)
        indptr = np.zeros(values.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=values.shape[0]), out=indptr[1:])
        return cls(indptr, cols.astype(np.int64), values[rows, cols], values.shape)

    def to_scipy(self):
        """View as ``scipy.sparse.csr_matrix`` (shares the underlying arrays)."""
        if not HAVE_SCIPY:  # pragma: no cover - only reachable without scipy
            raise ConfigurationError("scipy is not available in this environment")
        return _scipy_sparse.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def toarray(self) -> np.ndarray:
        """Materialize the dense ``(m, num_features)`` float matrix."""
        dense = np.zeros(self.shape)
        dense[self._entry_rows(), self.indices] = self.data
        return dense

    # ------------------------------------------------------------------- basics
    ndim = 2

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.indptr[-1])

    def _entry_rows(self) -> np.ndarray:
        return np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))

    def row_range(self, start: int, stop: int) -> "CSRFeatureMatrix":
        """Contiguous row slice ``[start, stop)`` — pure array slicing, O(rows).

        The minibatch re-batcher's workhorse: no index gather, and the
        sliced block's entries are the parent's entries verbatim.
        """
        m = self.shape[0]
        if not (0 <= start <= stop <= m):
            raise ConfigurationError(f"row range [{start}, {stop}) invalid for {m} rows")
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        return CSRFeatureMatrix(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.data[lo:hi],
            (stop - start, self.shape[1]),
        )

    # ------------------------------------------------------------------ algebra
    def __getitem__(self, row_indices) -> "CSRFeatureMatrix":
        """Restrict (and reorder) to the given rows (indices or boolean mask)."""
        row_indices = np.asarray(row_indices)
        if row_indices.dtype == bool:
            row_indices = np.flatnonzero(row_indices)
        else:
            row_indices = row_indices.astype(np.int64)
        if _use_scipy():
            selected = self.to_scipy()[row_indices]
            return CSRFeatureMatrix(
                selected.indptr, selected.indices, selected.data, selected.shape
            )
        starts = self.indptr[row_indices]
        counts = self.indptr[row_indices + 1] - starts
        gather = _ranges_gather(starts, counts)
        indptr = np.zeros(row_indices.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRFeatureMatrix(
            indptr, self.indices[gather], self.data[gather], (row_indices.size, self.shape[1])
        )

    def __matmul__(self, weights: np.ndarray) -> np.ndarray:
        """``X @ w`` — per-example weighted feature sums."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.shape[1],):
            raise ConfigurationError(
                f"expected {self.shape[1]} weights, got shape {weights.shape}"
            )
        if _use_scipy():
            return self.to_scipy() @ weights
        return np.bincount(
            self._entry_rows(), weights=self.data * weights[self.indices], minlength=self.shape[0]
        )

    def rmatvec(self, values: np.ndarray) -> np.ndarray:
        """``X.T @ v`` — per-feature sums weighted by per-example values."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.shape[0],):
            raise ConfigurationError(
                f"expected {self.shape[0]} values, got shape {values.shape}"
            )
        if _use_scipy():
            return self.to_scipy().T @ values
        return np.bincount(
            self.indices, weights=self.data * values[self._entry_rows()], minlength=self.shape[1]
        )

    @property
    def T(self) -> "_TransposedFeatureMatrix":
        """Transposed view supporting ``X.T @ v`` (no data movement)."""
        return _TransposedFeatureMatrix(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        m, n = self.shape
        density = self.nnz / (m * n) if m and n else 0.0
        return f"CSRFeatureMatrix(shape={self.shape}, nnz={self.nnz}, density={density:.4f})"


class _TransposedFeatureMatrix:
    """Lightweight ``X.T`` wrapper: only ``@ vector`` is supported."""

    def __init__(self, base: CSRFeatureMatrix) -> None:
        self._base = base

    @property
    def shape(self) -> tuple[int, int]:
        return (self._base.shape[1], self._base.shape[0])

    def __matmul__(self, values: np.ndarray) -> np.ndarray:
        return self._base.rmatvec(values)


FeatureMatrixLike = Union[np.ndarray, CSRFeatureMatrix]


def as_float_features(features) -> FeatureMatrixLike:
    """Normalize a feature-matrix argument for the end models.

    Dense inputs become float ndarrays (the historical behavior); a
    :class:`CSRFeatureMatrix` or scipy sparse matrix passes through in CSR
    form, so the minibatch loop's ``X[rows]`` / ``X @ w`` / ``X.T @ v``
    operations run sparsely.
    """
    if isinstance(features, CSRFeatureMatrix):
        return features
    if HAVE_SCIPY and _scipy_sparse is not None and _scipy_sparse.issparse(features):
        csr = features.tocsr().astype(np.float64)
        return CSRFeatureMatrix(csr.indptr, csr.indices, csr.data, csr.shape)
    return np.asarray(features, dtype=float)


def as_dense_features(features) -> np.ndarray:
    """A dense float feature matrix, densifying sparse inputs.

    For end models whose math has no sparse path (the MLP's hidden layers,
    the softmax classifier): sparse inputs still *work* — they are
    materialized up front — rather than failing inside ``np.asarray``.
    """
    if isinstance(features, CSRFeatureMatrix):
        return features.toarray()
    if HAVE_SCIPY and _scipy_sparse is not None and _scipy_sparse.issparse(features):
        return np.asarray(features.todense(), dtype=float)
    return np.asarray(features, dtype=float)
