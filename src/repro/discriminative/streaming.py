"""Engine-routed streaming featurization.

LF application has run on the :mod:`repro.labeling.engine` executors since
PR 2; this module gives featurization the same treatment.
:func:`featurize_stream` maps candidate chunks to CSR feature blocks via
:func:`repro.labeling.engine.tasks.featurize_chunk` — sequential, threaded,
or process-parallel, with the engine's windowed submission bounding in-flight
memory — and merges them through the existing accumulator machinery into one
:class:`~repro.discriminative.sparse_features.CSRFeatureMatrix`.  The
produced matrix is bit-identical to ``featurizer.transform(candidates,
sparse=True)`` for every backend and chunk size (the differential suite in
``tests/test_streaming_discriminative.py`` pins this down), but the
candidate iterable is consumed lazily and no dense ``(m, d)`` array exists
at any point.

For the fused one-pass variant (labels *and* features from the same chunk
stream) see :meth:`repro.labeling.applier.LFApplier.apply_with_features`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.sparse_features import CSRFeatureMatrix
from repro.labeling.engine import ExecutionPlan, run_plan
from repro.labeling.engine.tasks import featurize_chunk


def featurize_stream(
    featurizer: RelationFeaturizer,
    candidates: Iterable,
    chunk_size: int = 1024,
    backend: str = "sequential",
    num_workers: Optional[int] = 1,
    max_pending: Optional[int] = None,
    transport: str = "auto",
) -> CSRFeatureMatrix:
    """Featurize a candidate iterable through the execution engine.

    Parameters mirror :class:`repro.labeling.applier.LFApplier`: the
    candidate iterable may be a list, generator, or cursor (consumed chunk
    by chunk); ``backend`` selects the executor; ``max_pending`` bounds the
    in-flight window; ``transport`` picks the processes backend's chunk
    transport (pickled pipe bytes or shared-memory slots — results are
    bit-identical).  The process backend runs on the persistent worker pool
    (:mod:`repro.labeling.engine.runtime`), so a featurize stream following
    an LF apply in the same process reuses the already-spawned workers.
    ``featurizer`` must be fitted — the fitted check also runs worker-side
    in every chunk, so a stale featurizer shipped to a pool worker fails
    loudly instead of emitting misaligned columns.
    """
    featurizer.require_fitted()
    plan = ExecutionPlan(
        chunk_size=chunk_size,
        backend=backend,
        num_workers=num_workers,
        max_pending=max_pending,
        transport=transport,
    )
    result = run_plan(featurizer, candidates, plan, task=featurize_chunk)
    return CSRFeatureMatrix.from_triples(
        result.rows,
        result.cols,
        result.values,
        (result.num_candidates, featurizer.output_dim),
    )
