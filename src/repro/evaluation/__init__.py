"""Evaluation: metrics, scorers, and dataset splits."""

from repro.evaluation.metrics import (
    accuracy,
    f1_score,
    precision_recall_f1,
    precision_score,
    recall_score,
    roc_auc,
)
from repro.evaluation.scorer import BinaryScorer, ScoreReport
from repro.evaluation.splits import SplitSizes, split_indices

__all__ = [
    "accuracy",
    "precision_score",
    "recall_score",
    "f1_score",
    "precision_recall_f1",
    "roc_auc",
    "BinaryScorer",
    "ScoreReport",
    "SplitSizes",
    "split_indices",
]
