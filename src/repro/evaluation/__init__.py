"""Evaluation: metrics, scorers (binary and multi-class), and dataset splits."""

from repro.evaluation.metrics import (
    accuracy,
    f1_score,
    macro_precision_recall_f1,
    multiclass_confusion_matrix,
    precision_recall_f1,
    precision_score,
    recall_score,
    roc_auc,
)
from repro.evaluation.scorer import (
    BinaryScorer,
    MultiClassScorer,
    MultiClassScoreReport,
    ScoreReport,
)
from repro.evaluation.splits import SplitSizes, split_indices

__all__ = [
    "accuracy",
    "precision_score",
    "recall_score",
    "f1_score",
    "precision_recall_f1",
    "macro_precision_recall_f1",
    "multiclass_confusion_matrix",
    "roc_auc",
    "BinaryScorer",
    "ScoreReport",
    "MultiClassScorer",
    "MultiClassScoreReport",
    "SplitSizes",
    "split_indices",
]
