"""Classification metrics: precision, recall, F1, accuracy, and ROC AUC.

Conventions follow the paper's evaluation: binary labels are {-1, +1};
predictions of 0 (abstain / tie) are counted as negatives (Appendix A.5
notes this is standard practice given the negative class imbalance of the
relation-extraction tasks).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.types import NEGATIVE, POSITIVE


def _to_arrays(
    gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    gold_arr = np.asarray(gold)
    pred_arr = np.asarray(predicted)
    if gold_arr.shape != pred_arr.shape:
        raise ValueError(
            f"gold and predicted must have the same shape, got {gold_arr.shape} and "
            f"{pred_arr.shape}"
        )
    return gold_arr, pred_arr


def confusion_counts(
    gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray
) -> tuple[int, int, int, int]:
    """Return ``(tp, fp, tn, fn)`` counting 0-predictions as negatives."""
    gold_arr, pred_arr = _to_arrays(gold, predicted)
    pred_binary = np.where(pred_arr == POSITIVE, POSITIVE, NEGATIVE)
    tp = int(np.sum((pred_binary == POSITIVE) & (gold_arr == POSITIVE)))
    fp = int(np.sum((pred_binary == POSITIVE) & (gold_arr != POSITIVE)))
    tn = int(np.sum((pred_binary == NEGATIVE) & (gold_arr != POSITIVE)))
    fn = int(np.sum((pred_binary == NEGATIVE) & (gold_arr == POSITIVE)))
    return tp, fp, tn, fn


def accuracy(gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray) -> float:
    """Fraction of exact label matches."""
    gold_arr, pred_arr = _to_arrays(gold, predicted)
    if gold_arr.size == 0:
        return 0.0
    return float((gold_arr == pred_arr).mean())


def precision_score(
    gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray
) -> float:
    """Positive-class precision (0.0 when nothing is predicted positive)."""
    tp, fp, _, _ = confusion_counts(gold, predicted)
    return tp / (tp + fp) if (tp + fp) > 0 else 0.0


def recall_score(
    gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray
) -> float:
    """Positive-class recall (0.0 when there are no gold positives)."""
    tp, _, _, fn = confusion_counts(gold, predicted)
    return tp / (tp + fn) if (tp + fn) > 0 else 0.0


def f1_score(gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(gold, predicted)
    recall = recall_score(gold, predicted)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def precision_recall_f1(
    gold: Sequence[int] | np.ndarray, predicted: Sequence[int] | np.ndarray
) -> tuple[float, float, float]:
    """Convenience: ``(precision, recall, f1)`` in one call."""
    return (
        precision_score(gold, predicted),
        recall_score(gold, predicted),
        f1_score(gold, predicted),
    )


def roc_auc(gold: Sequence[int] | np.ndarray, scores: Sequence[float] | np.ndarray) -> float:
    """Area under the ROC curve via the rank (Mann–Whitney U) formulation.

    ``gold`` uses {-1, +1}; ``scores`` are any monotone scores (probabilities
    or margins).  Tied scores receive average ranks.  Returns 0.5 when either
    class is absent.
    """
    gold_arr = np.asarray(gold)
    score_arr = np.asarray(scores, dtype=float)
    if gold_arr.shape != score_arr.shape:
        raise ValueError("gold and scores must have the same shape")
    positives = gold_arr == POSITIVE
    num_positive = int(positives.sum())
    num_negative = int(gold_arr.size - num_positive)
    if num_positive == 0 or num_negative == 0:
        return 0.5
    order = np.argsort(score_arr, kind="mergesort")
    ranks = np.empty(score_arr.size, dtype=float)
    ranks[order] = np.arange(1, score_arr.size + 1)
    # Average ranks over ties.
    sorted_scores = score_arr[order]
    start = 0
    while start < sorted_scores.size:
        end = start
        while end + 1 < sorted_scores.size and sorted_scores[end + 1] == sorted_scores[start]:
            end += 1
        if end > start:
            average = (start + end) / 2.0 + 1.0
            ranks[order[start : end + 1]] = average
        start = end + 1
    rank_sum_positive = float(ranks[positives].sum())
    u_statistic = rank_sum_positive - num_positive * (num_positive + 1) / 2.0
    return u_statistic / (num_positive * num_negative)


def multiclass_confusion_matrix(
    gold: Sequence[int] | np.ndarray,
    predicted: Sequence[int] | np.ndarray,
    cardinality: int,
) -> np.ndarray:
    """``(k, k)`` count matrix ``C[g - 1, p - 1]`` for labels in ``1..k``.

    Raises :class:`ValueError` when either vector contains labels outside
    ``1..cardinality`` — in particular signed binary labels, which must be
    scored with the binary metrics rather than silently mis-bucketed.
    """
    gold_arr, pred_arr = _to_arrays(gold, predicted)
    if cardinality < 2:
        raise ValueError(f"cardinality must be >= 2, got {cardinality}")
    for name, values in (("gold", gold_arr), ("predicted", pred_arr)):
        if values.size and (values.min() < 1 or values.max() > cardinality):
            raise ValueError(
                f"{name} labels must lie in 1..{cardinality}, got range "
                f"[{int(values.min())}, {int(values.max())}]"
            )
    flat = (gold_arr.astype(np.int64) - 1) * cardinality + (pred_arr.astype(np.int64) - 1)
    counts = np.bincount(flat, minlength=cardinality * cardinality)
    return counts.reshape(cardinality, cardinality)


def macro_precision_recall_f1(
    gold: Sequence[int] | np.ndarray,
    predicted: Sequence[int] | np.ndarray,
    cardinality: int,
) -> tuple[float, float, float]:
    """Macro-averaged ``(precision, recall, f1)`` over all ``k`` classes.

    Each class is scored one-vs-rest (precision/recall 0.0 when undefined,
    i.e. nothing predicted / no gold instances of the class) and the three
    metrics are unweighted means over the classes — every class counts
    equally regardless of its frequency, the standard macro convention.
    """
    confusion = multiclass_confusion_matrix(gold, predicted, cardinality)
    diagonal = np.diag(confusion).astype(float)
    predicted_per_class = confusion.sum(axis=0).astype(float)
    gold_per_class = confusion.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted_per_class > 0, diagonal / predicted_per_class, 0.0)
        recall = np.where(gold_per_class > 0, diagonal / gold_per_class, 0.0)
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2.0 * precision * recall / denominator, 0.0)
    return float(precision.mean()), float(recall.mean()), float(f1.mean())


def lift(new_value: float, baseline_value: float) -> float:
    """Absolute improvement ``new - baseline`` (the paper's "Lift" columns)."""
    return float(new_value - baseline_value)


def relative_improvement(new_value: float, baseline_value: float) -> float:
    """Relative improvement in percent, e.g. the paper's "132% over DS" claims."""
    if baseline_value == 0.0:
        return float("inf") if new_value > 0 else 0.0
    return 100.0 * (new_value - baseline_value) / baseline_value
