"""Scorers with error bucketization.

Snorkel's notebook Viewer separates dev-set candidates into true/false
positives/negatives so users can inspect errors and refine their labeling
functions; :class:`BinaryScorer` reproduces that bucketization alongside the
headline metrics.  :class:`MultiClassScorer` is the categorical counterpart
(labels ``1..k``): accuracy plus macro-averaged precision/recall/F1 and the
full confusion matrix.  Each scorer validates its label vocabulary —
feeding multi-class labels to :class:`BinaryScorer` raises instead of
silently collapsing every non-positive class to NEGATIVE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.evaluation.metrics import (
    accuracy,
    confusion_counts,
    macro_precision_recall_f1,
    multiclass_confusion_matrix,
    precision_recall_f1,
    roc_auc,
)
from repro.types import ABSTAIN, NEGATIVE, POSITIVE


@dataclass
class ScoreReport:
    """Headline metrics plus the confusion counts and error buckets."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    auc: Optional[float] = None
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0
    true_positive_indices: list[int] = field(default_factory=list)
    false_positive_indices: list[int] = field(default_factory=list)
    true_negative_indices: list[int] = field(default_factory=list)
    false_negative_indices: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        """Headline metrics as a flat dict (handy for table building)."""
        result = {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }
        if self.auc is not None:
            result["auc"] = self.auc
        return result


class BinaryScorer:
    """Compute a :class:`ScoreReport` for binary predictions."""

    def score(
        self,
        gold: Sequence[int] | np.ndarray,
        predicted: Sequence[int] | np.ndarray,
        scores: Optional[Sequence[float] | np.ndarray] = None,
    ) -> ScoreReport:
        """Score hard predictions (and optionally ranking scores for AUC).

        Gold labels must be signed binary ``{-1, +1}``; predictions may also
        contain ``0`` (abstain / tie), which is counted as negative per the
        paper's convention (Appendix A.5).  Any other value — in particular
        multi-class labels ``2..k`` — raises :class:`ValueError`: collapsing
        unknown classes to NEGATIVE silently produces wrong numbers.  Use
        :class:`MultiClassScorer` for categorical tasks.
        """
        gold_arr = np.asarray(gold)
        pred_arr = np.asarray(predicted)
        self._validate_binary("gold", gold_arr, allow_abstain=False)
        self._validate_binary("predicted", pred_arr, allow_abstain=True)
        precision, recall, f1 = precision_recall_f1(gold_arr, pred_arr)
        tp, fp, tn, fn = confusion_counts(gold_arr, pred_arr)
        pred_binary = np.where(pred_arr == POSITIVE, POSITIVE, NEGATIVE)
        report = ScoreReport(
            precision=precision,
            recall=recall,
            f1=f1,
            accuracy=accuracy(gold_arr, pred_binary),
            auc=None if scores is None else roc_auc(gold_arr, np.asarray(scores, dtype=float)),
            tp=tp,
            fp=fp,
            tn=tn,
            fn=fn,
            true_positive_indices=np.flatnonzero(
                (pred_binary == POSITIVE) & (gold_arr == POSITIVE)
            ).tolist(),
            false_positive_indices=np.flatnonzero(
                (pred_binary == POSITIVE) & (gold_arr != POSITIVE)
            ).tolist(),
            true_negative_indices=np.flatnonzero(
                (pred_binary == NEGATIVE) & (gold_arr != POSITIVE)
            ).tolist(),
            false_negative_indices=np.flatnonzero(
                (pred_binary == NEGATIVE) & (gold_arr == POSITIVE)
            ).tolist(),
        )
        return report

    @staticmethod
    def _validate_binary(name: str, values: np.ndarray, allow_abstain: bool) -> None:
        allowed = {NEGATIVE, POSITIVE} | ({ABSTAIN} if allow_abstain else set())
        unexpected = sorted(set(int(v) for v in np.unique(values)) - allowed)
        if unexpected:
            raise ValueError(
                f"{name} contains non-binary labels {unexpected} (allowed: "
                f"{sorted(allowed)}); use MultiClassScorer for categorical tasks"
            )

    def score_probabilities(
        self,
        gold: Sequence[int] | np.ndarray,
        probabilities: Sequence[float] | np.ndarray,
        threshold: float = 0.5,
    ) -> ScoreReport:
        """Score probabilistic predictions by thresholding (AUC included)."""
        probs = np.asarray(probabilities, dtype=float)
        if probs.ndim != 1:
            raise ValueError(
                f"BinaryScorer expects a 1-D probability vector, got shape {probs.shape}; "
                "use MultiClassScorer for (m, k) distributions"
            )
        predicted = np.where(probs > threshold, POSITIVE, NEGATIVE)
        return self.score(gold, predicted, scores=probs)


@dataclass
class MultiClassScoreReport:
    """Headline multi-class metrics plus the confusion matrix and error buckets.

    ``precision`` / ``recall`` / ``f1`` are macro-averaged over all ``k``
    classes; ``accuracy`` is the plain fraction of exact matches.  The
    ``f1`` name is shared with :class:`ScoreReport` so pipeline consumers
    can read either report type uniformly.
    """

    cardinality: int
    accuracy: float
    precision: float
    recall: float
    f1: float
    confusion: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    correct_indices: list[int] = field(default_factory=list)
    incorrect_indices: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        """Headline metrics as a flat dict (handy for table building)."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


class MultiClassScorer:
    """Compute a :class:`MultiClassScoreReport` for labels in ``1..cardinality``."""

    def __init__(self, cardinality: int) -> None:
        if cardinality < 2:
            raise ValueError(f"cardinality must be >= 2, got {cardinality}")
        self.cardinality = cardinality

    def score(
        self,
        gold: Sequence[int] | np.ndarray,
        predicted: Sequence[int] | np.ndarray,
    ) -> MultiClassScoreReport:
        """Score hard class predictions (label validation included)."""
        gold_arr = np.asarray(gold)
        pred_arr = np.asarray(predicted)
        confusion = multiclass_confusion_matrix(gold_arr, pred_arr, self.cardinality)
        precision, recall, f1 = macro_precision_recall_f1(
            gold_arr, pred_arr, self.cardinality
        )
        correct = pred_arr == gold_arr
        return MultiClassScoreReport(
            cardinality=self.cardinality,
            accuracy=accuracy(gold_arr, pred_arr),
            precision=precision,
            recall=recall,
            f1=f1,
            confusion=confusion,
            correct_indices=np.flatnonzero(correct).tolist(),
            incorrect_indices=np.flatnonzero(~correct).tolist(),
        )

    def score_probabilities(
        self,
        gold: Sequence[int] | np.ndarray,
        probabilities: np.ndarray,
    ) -> MultiClassScoreReport:
        """Score ``(m, k)`` class distributions by argmax."""
        probs = np.asarray(probabilities, dtype=float)
        gold_arr = np.asarray(gold)
        if probs.ndim != 2 or probs.shape != (gold_arr.shape[0], self.cardinality):
            raise ValueError(
                f"expected probabilities of shape ({gold_arr.shape[0]}, "
                f"{self.cardinality}), got {probs.shape}"
            )
        predicted = probs.argmax(axis=1).astype(np.int64) + 1
        return self.score(gold_arr, predicted)
