"""Scorer with error bucketization.

Snorkel's notebook Viewer separates dev-set candidates into true/false
positives/negatives so users can inspect errors and refine their labeling
functions; :class:`BinaryScorer` reproduces that bucketization alongside the
headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.evaluation.metrics import accuracy, confusion_counts, precision_recall_f1, roc_auc
from repro.types import NEGATIVE, POSITIVE


@dataclass
class ScoreReport:
    """Headline metrics plus the confusion counts and error buckets."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    auc: Optional[float] = None
    tp: int = 0
    fp: int = 0
    tn: int = 0
    fn: int = 0
    true_positive_indices: list[int] = field(default_factory=list)
    false_positive_indices: list[int] = field(default_factory=list)
    true_negative_indices: list[int] = field(default_factory=list)
    false_negative_indices: list[int] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        """Headline metrics as a flat dict (handy for table building)."""
        result = {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "accuracy": self.accuracy,
        }
        if self.auc is not None:
            result["auc"] = self.auc
        return result


class BinaryScorer:
    """Compute a :class:`ScoreReport` for binary predictions."""

    def score(
        self,
        gold: Sequence[int] | np.ndarray,
        predicted: Sequence[int] | np.ndarray,
        scores: Optional[Sequence[float] | np.ndarray] = None,
    ) -> ScoreReport:
        """Score hard predictions (and optionally ranking scores for AUC)."""
        gold_arr = np.asarray(gold)
        pred_arr = np.asarray(predicted)
        precision, recall, f1 = precision_recall_f1(gold_arr, pred_arr)
        tp, fp, tn, fn = confusion_counts(gold_arr, pred_arr)
        pred_binary = np.where(pred_arr == POSITIVE, POSITIVE, NEGATIVE)
        report = ScoreReport(
            precision=precision,
            recall=recall,
            f1=f1,
            accuracy=accuracy(gold_arr, pred_binary),
            auc=None if scores is None else roc_auc(gold_arr, np.asarray(scores, dtype=float)),
            tp=tp,
            fp=fp,
            tn=tn,
            fn=fn,
            true_positive_indices=np.flatnonzero(
                (pred_binary == POSITIVE) & (gold_arr == POSITIVE)
            ).tolist(),
            false_positive_indices=np.flatnonzero(
                (pred_binary == POSITIVE) & (gold_arr != POSITIVE)
            ).tolist(),
            true_negative_indices=np.flatnonzero(
                (pred_binary == NEGATIVE) & (gold_arr != POSITIVE)
            ).tolist(),
            false_negative_indices=np.flatnonzero(
                (pred_binary == NEGATIVE) & (gold_arr == POSITIVE)
            ).tolist(),
        )
        return report

    def score_probabilities(
        self,
        gold: Sequence[int] | np.ndarray,
        probabilities: Sequence[float] | np.ndarray,
        threshold: float = 0.5,
    ) -> ScoreReport:
        """Score probabilistic predictions by thresholding (AUC included)."""
        probs = np.asarray(probabilities, dtype=float)
        predicted = np.where(probs > threshold, POSITIVE, NEGATIVE)
        return self.score(gold, predicted, scores=probs)
