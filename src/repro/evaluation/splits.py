"""Train / development / test splitting.

The paper's setup: training data is unlabeled; a small labeled development
set is used for hyperparameters and LF iteration; a blind labeled test set is
used for final scores (Table 7 lists the split sizes).  Splitting here is
done at the *document* level so that all candidates from one document land in
the same split, matching how the real corpora were partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SplitSizes:
    """Counts of items per split."""

    train: int
    dev: int
    test: int

    @property
    def total(self) -> int:
        """Total number of items across all splits."""
        return self.train + self.dev + self.test


def split_indices(
    num_items: int,
    dev_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed: SeedLike = 0,
) -> dict[str, np.ndarray]:
    """Randomly split ``range(num_items)`` into train/dev/test index arrays."""
    if num_items < 0:
        raise ConfigurationError(f"num_items must be >= 0, got {num_items}")
    if dev_fraction < 0 or test_fraction < 0 or dev_fraction + test_fraction >= 1.0:
        raise ConfigurationError(
            f"invalid split fractions dev={dev_fraction}, test={test_fraction}"
        )
    rng = ensure_rng(seed)
    order = rng.permutation(num_items)
    num_dev = int(round(num_items * dev_fraction))
    num_test = int(round(num_items * test_fraction))
    dev = order[:num_dev]
    test = order[num_dev : num_dev + num_test]
    train = order[num_dev + num_test :]
    return {"train": np.sort(train), "dev": np.sort(dev), "test": np.sort(test)}


def assign_document_splits(
    num_documents: int,
    dev_fraction: float = 0.1,
    test_fraction: float = 0.1,
    seed: SeedLike = 0,
) -> list[str]:
    """Assign each document index a split name, preserving the requested fractions."""
    splits = split_indices(num_documents, dev_fraction, test_fraction, seed)
    assignment = ["train"] * num_documents
    for name in ("dev", "test"):
        for index in splits[name]:
            assignment[int(index)] = name
    return assignment


def split_sizes(assignment: Sequence[str]) -> SplitSizes:
    """Count items per split from an assignment list."""
    return SplitSizes(
        train=sum(1 for split in assignment if split == "train"),
        dev=sum(1 for split in assignment if split == "dev"),
        test=sum(1 for split in assignment if split == "test"),
    )
