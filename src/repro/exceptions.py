"""Exception hierarchy for the Snorkel reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SchemaError(ReproError):
    """Raised when a relational schema is malformed or violated."""


class IntegrityError(SchemaError):
    """Raised on primary-key or foreign-key constraint violations."""


class QueryError(ReproError):
    """Raised when a query references unknown tables or columns."""


class ContextError(ReproError):
    """Raised when the context hierarchy is used inconsistently."""


class LabelingError(ReproError):
    """Raised when a labeling function misbehaves (bad return value, etc.)."""


class LabelModelError(ReproError):
    """Raised by generative label-model training or inference failures."""


class NotFittedError(ReproError):
    """Raised when predictions are requested from an unfitted model."""


class DatasetError(ReproError):
    """Raised when a synthetic task dataset cannot be constructed."""


class ConfigurationError(ReproError):
    """Raised for invalid user-facing configuration values."""
