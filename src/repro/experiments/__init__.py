"""Experiment drivers: one module per paper table / figure.

Each module exposes a ``run(...)`` function returning plain dataclasses /
dicts with the same rows or series the paper reports; the benchmark harness
in ``benchmarks/`` calls these and prints the comparison tables recorded in
EXPERIMENTS.md.
"""

from repro.experiments.registry import EXPERIMENTS, describe_experiments

__all__ = ["EXPERIMENTS", "describe_experiments"]
