"""Figure 4: modeling advantage vs label density on synthetic data.

Reproduces the paper's synthetic study: m = 1,000 class-balanced data points,
n independent labeling functions with 75% accuracy and 10% vote propensity,
with n swept over a log-spaced grid.  For each n we report the empirical
advantage of the learned generative model (A_w), the optimal advantage using
the true weights (A*), the optimizer's upper bound (Ã*), and the low-density
theoretical bound of Proposition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.synthetic import (
    generate_label_matrix,
    stream_synthetic_candidates,
    synthetic_stream_gold,
    synthetic_vote_lfs,
)
from repro.labeling.applier import LFApplier
from repro.labelmodel.advantage import (
    estimate_advantage_bound,
    modeling_advantage,
    optimal_advantage,
)
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.theory import low_density_upper_bound


@dataclass
class AdvantagePoint:
    """One point of the Figure-4 sweep."""

    num_lfs: int
    label_density: float
    learned_advantage: float
    optimal_advantage: float
    optimizer_bound: float
    low_density_bound: float


def run(
    num_points: int = 1000,
    lf_counts: tuple[int, ...] = (1, 2, 5, 10, 20, 50, 100, 200),
    accuracy: float = 0.75,
    propensity: float = 0.10,
    epochs: int = 10,
    seed: int = 0,
    sparse: bool = False,
    applier_backend: Optional[str] = None,
    applier_workers: Optional[int] = None,
) -> list[AdvantagePoint]:
    """Run the sweep and return one :class:`AdvantagePoint` per LF count.

    With ``sparse=True`` the synthetic matrices are generated and modeled in
    CSR storage end to end (same votes, same numbers — the Figure-4 setting
    is 10% propensity, exactly the regime sparse storage is for).

    With ``applier_backend`` set (``"sequential"`` / ``"threads"`` /
    ``"processes"``), each matrix is instead produced by streaming synthetic
    candidates through the :mod:`repro.labeling.engine` execution engine —
    the candidate list is never materialized, and the votes are identical
    for every backend (they differ from the default column-major generator,
    which draws from a different RNG stream).
    """
    points = []
    for index, num_lfs in enumerate(lf_counts):
        if applier_backend is not None:
            applier = LFApplier(
                synthetic_vote_lfs(num_lfs),
                backend=applier_backend,
                num_workers=applier_workers,
            )
            label_matrix = applier.apply(
                stream_synthetic_candidates(
                    num_points=num_points,
                    num_lfs=num_lfs,
                    accuracy=accuracy,
                    propensity=propensity,
                    seed=seed + index,
                ),
                sparse=sparse,
            )
            gold_labels = synthetic_stream_gold(num_points, seed=seed + index)
            lf_accuracies = np.full(num_lfs, accuracy)
        else:
            data = generate_label_matrix(
                num_points=num_points,
                num_lfs=num_lfs,
                accuracy=accuracy,
                propensity=propensity,
                seed=seed + index,
                sparse=sparse,
            )
            label_matrix = data.label_matrix
            gold_labels = data.gold_labels
            lf_accuracies = data.lf_accuracies
        model = GenerativeModel(epochs=epochs, seed=seed).fit(label_matrix)
        learned = modeling_advantage(label_matrix, gold_labels, model.accuracy_weights)
        optimal = optimal_advantage(label_matrix, gold_labels, lf_accuracies)
        bound = estimate_advantage_bound(label_matrix)
        density = label_matrix.label_density()
        points.append(
            AdvantagePoint(
                num_lfs=num_lfs,
                label_density=density,
                learned_advantage=learned,
                optimal_advantage=optimal,
                optimizer_bound=bound,
                low_density_bound=low_density_upper_bound(density, accuracy),
            )
        )
    return points


def format_table(points: list[AdvantagePoint]) -> str:
    """Render the sweep as a text table (the Figure-4 series)."""
    header = f"{'n LFs':>6} {'density':>8} {'A_w':>8} {'A*':>8} {'A~*':>8} {'low-d bound':>12}"
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.num_lfs:>6} {point.label_density:>8.2f} {point.learned_advantage:>8.3f} "
            f"{point.optimal_advantage:>8.3f} {point.optimizer_bound:>8.3f} "
            f"{min(point.low_density_bound, 1.0):>12.3f}"
        )
    return "\n".join(lines)
