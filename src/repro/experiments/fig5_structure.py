"""Figure 5: structure-learning threshold tradeoff.

For a label matrix with correlated labeling functions, sweep the selection
threshold ε, record the number of correlations selected and the generative
model's predictive performance when those correlations are modeled, and mark
the elbow point Algorithm 1 would select.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import load_task
from repro.datasets.synthetic import generate_correlated_label_matrix
from repro.evaluation.metrics import f1_score
from repro.labeling.applier import LFApplier
from repro.labeling.matrix import LabelMatrix
from repro.labelmodel.elbow import select_elbow_point
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.structure import StructureLearner


@dataclass
class StructureSweepResult:
    """One panel of Figure 5."""

    panel: str
    thresholds: list[float]
    correlation_counts: list[int]
    f1_scores: list[float]
    elbow_threshold: float


def _sweep(
    panel: str,
    label_matrix: LabelMatrix,
    gold: np.ndarray,
    thresholds: list[float],
    epochs: int,
    seed: int,
) -> StructureSweepResult:
    learner = StructureLearner().fit(label_matrix)
    counts = []
    scores = []
    for threshold in thresholds:
        correlations = learner.select(threshold)
        counts.append(len(correlations))
        model = GenerativeModel(epochs=epochs, seed=seed).fit(
            label_matrix, correlations=correlations
        )
        scores.append(f1_score(gold, model.predict(label_matrix)))
    elbow = select_elbow_point(thresholds, counts)
    return StructureSweepResult(
        panel=panel,
        thresholds=list(thresholds),
        correlation_counts=counts,
        f1_scores=scores,
        elbow_threshold=float(elbow),
    )


def run_simulation_panel(
    thresholds: list[float] | None = None, epochs: int = 10, seed: int = 0
) -> StructureSweepResult:
    """Figure 5 (left): simulated correlated labeling functions."""
    thresholds = thresholds or [0.3, 0.25, 0.2, 0.15, 0.1, 0.05, 0.02]
    data = generate_correlated_label_matrix(
        num_points=800, num_independent=8, num_groups=6, group_size=3, seed=seed
    )
    return _sweep("simulation", data.label_matrix, data.gold_labels, thresholds, epochs, seed)


def run_task_panel(
    task_name: str = "cdr",
    scale: float = 0.15,
    thresholds: list[float] | None = None,
    epochs: int = 10,
    seed: int = 0,
) -> StructureSweepResult:
    """Figure 5 (middle / right): a real task's LF suite."""
    thresholds = thresholds or [0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.02]
    task = load_task(task_name, scale=scale, seed=seed)
    matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
    gold = task.split_gold("train")
    return _sweep(task_name, matrix, gold, thresholds, epochs, seed)


def format_table(result: StructureSweepResult) -> str:
    """Render one sweep panel as text."""
    header = f"Panel: {result.panel} (elbow at eps={result.elbow_threshold})"
    lines = [header, f"{'eps':>8}{'# corr':>8}{'F1':>8}", "-" * 24]
    for threshold, count, score in zip(
        result.thresholds, result.correlation_counts, result.f1_scores
    ):
        lines.append(f"{threshold:>8.2f}{count:>8}{100 * score:>8.1f}")
    return "\n".join(lines)
