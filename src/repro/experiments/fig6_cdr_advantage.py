"""Figure 6: modeling advantage vs number of CDR labeling functions.

Random subsets of the CDR LF suite of increasing size are drawn; for each,
the empirical advantage of the trained generative model and the optimizer's
upper bound Ã* are computed, showing the optimizer switching from MV to GM as
development matures (more LFs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import load_task
from repro.labeling.applier import LFApplier
from repro.labelmodel.advantage import estimate_advantage_bound, modeling_advantage
from repro.labelmodel.generative import GenerativeModel


@dataclass
class Fig6Point:
    """One subset size of the Figure-6 sweep."""

    num_lfs: int
    empirical_advantage: float
    optimizer_bound: float


def run(
    scale: float = 0.15,
    subset_sizes: tuple[int, ...] = (5, 10, 15, 20, 25, 30),
    repeats: int = 2,
    epochs: int = 10,
    seed: int = 0,
) -> list[Fig6Point]:
    """Compute advantage and bound for random LF subsets of increasing size."""
    task = load_task("cdr", scale=scale, seed=seed)
    full_matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
    gold = task.split_gold("train")
    rng = np.random.default_rng(seed)
    points = []
    for size in subset_sizes:
        size = min(size, full_matrix.num_lfs)
        advantages = []
        bounds = []
        for _ in range(repeats):
            columns = rng.choice(full_matrix.num_lfs, size=size, replace=False)
            subset = full_matrix.select_lfs(sorted(int(c) for c in columns))
            model = GenerativeModel(epochs=epochs, seed=seed).fit(subset)
            advantages.append(modeling_advantage(subset, gold, model.accuracy_weights))
            bounds.append(estimate_advantage_bound(subset))
        points.append(
            Fig6Point(
                num_lfs=size,
                empirical_advantage=float(np.mean(advantages)),
                optimizer_bound=float(np.mean(bounds)),
            )
        )
    return points


def format_table(points: list[Fig6Point]) -> str:
    """Render the Figure-6 series as text."""
    header = f"{'# LFs':>6}{'A_w':>10}{'A~*':>10}"
    lines = [header, "-" * len(header)]
    for point in points:
        lines.append(
            f"{point.num_lfs:>6}{point.empirical_advantage:>10.3f}{point.optimizer_bound:>10.3f}"
        )
    return "\n".join(lines)
