"""Experiment registry: maps each paper artifact to its driver and bench target."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper table or figure and how this repository regenerates it."""

    experiment_id: str
    paper_artifact: str
    description: str
    driver: str
    bench_target: str


EXPERIMENTS: list[ExperimentSpec] = [
    ExperimentSpec(
        "fig4", "Figure 4", "Modeling advantage vs number of LFs on synthetic data",
        "repro.experiments.fig4_advantage.run", "benchmarks/bench_fig4_modeling_advantage.py",
    ),
    ExperimentSpec(
        "fig5", "Figure 5", "Performance and correlation count vs threshold epsilon",
        "repro.experiments.fig5_structure.run", "benchmarks/bench_fig5_structure_tradeoff.py",
    ),
    ExperimentSpec(
        "fig6", "Figure 6", "Advantage and optimizer bound vs number of CDR LFs",
        "repro.experiments.fig6_cdr_advantage.run", "benchmarks/bench_fig6_cdr_advantage.py",
    ),
    ExperimentSpec(
        "table1",
        "Table 1",
        "Modeling advantage, optimizer bound, strategy, label density per task",
        "repro.experiments.table1_advantage.run", "benchmarks/bench_table1_advantage.py",
    ),
    ExperimentSpec(
        "table2", "Table 2", "Task summary statistics",
        "repro.experiments.table2_stats.run", "benchmarks/bench_table2_task_stats.py",
    ),
    ExperimentSpec(
        "table3", "Table 3", "Relation extraction: DS vs Snorkel (gen/disc) vs hand supervision",
        "repro.experiments.table3_relation_extraction.run",
        "benchmarks/bench_table3_relation_extraction.py",
    ),
    ExperimentSpec(
        "table4", "Table 4", "Cross-modal tasks: radiology AUC and crowd accuracy",
        "repro.experiments.table4_crossmodal.run", "benchmarks/bench_table4_crossmodal.py",
    ),
    ExperimentSpec(
        "table5", "Table 5", "Discriminative model on unweighted LFs vs Snorkel labels",
        "repro.experiments.table5_generative_effect.run",
        "benchmarks/bench_table5_generative_effect.py",
    ),
    ExperimentSpec(
        "table6", "Table 6", "Labeling-function type ablation on CDR",
        "repro.experiments.table6_lf_ablation.run", "benchmarks/bench_table6_lf_ablation.py",
    ),
    ExperimentSpec(
        "table7", "Table 7", "Candidate counts per split",
        "repro.experiments.table2_stats.run", "benchmarks/bench_table7_splits.py",
    ),
    ExperimentSpec(
        "userstudy", "Figures 7-8 / Table 8", "Simulated user study vs hand-label baselines",
        "repro.userstudy.simulate.simulate_user_study", "benchmarks/bench_user_study.py",
    ),
]


def describe_experiments() -> str:
    """Human-readable experiment index."""
    lines = ["Experiment index (paper artifact -> driver -> bench target)", "-" * 60]
    for spec in EXPERIMENTS:
        lines.append(f"{spec.experiment_id:10s} {spec.paper_artifact:18s} {spec.bench_target}")
    return "\n".join(lines)
