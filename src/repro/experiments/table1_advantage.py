"""Table 1: modeling advantage, optimizer bound, chosen strategy, label density.

For each task we compute the empirical advantage A_w of the trained
generative model over majority vote (on the training split, against gold
labels used for evaluation only), the optimizer's upper bound Ã*, the
strategy Algorithm 1 selects, and the label density d_Λ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import load_task
from repro.labeling.applier import LFApplier
from repro.labelmodel.advantage import estimate_advantage_bound, modeling_advantage
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.optimizer import ModelingStrategyOptimizer

#: Default (task, scale) pairs; scales keep each task to a few hundred to a
#: couple thousand training candidates.
DEFAULT_TASKS: tuple[tuple[str, float], ...] = (
    ("radiology", 0.08),
    ("cdr", 0.15),
    ("spouses", 0.1),
    ("chem", 0.1),
    ("ehr", 0.008),
)


@dataclass
class Table1Row:
    """One row of Table 1."""

    task: str
    empirical_advantage: float
    optimizer_bound: float
    strategy: str
    label_density: float


def run(
    tasks: tuple[tuple[str, float], ...] = DEFAULT_TASKS,
    epochs: int = 10,
    advantage_tolerance: float = 0.01,
    seed: int = 0,
) -> list[Table1Row]:
    """Compute the Table-1 rows for the given tasks."""
    rows = []
    for task_name, scale in tasks:
        task = load_task(task_name, scale=scale, seed=seed)
        matrix = LFApplier(task.lfs).apply(task.split_candidates("train"))
        gold = task.split_gold("train")
        model = GenerativeModel(epochs=epochs, seed=seed).fit(matrix)
        advantage = modeling_advantage(matrix, gold, model.accuracy_weights)
        bound = estimate_advantage_bound(matrix)
        optimizer = ModelingStrategyOptimizer(
            advantage_tolerance=advantage_tolerance, learn_correlations=False
        )
        strategy = optimizer.choose(matrix)
        rows.append(
            Table1Row(
                task=task_name,
                empirical_advantage=advantage,
                optimizer_bound=bound,
                strategy=strategy.strategy,
                label_density=matrix.label_density(),
            )
        )
    return rows


def format_table(rows: list[Table1Row]) -> str:
    """Render Table 1 as text."""
    header = f"{'Task':<12}{'A_w (%)':>10}{'A~* (%)':>10}{'Strategy':>10}{'d_L':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.task:<12}{100 * row.empirical_advantage:>10.1f}"
            f"{100 * row.optimizer_bound:>10.1f}{row.strategy:>10}{row.label_density:>8.1f}"
        )
    return "\n".join(lines)
