"""Tables 2 and 7: task summary statistics and split sizes."""

from __future__ import annotations

from repro.datasets.base import TaskSummary, load_task

DEFAULT_TASKS: tuple[tuple[str, float], ...] = (
    ("chem", 0.1),
    ("ehr", 0.008),
    ("cdr", 0.15),
    ("spouses", 0.1),
    ("radiology", 0.08),
    ("crowd", 0.5),
)


def run(tasks: tuple[tuple[str, float], ...] = DEFAULT_TASKS, seed: int = 0) -> list[TaskSummary]:
    """Build each task and collect its summary row."""
    return [load_task(name, scale=scale, seed=seed).summary() for name, scale in tasks]


def format_table2(summaries: list[TaskSummary]) -> str:
    """Render the Table-2 style summary (LFs, %pos, docs, candidates)."""
    header = f"{'Task':<12}{'# LFs':>7}{'% Pos.':>9}{'# Docs':>9}{'# Candidates':>14}"
    lines = [header, "-" * len(header)]
    for summary in summaries:
        positive = (
            f"{100 * summary.positive_fraction:>9.1f}"
            if summary.positive_fraction is not None
            else f"{'-':>9}"
        )
        lines.append(
            f"{summary.name:<12}{summary.num_lfs:>7}{positive}"
            f"{summary.num_documents:>9}{summary.num_candidates:>14}"
        )
    return "\n".join(lines)


def format_table7(summaries: list[TaskSummary]) -> str:
    """Render the Table-7 style split sizes."""
    header = f"{'Task':<12}{'# Train':>10}{'# Dev':>10}{'# Test':>10}"
    lines = [header, "-" * len(header)]
    for summary in summaries:
        sizes = summary.split_sizes
        lines.append(
            f"{summary.name:<12}{sizes.get('train', 0):>10}"
            f"{sizes.get('dev', 0):>10}{sizes.get('test', 0):>10}"
        )
    return "\n".join(lines)
