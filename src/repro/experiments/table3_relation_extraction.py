"""Table 3: relation-extraction evaluation.

For each relation task, compare distant supervision, Snorkel's generative
stage, Snorkel's discriminative stage, and hand supervision on the held-out
test split (precision / recall / F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.distant_supervision import distant_supervision_baseline
from repro.baselines.hand_supervision import hand_supervision_baseline
from repro.datasets.base import load_task
from repro.evaluation.scorer import ScoreReport
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

DEFAULT_TASKS: tuple[tuple[str, float], ...] = (
    ("chem", 0.1),
    ("ehr", 0.008),
    ("cdr", 0.15),
    ("spouses", 0.1),
)


@dataclass
class Table3Row:
    """One task's Table-3 row: the four compared systems."""

    task: str
    distant_supervision: ScoreReport
    snorkel_generative: ScoreReport
    snorkel_discriminative: ScoreReport
    hand_supervision: Optional[ScoreReport]

    @property
    def generative_lift(self) -> float:
        """F1 lift of the generative stage over distant supervision."""
        return self.snorkel_generative.f1 - self.distant_supervision.f1

    @property
    def discriminative_lift(self) -> float:
        """F1 lift of the discriminative stage over distant supervision."""
        return self.snorkel_discriminative.f1 - self.distant_supervision.f1


def run(
    tasks: tuple[tuple[str, float], ...] = DEFAULT_TASKS,
    seed: int = 0,
    generative_epochs: int = 10,
    discriminative_epochs: int = 30,
    applier_backend: str = "sequential",
    applier_workers: Optional[int] = 1,
    streaming: bool = False,
    chunk_size: int = 1024,
) -> list[Table3Row]:
    """Run the four systems on each task and collect test-split score reports.

    ``applier_backend`` / ``applier_workers`` select the labeling execution
    engine's executor (see :mod:`repro.labeling.engine`); the label matrices
    — and therefore every score in the table — are identical across
    backends.  ``streaming=True`` runs the Snorkel pipeline out-of-core
    (one fused pass per split over ``task.stream_candidates``; see
    :class:`repro.pipeline.PipelineConfig`) with scores value-identical to
    the materialized run; the baselines stay materialized either way.
    """
    rows = []
    for task_name, scale in tasks:
        task = load_task(task_name, scale=scale, seed=seed)
        config = PipelineConfig(
            generative_epochs=generative_epochs,
            discriminative_epochs=discriminative_epochs,
            learn_correlations=False,
            applier_backend=applier_backend,
            applier_workers=applier_workers,
            streaming=streaming,
            chunk_size=chunk_size,
            seed=seed,
        )
        result = SnorkelPipeline(config=config).run(task)
        distant = distant_supervision_baseline(task, epochs=discriminative_epochs, seed=seed)
        hand = hand_supervision_baseline(task, epochs=discriminative_epochs, seed=seed)
        rows.append(
            Table3Row(
                task=task_name,
                distant_supervision=distant,
                snorkel_generative=result.generative_test_report,
                snorkel_discriminative=result.discriminative_test_report,
                hand_supervision=hand,
            )
        )
    return rows


def format_table(rows: list[Table3Row]) -> str:
    """Render Table 3 as text (P / R / F1 per system)."""
    header = (
        f"{'Task':<10}"
        f"{'DS P':>7}{'DS R':>7}{'DS F1':>7}"
        f"{'Gen P':>7}{'Gen R':>7}{'Gen F1':>8}"
        f"{'Disc P':>8}{'Disc R':>8}{'Disc F1':>9}"
        f"{'Hand F1':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        hand_f1 = row.hand_supervision.f1 if row.hand_supervision else float("nan")
        lines.append(
            f"{row.task:<10}"
            f"{100 * row.distant_supervision.precision:>7.1f}"
            f"{100 * row.distant_supervision.recall:>7.1f}"
            f"{100 * row.distant_supervision.f1:>7.1f}"
            f"{100 * row.snorkel_generative.precision:>7.1f}"
            f"{100 * row.snorkel_generative.recall:>7.1f}"
            f"{100 * row.snorkel_generative.f1:>8.1f}"
            f"{100 * row.snorkel_discriminative.precision:>8.1f}"
            f"{100 * row.snorkel_discriminative.recall:>8.1f}"
            f"{100 * row.snorkel_discriminative.f1:>9.1f}"
            f"{100 * hand_f1:>9.1f}"
        )
    return "\n".join(lines)
