"""Table 4: cross-modal tasks.

* Radiology: LFs over report text produce probabilistic labels; an image
  feature classifier (the ResNet substitute) is trained on them and evaluated
  by ROC AUC on the test split, against the same classifier trained on gold
  labels.
* Crowd: crowd workers are LFs and the task runs through the *main*
  :class:`repro.pipeline.SnorkelPipeline` — the k-ary generative model
  produces class posteriors and the noise-aware softmax text classifier
  trains on them — evaluated by accuracy against the same classifier trained
  on gold labels.  The standalone Dawid–Skene estimator is kept as a
  cross-check baseline: the driver also reports how often its hard labels
  agree with the generative model's on the training split.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.datasets.base import load_task
from repro.discriminative.featurizers import RelationFeaturizer
from repro.discriminative.image import ImageFeatureClassifier, extract_image_features
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.evaluation.metrics import roc_auc
from repro.labeling.applier import LFApplier
from repro.labelmodel.dawid_skene import DawidSkeneModel
from repro.labelmodel.generative import GenerativeModel
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline
from repro.types import POSITIVE


@dataclass
class CrossModalResult:
    """Table-4 rows: Snorkel vs hand supervision on each cross-modal task."""

    radiology_snorkel_auc: float
    radiology_hand_auc: float
    crowd_snorkel_accuracy: float
    crowd_hand_accuracy: float
    #: Fraction of training tweets where the generative model's hard label
    #: matches standalone Dawid–Skene's (the cross-check baseline).
    crowd_dawid_skene_agreement: float


def run(
    radiology_scale: float = 0.08,
    crowd_scale: float = 1.0,
    seed: int = 0,
    epochs: int = 40,
    streaming: bool = False,
) -> CrossModalResult:
    """Run both cross-modal pipelines and return the Table-4 numbers.

    ``streaming=True`` routes the crowd pipeline through the out-of-core
    mode (fused apply+featurize passes, minibatch end-model training from
    CSR blocks) with value-identical scores; the radiology task trains on
    pre-extracted image features and stays materialized.
    """
    radiology_snorkel, radiology_hand = _radiology(radiology_scale, seed, epochs)
    crowd_snorkel, crowd_hand, crowd_agreement = _crowd(
        crowd_scale, seed, epochs, streaming=streaming
    )
    return CrossModalResult(
        radiology_snorkel_auc=radiology_snorkel,
        radiology_hand_auc=radiology_hand,
        crowd_snorkel_accuracy=crowd_snorkel,
        crowd_hand_accuracy=crowd_hand,
        crowd_dawid_skene_agreement=crowd_agreement,
    )


def _radiology(scale: float, seed: int, epochs: int) -> tuple[float, float]:
    task = load_task("radiology", scale=scale, seed=seed)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    matrix = LFApplier(task.lfs).apply(train)
    label_model = GenerativeModel(epochs=10, seed=seed).fit(matrix)
    soft_labels = label_model.predict_proba(matrix)

    train_features = extract_image_features(train)
    test_features = extract_image_features(test)
    gold_test = task.split_gold("test")

    snorkel_model = ImageFeatureClassifier(epochs=epochs, seed=seed)
    snorkel_model.fit(train_features, soft_labels)
    snorkel_auc = roc_auc(gold_test, snorkel_model.predict_proba(test_features))

    hand_model = ImageFeatureClassifier(epochs=epochs, seed=seed)
    hand_model.fit(train_features, (task.split_gold("train") == POSITIVE).astype(float))
    hand_auc = roc_auc(gold_test, hand_model.predict_proba(test_features))
    return snorkel_auc, hand_auc


def _crowd(
    scale: float, seed: int, epochs: int, streaming: bool = False
) -> tuple[float, float, float]:
    """The crowd task through the main pipeline, with a Dawid–Skene cross-check.

    The workers are (conditionally) independent graders, so the optimizer's
    correlation sweep is skipped (``use_optimizer=False`` trains the
    independent generative model directly) — exactly the modeling the paper
    applies to crowdsourced labels.
    """
    task = load_task("crowd", scale=scale, seed=seed)
    # One featurizer instance shared by the pipeline and the hand-supervision
    # baseline, so the Snorkel-vs-hand rows compare on identical features
    # (config.num_features only shapes the pipeline's *default* featurizer
    # and is left alone here).
    featurizer = RelationFeaturizer(num_features=512).fit()
    config = PipelineConfig(
        use_optimizer=False,
        generative_epochs=20,
        discriminative_epochs=epochs,
        streaming=streaming,
        seed=seed,
    )
    result = SnorkelPipeline(config=config, featurizer=featurizer).run(task)
    snorkel_accuracy = result.discriminative_test_report.accuracy

    # Cross-check: the standalone Dawid-Skene estimator on the same label
    # matrix should largely agree with the factor-graph model's hard labels.
    dawid_skene = DawidSkeneModel(cardinality=task.cardinality, seed=seed)
    dawid_skene.fit(result.label_matrix)
    generative_labels = result.generative_model.predict(result.label_matrix)
    agreement = float((dawid_skene.predict() == generative_labels).mean())

    # Hand supervision: the same featurizer and end model, trained on gold.
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    train_features = featurizer.transform(list(train))
    test_features = featurizer.transform(list(test))
    hand_model = NoiseAwareSoftmaxRegression(
        num_classes=task.cardinality, epochs=epochs, seed=seed
    )
    hand_model.fit(train_features, task.split_gold("train"))
    hand_accuracy = hand_model.score(test_features, task.split_gold("test"))
    return snorkel_accuracy, hand_accuracy, agreement


def format_table(result: CrossModalResult) -> str:
    """Render Table 4 as text (plus the Dawid-Skene cross-check line)."""
    lines = [
        f"{'Task':<22}{'Snorkel (Disc.)':>18}{'Hand Supervision':>18}",
        "-" * 58,
        f"{'Radiology (AUC)':<22}{100 * result.radiology_snorkel_auc:>18.1f}"
        f"{100 * result.radiology_hand_auc:>18.1f}",
        f"{'Crowd (Acc)':<22}{100 * result.crowd_snorkel_accuracy:>18.1f}"
        f"{100 * result.crowd_hand_accuracy:>18.1f}",
        "",
        "Crowd label-model cross-check: generative model vs Dawid-Skene "
        f"agreement {100 * result.crowd_dawid_skene_agreement:.1f}%",
    ]
    return "\n".join(lines)
