"""Table 4: cross-modal tasks.

* Radiology: LFs over report text produce probabilistic labels; an image
  feature classifier (the ResNet substitute) is trained on them and evaluated
  by ROC AUC on the test split, against the same classifier trained on gold
  labels.
* Crowd: crowd workers are LFs; the Dawid–Skene label model produces class
  posteriors, a softmax text classifier is trained on them and evaluated by
  accuracy, against the same classifier trained on gold labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import load_task
from repro.discriminative.featurizers import HashingVectorizer
from repro.discriminative.image import ImageFeatureClassifier, extract_image_features
from repro.discriminative.softmax import NoiseAwareSoftmaxRegression
from repro.evaluation.metrics import roc_auc
from repro.labeling.applier import LFApplier
from repro.labelmodel.dawid_skene import DawidSkeneModel
from repro.labelmodel.generative import GenerativeModel
from repro.types import POSITIVE


@dataclass
class CrossModalResult:
    """Table-4 rows: Snorkel vs hand supervision on each cross-modal task."""

    radiology_snorkel_auc: float
    radiology_hand_auc: float
    crowd_snorkel_accuracy: float
    crowd_hand_accuracy: float


def run(
    radiology_scale: float = 0.08,
    crowd_scale: float = 1.0,
    seed: int = 0,
    epochs: int = 40,
) -> CrossModalResult:
    """Run both cross-modal pipelines and return the Table-4 numbers."""
    radiology_snorkel, radiology_hand = _radiology(radiology_scale, seed, epochs)
    crowd_snorkel, crowd_hand = _crowd(crowd_scale, seed, epochs)
    return CrossModalResult(
        radiology_snorkel_auc=radiology_snorkel,
        radiology_hand_auc=radiology_hand,
        crowd_snorkel_accuracy=crowd_snorkel,
        crowd_hand_accuracy=crowd_hand,
    )


def _radiology(scale: float, seed: int, epochs: int) -> tuple[float, float]:
    task = load_task("radiology", scale=scale, seed=seed)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    matrix = LFApplier(task.lfs).apply(train)
    label_model = GenerativeModel(epochs=10, seed=seed).fit(matrix)
    soft_labels = label_model.predict_proba(matrix)

    train_features = extract_image_features(train)
    test_features = extract_image_features(test)
    gold_test = task.split_gold("test")

    snorkel_model = ImageFeatureClassifier(epochs=epochs, seed=seed)
    snorkel_model.fit(train_features, soft_labels)
    snorkel_auc = roc_auc(gold_test, snorkel_model.predict_proba(test_features))

    hand_model = ImageFeatureClassifier(epochs=epochs, seed=seed)
    hand_model.fit(train_features, (task.split_gold("train") == POSITIVE).astype(float))
    hand_auc = roc_auc(gold_test, hand_model.predict_proba(test_features))
    return snorkel_auc, hand_auc


def _crowd(scale: float, seed: int, epochs: int) -> tuple[float, float]:
    task = load_task("crowd", scale=scale, seed=seed)
    train = task.split_candidates("train")
    test = task.split_candidates("test")
    matrix = LFApplier(task.lfs).apply(train)
    label_model = DawidSkeneModel(cardinality=task.cardinality, seed=seed).fit(matrix)
    posteriors = label_model.predict_proba()

    vectorizer = HashingVectorizer(num_features=512, ngram_range=(1, 1))
    train_features = vectorizer.transform([c.sentence.words for c in train])
    test_features = vectorizer.transform([c.sentence.words for c in test])
    gold_test = task.split_gold("test")

    snorkel_model = NoiseAwareSoftmaxRegression(
        num_classes=task.cardinality, epochs=epochs, seed=seed
    )
    snorkel_model.fit(train_features, posteriors)
    snorkel_accuracy = snorkel_model.score(test_features, gold_test)

    hand_model = NoiseAwareSoftmaxRegression(
        num_classes=task.cardinality, epochs=epochs, seed=seed
    )
    hand_model.fit(train_features, task.split_gold("train"))
    hand_accuracy = hand_model.score(test_features, gold_test)
    return snorkel_accuracy, hand_accuracy


def format_table(result: CrossModalResult) -> str:
    """Render Table 4 as text."""
    lines = [
        f"{'Task':<22}{'Snorkel (Disc.)':>18}{'Hand Supervision':>18}",
        "-" * 58,
        f"{'Radiology (AUC)':<22}{100 * result.radiology_snorkel_auc:>18.1f}"
        f"{100 * result.radiology_hand_auc:>18.1f}",
        f"{'Crowd (Acc)':<22}{100 * result.crowd_snorkel_accuracy:>18.1f}"
        f"{100 * result.crowd_hand_accuracy:>18.1f}",
    ]
    return "\n".join(lines)
