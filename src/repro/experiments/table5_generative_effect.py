"""Table 5: effect of generative modeling on end-model performance.

Compares the discriminative model trained on the unweighted LF average
against the same model trained on the generative model's probabilistic
labels, per task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.unweighted import unweighted_lf_baseline
from repro.datasets.base import load_task
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline

DEFAULT_TASKS: tuple[tuple[str, float], ...] = (
    ("chem", 0.1),
    ("ehr", 0.008),
    ("cdr", 0.15),
    ("spouses", 0.1),
)


@dataclass
class Table5Row:
    """One task's Table-5 row."""

    task: str
    unweighted_f1: float
    snorkel_f1: float

    @property
    def lift(self) -> float:
        """F1 lift from modeling LF accuracies."""
        return self.snorkel_f1 - self.unweighted_f1


def run(
    tasks: tuple[tuple[str, float], ...] = DEFAULT_TASKS,
    seed: int = 0,
    discriminative_epochs: int = 30,
) -> list[Table5Row]:
    """Compute the Table-5 comparison for each task."""
    rows = []
    for task_name, scale in tasks:
        task = load_task(task_name, scale=scale, seed=seed)
        config = PipelineConfig(
            generative_epochs=10,
            discriminative_epochs=discriminative_epochs,
            learn_correlations=False,
            force_strategy="GM",
            seed=seed,
        )
        snorkel = SnorkelPipeline(config=config).run(task)
        unweighted = unweighted_lf_baseline(task, epochs=discriminative_epochs, seed=seed)
        rows.append(
            Table5Row(
                task=task_name,
                unweighted_f1=unweighted.f1,
                snorkel_f1=snorkel.discriminative_f1,
            )
        )
    return rows


def format_table(rows: list[Table5Row]) -> str:
    """Render Table 5 as text."""
    header = f"{'Task':<12}{'Unweighted LFs':>16}{'Snorkel labels':>16}{'Lift':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.task:<12}{100 * row.unweighted_f1:>16.1f}"
            f"{100 * row.snorkel_f1:>16.1f}{100 * row.lift:>8.1f}"
        )
    return "\n".join(lines)
