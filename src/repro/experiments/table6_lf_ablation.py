"""Table 6: labeling-function type ablation on CDR.

Starting from text-pattern LFs only, add distant supervision and then
structure-based LFs, measuring the end-model F1 at each step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.base import load_task
from repro.pipeline.snorkel import PipelineConfig, SnorkelPipeline


@dataclass
class AblationRow:
    """End-model scores with a cumulative subset of LF types."""

    lf_types: str
    num_lfs: int
    precision: float
    recall: float
    f1: float


def run(
    scale: float = 0.15, seed: int = 0, discriminative_epochs: int = 30
) -> list[AblationRow]:
    """Run the cumulative LF-type ablation on the CDR task."""
    task = load_task("cdr", scale=scale, seed=seed)
    groups = task.lfs_by_type()
    patterns = groups.get("pattern", [])
    distant = groups.get("distant_supervision", [])
    structure = groups.get("structure", [])
    stages = [
        ("Text Patterns", patterns),
        ("+ Distant Supervision", patterns + distant),
        ("+ Structure-based", patterns + distant + structure),
    ]
    rows = []
    for stage_name, lfs in stages:
        if not lfs:
            continue
        config = PipelineConfig(
            generative_epochs=10,
            discriminative_epochs=discriminative_epochs,
            learn_correlations=False,
            seed=seed,
        )
        result = SnorkelPipeline(lfs=lfs, config=config).run(task)
        report = result.discriminative_test_report
        rows.append(
            AblationRow(
                lf_types=stage_name,
                num_lfs=len(lfs),
                precision=report.precision,
                recall=report.recall,
                f1=report.f1,
            )
        )
    return rows


def format_table(rows: list[AblationRow]) -> str:
    """Render Table 6 as text."""
    header = f"{'LF Types':<26}{'# LFs':>7}{'P':>8}{'R':>8}{'F1':>8}{'Lift':>8}"
    lines = [header, "-" * len(header)]
    previous_f1 = None
    for row in rows:
        lift = "" if previous_f1 is None else f"{100 * (row.f1 - previous_f1):>+8.1f}"
        lines.append(
            f"{row.lf_types:<26}{row.num_lfs:>7}{100 * row.precision:>8.1f}"
            f"{100 * row.recall:>8.1f}{100 * row.f1:>8.1f}{lift:>8}"
        )
        previous_f1 = row.f1
    return "\n".join(lines)
