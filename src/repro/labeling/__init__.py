"""The labeling-function interface layer.

This package reproduces the paper's "flexible interface for sources"
(Section 2.1): hand-written Python labeling functions, declarative operators
(patterns, dictionaries, distant supervision from ontologies, weak
classifiers), labeling-function generators, an applier producing the label
matrix Λ, and analysis utilities (coverage / overlap / conflict / accuracy).

Label matrices come with two storage backends.  The default is a dense
integer array; ``LabelMatrix.to_sparse()`` (or ``LFApplier.apply(...,
sparse=True)``) switches to :class:`repro.labeling.sparse.SparseLabelMatrix`,
a CSR-style store of only the non-abstain entries.  Every consumer dispatches
on the backend automatically — dense call sites keep working unchanged, while
the label-model hot paths consume the sparse storage without densifying.

LF application itself runs on the :mod:`repro.labeling.engine` execution
engine: an execution plan (chunking policy) drives pluggable executors
(``sequential`` / ``threads`` / ``processes``) whose per-chunk CSR triple
blocks are merged deterministically, so ``LFApplier.apply`` streams over any
candidate iterable without materializing it.
"""

from repro.labeling.analysis import LFAnalysis
from repro.labeling.applier import (
    PUSHDOWN_MODES,
    VALIDATE_MODES,
    ApplyReport,
    LFApplier,
    TransportSummary,
)
from repro.labeling.declarative import (
    dictionary_lf,
    keyword_lf,
    lf_search,
    pattern_lf,
    weak_classifier_lf,
)
from repro.labeling.engine import ExecutionPlan, run_plan
from repro.labeling.generators import CrowdWorkerLFGenerator, OntologyLFGenerator
from repro.labeling.lf import LabelingFunction, labeling_function
from repro.labeling.matrix import LabelMatrix
from repro.labeling.pushdown import PushdownPlan, PushdownSummary, build_plan
from repro.labeling.sparse import SparseLabelMatrix

__all__ = [
    "ApplyReport",
    "PUSHDOWN_MODES",
    "VALIDATE_MODES",
    "PushdownPlan",
    "PushdownSummary",
    "TransportSummary",
    "build_plan",
    "ExecutionPlan",
    "run_plan",
    "SparseLabelMatrix",
    "LabelingFunction",
    "labeling_function",
    "lf_search",
    "pattern_lf",
    "keyword_lf",
    "dictionary_lf",
    "weak_classifier_lf",
    "OntologyLFGenerator",
    "CrowdWorkerLFGenerator",
    "LFApplier",
    "LabelMatrix",
    "LFAnalysis",
]
