"""Labeling-function analysis: the feedback loop of LF development.

``LFAnalysis`` computes, per labeling function, the statistics Snorkel's
notebook interface reports to users while they iterate: coverage, overlap
(how often another LF also votes), conflict (how often another LF disagrees),
and — when a small labeled development set is available — empirical accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.labeling.matrix import LabelMatrix
from repro.types import ABSTAIN, validate_ground_truth


@dataclass(frozen=True)
class LFSummary:
    """Per-LF summary statistics."""

    name: str
    coverage: float
    overlap: float
    conflict: float
    polarity: tuple[int, ...]
    empirical_accuracy: Optional[float] = None
    num_labeled: int = 0


class LFAnalysis:
    """Compute coverage / overlap / conflict / accuracy summaries for Λ."""

    def __init__(self, label_matrix: LabelMatrix) -> None:
        self.label_matrix = label_matrix

    # ------------------------------------------------------------- matrix-level
    def coverage(self) -> float:
        """Fraction of candidates receiving at least one label."""
        return self.label_matrix.coverage()

    def label_density(self) -> float:
        """Mean non-abstaining labels per candidate."""
        return self.label_matrix.label_density()

    def overlap_fraction(self) -> float:
        """Fraction of candidates labeled by at least two LFs."""
        counts = self.label_matrix.non_abstain_mask.sum(axis=1)
        if counts.size == 0:
            return 0.0
        return float((counts >= 2).mean())

    def conflict_fraction(self) -> float:
        """Fraction of candidates where two non-abstaining LFs disagree."""
        values = self.label_matrix.values
        conflicts = np.zeros(values.shape[0], dtype=bool)
        for i in range(values.shape[0]):
            row = values[i][values[i] != ABSTAIN]
            conflicts[i] = row.size > 1 and np.unique(row).size > 1
        if conflicts.size == 0:
            return 0.0
        return float(conflicts.mean())

    # ----------------------------------------------------------------- per-LF
    def lf_coverages(self) -> np.ndarray:
        """Per-LF coverage."""
        return self.label_matrix.lf_coverage()

    def lf_overlaps(self) -> np.ndarray:
        """Per-LF fraction of its labeled candidates also labeled by another LF."""
        values = self.label_matrix.values
        non_abstain = values != ABSTAIN
        row_counts = non_abstain.sum(axis=1)
        overlaps = np.zeros(values.shape[1])
        for j in range(values.shape[1]):
            labeled = non_abstain[:, j]
            if labeled.sum() == 0:
                overlaps[j] = 0.0
            else:
                overlaps[j] = float((row_counts[labeled] >= 2).mean())
        return overlaps

    def lf_conflicts(self) -> np.ndarray:
        """Per-LF fraction of its labeled candidates where some other LF disagrees."""
        values = self.label_matrix.values
        non_abstain = values != ABSTAIN
        conflicts = np.zeros(values.shape[1])
        for j in range(values.shape[1]):
            labeled_rows = np.flatnonzero(non_abstain[:, j])
            if labeled_rows.size == 0:
                continue
            disagree = 0
            for i in labeled_rows:
                others = values[i][non_abstain[i]]
                if np.any(others != values[i, j]):
                    disagree += 1
            conflicts[j] = disagree / labeled_rows.size
        return conflicts

    def lf_empirical_accuracies(
        self, gold_labels: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Per-LF accuracy on non-abstained candidates w.r.t. gold labels.

        LFs that never vote on the labeled set get accuracy ``nan``.
        """
        gold = validate_ground_truth(gold_labels, cardinality=self.label_matrix.cardinality)
        if gold.shape[0] != self.label_matrix.num_candidates:
            raise ValueError(
                f"gold labels have length {gold.shape[0]}, expected "
                f"{self.label_matrix.num_candidates}"
            )
        values = self.label_matrix.values
        accuracies = np.full(values.shape[1], np.nan)
        for j in range(values.shape[1]):
            voted = values[:, j] != ABSTAIN
            if voted.sum() == 0:
                continue
            accuracies[j] = float((values[voted, j] == gold[voted]).mean())
        return accuracies

    def summary(
        self, gold_labels: Optional[Sequence[int] | np.ndarray] = None
    ) -> list[LFSummary]:
        """Full per-LF summary table."""
        coverages = self.lf_coverages()
        overlaps = self.lf_overlaps()
        conflicts = self.lf_conflicts()
        polarities = self.label_matrix.lf_polarity()
        accuracies = (
            self.lf_empirical_accuracies(gold_labels) if gold_labels is not None else None
        )
        num_labeled = len(gold_labels) if gold_labels is not None else 0
        summaries = []
        for j, name in enumerate(self.label_matrix.lf_names):
            summaries.append(
                LFSummary(
                    name=name,
                    coverage=float(coverages[j]),
                    overlap=float(overlaps[j]),
                    conflict=float(conflicts[j]),
                    polarity=tuple(polarities[j]),
                    empirical_accuracy=(
                        None
                        if accuracies is None or np.isnan(accuracies[j])
                        else float(accuracies[j])
                    ),
                    num_labeled=num_labeled,
                )
            )
        return summaries

    def summary_table(
        self, gold_labels: Optional[Sequence[int] | np.ndarray] = None
    ) -> str:
        """Human-readable summary table (the notebook-style LF report)."""
        rows = self.summary(gold_labels)
        header = f"{'LF':<40}{'Cov.':>8}{'Overlap':>10}{'Conflict':>10}{'Acc.':>8}"
        lines = [header, "-" * len(header)]
        for row in rows:
            empirical = row.empirical_accuracy
            accuracy = f"{empirical:.2f}" if empirical is not None else "  -"
            lines.append(
                f"{row.name:<40}{row.coverage:>8.2f}{row.overlap:>10.2f}"
                f"{row.conflict:>10.2f}{accuracy:>8}"
            )
        return "\n".join(lines)
