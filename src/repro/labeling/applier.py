"""Applying labeling functions over candidates to produce the label matrix Λ.

Snorkel's execution model applies LFs in an embarrassingly parallel fashion:
the master process hands candidate keys to workers, each worker materializes
its candidates and runs the LFs, and labels are returned to the master.  The
:class:`LFApplier` reproduces this structure with deterministic chunking (a
stand-in for worker partitioning) and an optional fault policy controlling
whether an LF exception aborts the run or is recorded as an abstention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import SparseLabelMatrix
from repro.types import ABSTAIN


@dataclass
class ApplyReport:
    """Statistics from one application run.

    Attributes
    ----------
    num_candidates, num_lfs:
        Shape of the produced label matrix.
    num_chunks:
        Number of candidate chunks processed (the "worker partitions").
    errors:
        Mapping ``lf name -> number of suppressed exceptions`` (only populated
        when ``fault_tolerant=True``).
    """

    num_candidates: int = 0
    num_lfs: int = 0
    num_chunks: int = 0
    errors: dict[str, int] = field(default_factory=dict)

    @property
    def num_errors(self) -> int:
        """Total number of suppressed labeling-function exceptions."""
        return sum(self.errors.values())


class LFApplier:
    """Applies a fixed list of labeling functions over candidates.

    Parameters
    ----------
    lfs:
        Labeling functions to apply; their order fixes the column order of Λ.
    fault_tolerant:
        When ``True``, exceptions raised by an LF on a candidate are counted
        and converted to abstentions instead of aborting the run.
    chunk_size:
        Number of candidates per execution chunk.  Chunking mirrors the
        paper's parallel execution model and keeps per-chunk progress
        reporting cheap; results are independent of the chunk size.
    """

    def __init__(
        self,
        lfs: Sequence[LabelingFunction],
        fault_tolerant: bool = False,
        chunk_size: int = 1024,
    ) -> None:
        if not lfs:
            raise LabelingError("LFApplier requires at least one labeling function")
        names = [lf.name for lf in lfs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise LabelingError(f"duplicate labeling function names: {sorted(duplicates)}")
        if chunk_size <= 0:
            raise LabelingError(f"chunk_size must be positive, got {chunk_size}")
        self.lfs = list(lfs)
        self.fault_tolerant = fault_tolerant
        self.chunk_size = chunk_size
        self.last_report: Optional[ApplyReport] = None

    @property
    def lf_names(self) -> list[str]:
        """Column names of the produced label matrix."""
        return [lf.name for lf in self.lfs]

    def apply(self, candidates: Sequence, sparse: bool = False) -> LabelMatrix:
        """Apply every LF to every candidate and return the label matrix Λ.

        With ``sparse=True`` the non-abstain outputs are accumulated as
        ``(row, col, value)`` triples and the returned matrix uses the CSR
        storage backend — the dense ``(m, n)`` array is never materialized,
        so memory scales with the number of emitted labels rather than with
        ``m·n``.  The labels themselves are identical in both modes.
        """
        candidates = list(candidates)
        report = ApplyReport(num_candidates=len(candidates), num_lfs=len(self.lfs))
        if sparse:
            rows: list[int] = []
            cols: list[int] = []
            vals: list[int] = []
        else:
            matrix = np.full((len(candidates), len(self.lfs)), ABSTAIN, dtype=np.int64)
        for chunk_start in range(0, len(candidates), self.chunk_size):
            chunk = candidates[chunk_start : chunk_start + self.chunk_size]
            report.num_chunks += 1
            for offset, candidate in enumerate(chunk):
                row = chunk_start + offset
                for column, lf in enumerate(self.lfs):
                    label = self._apply_one(lf, candidate, report)
                    if sparse:
                        if label != ABSTAIN:
                            rows.append(row)
                            cols.append(column)
                            vals.append(label)
                    else:
                        matrix[row, column] = label
        self.last_report = report
        cardinality = max((lf.cardinality for lf in self.lfs), default=2)
        if sparse:
            storage = SparseLabelMatrix.from_triples(
                rows, cols, vals, (len(candidates), len(self.lfs))
            )
            return LabelMatrix(storage, lf_names=self.lf_names, cardinality=cardinality)
        return LabelMatrix(matrix, lf_names=self.lf_names, cardinality=cardinality)

    def _apply_one(self, lf: LabelingFunction, candidate, report: ApplyReport) -> int:
        # Catch every Exception, not just LabelingError: user LFs are black
        # boxes and may raise anything (KeyError, AttributeError, ...).  A
        # fault-tolerant run converts all of them to abstentions and counts
        # them; KeyboardInterrupt/SystemExit are not Exception subclasses and
        # still propagate.
        try:
            return lf(candidate)
        except Exception:
            if not self.fault_tolerant:
                raise
            report.errors[lf.name] = report.errors.get(lf.name, 0) + 1
            return ABSTAIN
