"""Applying labeling functions over candidates to produce the label matrix Λ.

Snorkel's execution model applies LFs in an embarrassingly parallel fashion:
the master process hands candidate partitions to workers, each worker runs
the LF suite over its partition, and the emitted labels are merged back at
the master.  This module is the thin facade over the real implementation,
the :mod:`repro.labeling.engine` package, which factors that model into
three pieces:

* an **execution plan** (:class:`repro.labeling.engine.ExecutionPlan`) fixing
  the chunking policy, the executor backend, the worker count, and the fault
  policy;
* pluggable **executors** — ``sequential`` (in-process loop), ``threads``
  (``concurrent.futures``), and ``processes`` (the persistent worker runtime
  of :mod:`repro.labeling.engine.runtime`: long-lived workers shared across
  applies, with chunks moving over a pickle or shared-memory ``transport``)
  — that schedule chunks with a bounded in-flight window;
* a per-chunk **accumulator** that collects each worker's non-abstain labels
  as CSR triple blocks and merges them deterministically at the end.

Because chunks are drawn lazily from the input, ``apply`` accepts *any*
iterable of candidates — a list, a generator, a database cursor — and never
materializes the full candidate list; with ``sparse=True`` the dense
``(m, n)`` array is never materialized either, so memory is bounded by the
emitted labels plus the in-flight window.  Results are bit-identical across
backends and input types: same labels, same error counts, same matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine import ExecutionPlan, label_and_featurize_chunk, run_plan
from repro.labeling.engine.accumulator import LFErrorDetail, apply_chunk
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import SparseLabelMatrix
from repro.types import ABSTAIN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.analysis.diagnostics import AnalysisReport
    from repro.discriminative.featurizers import RelationFeaturizer
    from repro.discriminative.sparse_features import CSRFeatureMatrix
    from repro.labeling.blockstore import ChunkCheckpointer
    from repro.labeling.pushdown import PushdownPlan, PushdownSummary

#: Accepted values for ``LFApplier(validate=...)`` / ``PipelineConfig.lf_validate``.
VALIDATE_MODES = ("off", "warn", "error")

#: Accepted values for ``LFApplier(pushdown=...)`` / ``PipelineConfig.lf_pushdown``.
#: ``"off"`` interprets every LF; ``"auto"`` compiles what the analyzer and
#: compiler admit and falls back per-LF; ``"require"`` raises if any LF in
#: the suite cannot be compiled, naming each offender and why.
PUSHDOWN_MODES = ("off", "auto", "require")


@dataclass
class ApplyReport:
    """Statistics from one application run.

    Attributes
    ----------
    num_candidates, num_lfs:
        Shape of the produced label matrix.
    num_chunks:
        Number of candidate chunks processed (the "worker partitions").
    errors:
        Mapping ``lf name -> number of suppressed exceptions`` (only populated
        when ``fault_tolerant=True``), merged across workers in chunk order.
    error_details:
        Per-LF exception breakdown behind ``errors``: counts per exception
        class plus the first retained traceback, in chunk order (see
        :class:`repro.labeling.engine.accumulator.LFErrorDetail`).
    backend:
        Executor backend that ran the chunks.
    num_workers:
        Worker count the executor used (1 for the sequential backend).
    chunk_seconds:
        Per-chunk wall-clock seconds, in chunk order (not completion order).
    lf_seconds:
        Per-LF wall-clock totals, summed over chunks in chunk order.  Under
        pushdown, shared per-chunk work (field extraction, token indexes) is
        charged to the first LF that triggers it, so these are attribution
        totals, not marginal costs.
    analysis:
        The static-analysis report produced by ``validate="warn"|"error"``
        before the run, or ``None`` when validation was off.
    pushdown:
        Compiled/fallback partition and per-tier seconds for a pushdown run
        (see :class:`repro.labeling.pushdown.PushdownSummary`), or ``None``
        when ``pushdown="off"``.
    transport_seconds:
        Per-chunk serialization/copy seconds, in chunk order — disjoint from
        ``chunk_seconds`` (pure compute).  All zeros for the in-process
        backends, where chunks never cross a process boundary.
    transport:
        Run-level split of where time went (see :class:`TransportSummary`).
    """

    num_candidates: int = 0
    num_lfs: int = 0
    num_chunks: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    error_details: dict[str, LFErrorDetail] = field(default_factory=dict)
    backend: str = "sequential"
    num_workers: int = 1
    chunk_seconds: list[float] = field(default_factory=list)
    lf_seconds: dict[str, float] = field(default_factory=dict)
    analysis: Optional["AnalysisReport"] = None
    pushdown: Optional["PushdownSummary"] = None
    transport_seconds: list[float] = field(default_factory=list)
    transport: Optional["TransportSummary"] = None

    @property
    def num_errors(self) -> int:
        """Total number of suppressed labeling-function exceptions."""
        return sum(self.errors.values())

    @property
    def total_chunk_seconds(self) -> float:
        """Summed per-chunk work time (exceeds wall clock under parallelism)."""
        return float(sum(self.chunk_seconds))


@dataclass
class TransportSummary:
    """How one apply run split its time between moving bytes and computing
    (``ApplyReport.transport``), in the style of ``ApplyReport.pushdown``.

    ``mode`` is the resolved chunk transport: ``"inline"`` for the
    in-process backends (nothing crosses a process boundary, so
    ``transport_seconds`` is 0), ``"pickle"`` or ``"shm"`` for the
    processes backend.  ``transport_seconds`` sums the per-chunk
    serialization/copy time (master-side pickling of candidates, worker
    decode/encode, master-side result claim); ``compute_seconds`` sums the
    per-chunk task time.  The two are disjoint, so their ratio says whether
    a run is transport-bound — the signal for switching ``transport`` or
    growing ``chunk_size``.
    """

    mode: str = "inline"
    compute_seconds: float = 0.0
    transport_seconds: float = 0.0

    @property
    def transport_fraction(self) -> float:
        """Share of accounted time spent moving bytes, in ``[0, 1]``."""
        total = self.compute_seconds + self.transport_seconds
        return self.transport_seconds / total if total else 0.0


class LFApplier:
    """Applies a fixed list of labeling functions over candidates.

    Parameters
    ----------
    lfs:
        Labeling functions to apply; their order fixes the column order of Λ.
        All LFs must agree on cardinality — mixed-cardinality suites raise
        :class:`LabelingError` at construction.
    fault_tolerant:
        When ``True``, exceptions raised by an LF on a candidate are counted
        and converted to abstentions instead of aborting the run.
    chunk_size:
        Number of candidates per execution chunk (worker partition).  Results
        are independent of the chunk size.
    backend:
        Executor backend: ``"sequential"`` (default), ``"threads"``, or
        ``"processes"``.  See :mod:`repro.labeling.engine` for the tradeoffs;
        the process backend requires picklable candidates.
    num_workers:
        Worker count for the pool backends (``None`` = one per available
        CPU); ignored by the sequential backend.
    validate:
        Static-analysis gate run once per apply call, before any candidate
        is labeled (see :mod:`repro.analysis`).  ``"off"`` (default) skips
        it; ``"warn"`` attaches the :class:`AnalysisReport` to the
        :class:`ApplyReport` and prints nothing; ``"error"`` additionally
        raises :class:`LabelingError` when any ERROR-severity diagnostic is
        found (out-of-range labels, unseeded randomness, global mutation).
    pushdown:
        Columnar-kernel execution of the suite (see
        :mod:`repro.labeling.pushdown`).  ``"off"`` (default) interprets
        every LF per candidate; ``"auto"`` compiles every LF the analyzer
        classifies ``COMPILABLE`` and the compiler accepts into vectorized
        kernels — the rest run interpreted, per LF, inside the same chunk
        task; ``"require"`` raises :class:`LabelingError` before labeling
        anything if any LF cannot be compiled, naming each offender with
        the analyzer's or compiler's reason.  Labels, error counts, and
        error breakdowns are bit-identical to ``"off"`` in every mode, for
        every backend and chunk size.
    transport:
        Chunk transport of the processes backend (see
        :data:`repro.labeling.engine.plan.TRANSPORTS`): ``"pickle"`` moves
        chunks/results as pickled bytes over each worker's pipe, ``"shm"``
        moves the bulk bytes through reusable shared-memory slots, and
        ``"auto"`` (default) picks ``shm`` when available.  Results are
        bit-identical across transports; in-process backends ignore it.
    chunk_timeout:
        Soft per-chunk deadline in seconds for the processes backend: past
        it the worker draws a warning, past the escalation point it is
        killed and the chunk resubmitted (EN101) instead of stalling the
        run forever.  ``None`` (default) waits indefinitely; in-process
        backends ignore it.
    """

    def __init__(
        self,
        lfs: Sequence[LabelingFunction],
        fault_tolerant: bool = False,
        chunk_size: int = 1024,
        backend: str = "sequential",
        num_workers: Optional[int] = 1,
        validate: str = "off",
        pushdown: str = "off",
        transport: str = "auto",
        chunk_timeout: Optional[float] = None,
    ) -> None:
        if not lfs:
            raise LabelingError("LFApplier requires at least one labeling function")
        names = [lf.name for lf in lfs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise LabelingError(f"duplicate labeling function names: {sorted(duplicates)}")
        cardinalities = sorted({lf.cardinality for lf in lfs})
        if len(cardinalities) > 1:
            raise LabelingError(
                f"labeling functions disagree on cardinality: {cardinalities}; "
                "an LF suite must label one task"
            )
        if validate not in VALIDATE_MODES:
            raise LabelingError(
                f"unknown validate mode {validate!r}; expected one of {VALIDATE_MODES}"
            )
        if pushdown not in PUSHDOWN_MODES:
            raise LabelingError(
                f"unknown pushdown mode {pushdown!r}; expected one of {PUSHDOWN_MODES}"
            )
        # Eager validation of chunk_size / backend / num_workers; the plan is
        # rebuilt from the (public, mutable) attributes on every apply.
        ExecutionPlan(
            chunk_size=chunk_size,
            backend=backend,
            num_workers=num_workers,
            fault_tolerant=fault_tolerant,
            transport=transport,
            chunk_timeout=chunk_timeout,
        )
        self.lfs = list(lfs)
        self.cardinality = cardinalities[0]
        self.fault_tolerant = fault_tolerant
        self.chunk_size = chunk_size
        self.backend = backend
        self.num_workers = num_workers
        self.validate = validate
        self.pushdown = pushdown
        self.transport = transport
        self.chunk_timeout = chunk_timeout
        self.last_report: Optional[ApplyReport] = None
        # Compiled plans keyed by the identity of the LF suite (the public
        # ``lfs`` attribute is mutable); hit again on every apply call with
        # an unchanged suite, so compilation cost is paid once per suite.
        self._pushdown_plans: dict[tuple, "PushdownPlan"] = {}
        # Worker-spec payloads cached by suite/featurizer identity: the
        # persistent pool dedups attaches on payload *identity*, so repeat
        # applies must present the same payload object to stay warm (no
        # re-ship, no worker-side rebuild).
        self._spec_payloads: dict[tuple, object] = {}

    def _validate_suite(self) -> Optional["AnalysisReport"]:
        """Run the static-analysis pass the ``validate`` mode asks for.

        Analysis cost is per-LF, not per-candidate — one pass before the run,
        however large the candidate stream is.  Returns the report (attached
        to the :class:`ApplyReport` afterwards) or ``None`` when off.
        """
        if self.validate == "off":
            return None
        from repro.analysis import analyze_suite

        report = analyze_suite(
            self.lfs, cardinality=self.cardinality, backend=self.backend
        )
        if self.validate == "error" and report.has_errors:
            raise LabelingError(
                "labeling-function validation failed "
                f"({len(report.errors)} error diagnostic(s)):\n{report.format()}"
            )
        return report

    def _pushdown_plan(self) -> Optional["PushdownPlan"]:
        """Build (or fetch) the compiled plan the ``pushdown`` mode asks for.

        ``"require"`` turns an incomplete partition into an error listing
        every non-compiled LF with the analyzer's OPAQUE detail or the
        compiler's refusal, so the offender can be rewritten or the mode
        relaxed to ``"auto"``.
        """
        if self.pushdown == "off":
            return None
        from repro.labeling.pushdown import build_plan

        key = (tuple(id(lf) for lf in self.lfs), self.cardinality, self.backend)
        plan = self._pushdown_plans.get(key)
        if plan is None:
            plan = build_plan(
                self.lfs, cardinality=self.cardinality, backend=self.backend
            )
            self._pushdown_plans[key] = plan
        if self.pushdown == "require" and plan.fallback:
            reasons = "\n".join(
                f"  - {name}: {plan.fallback_reasons[name]}"
                for name in plan.fallback_names
            )
            raise LabelingError(
                f'pushdown="require" but {len(plan.fallback)} labeling '
                f"function(s) could not be compiled:\n{reasons}"
            )
        return plan

    def _engine_task(
        self,
        pushdown_plan: Optional["PushdownPlan"],
        featurizer: Optional["RelationFeaturizer"] = None,
    ) -> tuple:
        """Select the chunk task, master payload, and worker ``TaskSpec``.

        The master payload runs in-process (sequential/threads); the
        :class:`~repro.labeling.engine.runtime.TaskSpec` describes the same
        work for the persistent worker pool.  For pushdown runs the spec
        ships *configuration, not the plan*: a compiled
        :class:`PushdownPlan` holds kernel closures that cannot cross a
        pipe, so workers receive ``(lfs, cardinality, backend)`` and compile
        their own (deterministically identical) plan once at attach time.
        Spec payloads are cached per suite/featurizer identity so repeat
        applies hit the pool's attach dedup and never re-ship.
        """
        from repro.labeling.engine import TaskSpec

        key = (
            tuple(id(lf) for lf in self.lfs),
            self.cardinality,
            self.backend,
            None if featurizer is None else id(featurizer),
            pushdown_plan is not None,
        )
        if pushdown_plan is not None:
            from repro.labeling.pushdown import (
                build_fused_worker_payload,
                build_worker_payload,
                label_chunk_pushdown,
                label_pushdown_and_featurize_chunk,
            )

            if featurizer is None:
                cfg = self._spec_payloads.setdefault(
                    key, (tuple(self.lfs), self.cardinality, self.backend)
                )
                return (
                    pushdown_plan,
                    label_chunk_pushdown,
                    TaskSpec(
                        task=label_chunk_pushdown,
                        payload=cfg,
                        builder=build_worker_payload,
                    ),
                )
            cfg = self._spec_payloads.setdefault(
                key, (tuple(self.lfs), self.cardinality, self.backend, featurizer)
            )
            return (
                (pushdown_plan, featurizer),
                label_pushdown_and_featurize_chunk,
                TaskSpec(
                    task=label_pushdown_and_featurize_chunk,
                    payload=cfg,
                    builder=build_fused_worker_payload,
                ),
            )
        if featurizer is None:
            # A fresh copy keyed on per-LF identity, not ``self.lfs`` itself:
            # the pool dedups attaches on payload id, and in-place suite
            # mutation (``applier.lfs[0] = other``) keeps the list's id — a
            # copy per LF-identity key makes mutation yield a new payload and
            # a fresh worker-side attach instead of a stale suite.
            payload = self._spec_payloads.setdefault(key, list(self.lfs))
            return self.lfs, apply_chunk, TaskSpec(task=apply_chunk, payload=payload)
        payload = self._spec_payloads.setdefault(key, (self.lfs, featurizer))
        return (
            payload,
            label_and_featurize_chunk,
            TaskSpec(task=label_and_featurize_chunk, payload=payload),
        )

    @property
    def lf_names(self) -> list[str]:
        """Column names of the produced label matrix."""
        return [lf.name for lf in self.lfs]

    def _build_report(
        self, result, analysis, pushdown_plan: Optional["PushdownPlan"]
    ) -> ApplyReport:
        pushdown_summary = None
        if pushdown_plan is not None:
            from repro.labeling.pushdown import PushdownSummary

            pushdown_summary = PushdownSummary.from_run(
                pushdown_plan, result.lf_seconds
            )
        transport_summary = TransportSummary(
            mode=result.transport,
            compute_seconds=float(sum(result.chunk_seconds)),
            transport_seconds=float(sum(result.transport_seconds)),
        )
        return ApplyReport(
            num_candidates=result.num_candidates,
            num_lfs=len(self.lfs),
            num_chunks=result.num_chunks,
            errors=result.errors,
            error_details=result.error_details,
            backend=result.backend,
            num_workers=result.num_workers,
            chunk_seconds=result.chunk_seconds,
            lf_seconds=result.lf_seconds,
            analysis=analysis,
            pushdown=pushdown_summary,
            transport_seconds=result.transport_seconds,
            transport=transport_summary,
        )

    def apply(self, candidates: Iterable, sparse: bool = False) -> LabelMatrix:
        """Apply every LF to every candidate and return the label matrix Λ.

        ``candidates`` may be any iterable; generators are consumed chunk by
        chunk and the full candidate list is never materialized.  With
        ``sparse=True`` the non-abstain outputs are accumulated as CSR triple
        blocks and the returned matrix uses the CSR storage backend — the
        dense ``(m, n)`` array is never materialized, so memory scales with
        the number of emitted labels rather than with ``m·n``.  The labels
        themselves are identical in both modes and across all backends.
        """
        analysis = self._validate_suite()
        dense_sink: Optional[np.ndarray] = None
        transform = None
        if not sparse and isinstance(candidates, Sequence):
            # Dense output with a known row count: scatter each chunk's
            # triples into the result as it arrives and release them, so the
            # run never holds the full triple set next to the dense matrix
            # (at high coverage the triples are 3x the matrix itself).
            dense_sink = np.full(
                (len(candidates), len(self.lfs)), ABSTAIN, dtype=np.int64
            )

            def transform(result):
                dense_sink[result.row_offsets + result.start_row, result.cols] = result.values
                return result.stripped()

        plan = ExecutionPlan(
            chunk_size=self.chunk_size,
            backend=self.backend,
            num_workers=self.num_workers,
            fault_tolerant=self.fault_tolerant,
            transport=self.transport,
            chunk_timeout=self.chunk_timeout,
        )
        pushdown_plan = self._pushdown_plan()
        payload, task, spec = self._engine_task(pushdown_plan)
        result = run_plan(
            payload, candidates, plan, transform=transform, task=task, spec=spec
        )
        self.last_report = self._build_report(result, analysis, pushdown_plan)
        shape = (result.num_candidates, len(self.lfs))
        if sparse:
            storage = SparseLabelMatrix.from_triples(
                result.rows, result.cols, result.values, shape
            )
            return LabelMatrix(storage, lf_names=self.lf_names, cardinality=self.cardinality)
        if dense_sink is not None:
            matrix = dense_sink
        else:
            matrix = np.full(shape, ABSTAIN, dtype=np.int64)
            matrix[result.rows, result.cols] = result.values
        return LabelMatrix(matrix, lf_names=self.lf_names, cardinality=self.cardinality)

    def apply_with_features(
        self,
        candidates: Iterable,
        featurizer: "RelationFeaturizer",
        sparse: bool = False,
        checkpoint: Optional["ChunkCheckpointer"] = None,
    ) -> tuple[LabelMatrix, Sequence["CSRFeatureMatrix"]]:
        """Label *and* featurize every candidate in one streaming pass.

        The fused engine task (:func:`repro.labeling.engine.tasks.
        label_and_featurize_chunk`) runs the LF suite and the fitted
        ``featurizer`` over each chunk; the label triples merge into Λ
        exactly as in :meth:`apply`, while each chunk's feature triples are
        claimed on arrival (master-side, via the accumulator ``transform``)
        as a chunk-ordered :class:`CSRFeatureMatrix` block.  Neither the
        candidate list nor any dense ``(m, d)`` feature matrix is ever
        materialized — this is the streaming pipeline's single pass over a
        candidate generator.  Labels, feature values, and block order are
        identical for every backend and chunk size.

        With ``checkpoint`` (a :class:`repro.labeling.blockstore.
        ChunkCheckpointer`), every chunk's result is made durable before
        being consumed, already-durable chunks are replayed from disk
        instead of recomputed (crash resume), and the returned blocks are a
        re-iterable :class:`~repro.labeling.blockstore.StoredFeatureBlocks`
        view — mmap-backed, so epoch replay holds one block at a time
        instead of the whole feature set.
        """
        from repro.discriminative.sparse_features import CSRFeatureMatrix

        analysis = self._validate_suite()
        featurizer.require_fitted()
        output_dim = featurizer.output_dim
        num_lfs = len(self.lfs)
        feature_blocks: dict[int, CSRFeatureMatrix] = {}
        # Dense-label runs scatter each chunk on arrival into a growing sink
        # (the generator's total row count is unknown upfront), mirroring
        # apply()'s scatter-on-arrival path: label triples are released per
        # chunk instead of accumulating next to the dense matrix until the
        # merge.  The transform runs in the master thread for every backend.
        dense_sink: Optional[np.ndarray] = None if sparse else np.full(
            (0, num_lfs), ABSTAIN, dtype=np.int64
        )

        def transform(result):
            nonlocal dense_sink
            block = result.features
            # Chunks the checkpointer holds durably are served from disk
            # later (mmap) — retaining them in RAM would defeat the spill.
            # Everything else (no checkpointer, or a write that failed and
            # disabled it) stays in RAM as before.
            if checkpoint is None or result.index not in checkpoint.completed:
                feature_blocks[result.index] = CSRFeatureMatrix.from_triples(
                    block.row_offsets,
                    block.cols,
                    block.values,
                    (block.num_candidates, output_dim),
                )
            if dense_sink is None:
                result.features = None
                return result
            needed = result.start_row + result.num_candidates
            if dense_sink.shape[0] < needed:
                grown = np.full(
                    (max(needed, 2 * dense_sink.shape[0]), num_lfs),
                    ABSTAIN,
                    dtype=np.int64,
                )
                grown[: dense_sink.shape[0]] = dense_sink
                dense_sink = grown
            dense_sink[result.row_offsets + result.start_row, result.cols] = result.values
            return result.stripped()

        plan = ExecutionPlan(
            chunk_size=self.chunk_size,
            backend=self.backend,
            num_workers=self.num_workers,
            fault_tolerant=self.fault_tolerant,
            transport=self.transport,
            chunk_timeout=self.chunk_timeout,
        )
        pushdown_plan = self._pushdown_plan()
        payload, task, spec = self._engine_task(pushdown_plan, featurizer)
        result = run_plan(
            payload,
            candidates,
            plan,
            transform=transform,
            task=task,
            spec=spec,
            checkpoint=checkpoint,
        )
        self.last_report = self._build_report(result, analysis, pushdown_plan)
        shape = (result.num_candidates, num_lfs)
        if sparse:
            storage = SparseLabelMatrix.from_triples(
                result.rows, result.cols, result.values, shape
            )
            label_matrix = LabelMatrix(
                storage, lf_names=self.lf_names, cardinality=self.cardinality
            )
        else:
            matrix = dense_sink
            if matrix.shape[0] != result.num_candidates:
                matrix = matrix[: result.num_candidates].copy()
            label_matrix = LabelMatrix(
                matrix, lf_names=self.lf_names, cardinality=self.cardinality
            )
        if checkpoint is not None:
            from repro.labeling.blockstore import StoredFeatureBlocks

            blocks: Sequence[CSRFeatureMatrix] = StoredFeatureBlocks(
                checkpoint, result.num_chunks, output_dim, overrides=feature_blocks
            )
        else:
            blocks = [feature_blocks[index] for index in sorted(feature_blocks)]
        return label_matrix, blocks
