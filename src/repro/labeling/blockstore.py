"""Crash-safe disk store for the streaming pipeline's intermediate blocks.

The fused labeling pass produces one :class:`ChunkResult` per chunk — label
triples, and for ``apply_with_features`` a CSR feature block riding along.
Keeping those in RAM (the pre-block-store design) means a killed run loses
everything and the feature-block list bounds the corpus size.  This module
makes the blocks durable the moment they arrive at the master, with three
layers:

:class:`BlockStore`
    A directory of immutable block files plus a JSON-lines index.  Each
    ``put`` assembles the block (magic, JSON header describing the named
    arrays, 64-byte-aligned raw payloads) in memory, writes it to a temp
    file, fsyncs, renames into place, fsyncs the directory, and only then
    appends a checksummed index record (fsynced) — so a record in the index
    implies a complete, verifiable file, and a crash at any byte leaves
    either a durable block or recoverable garbage, never a trusted torn
    block.  Opening a store replays the index, drops the torn tail a
    mid-append crash can leave, verifies every referenced file against its
    recorded size and crc32, deletes corrupt/orphaned/temp files, and
    compacts the index.  Reads are ``np.memmap`` views: replaying a block is
    page-cache traffic, not recompute.

:class:`ChunkCheckpointer`
    The engine-facing wrapper: records each :class:`ChunkResult` (via
    :func:`detach_arrays`, so the exact transported arrays are what's
    stored) under ``chunk/<split>/<index>``, knows which chunk indices are
    durably complete, and reloads them as results indistinguishable from
    freshly computed ones — the replayed result flows through the same
    accumulator transform chain, which is what makes a resumed run
    bit-identical to an uninterrupted one.  A full disk degrades rather
    than kills: the first failed write warns and disables further
    checkpointing, and the labeling run continues in RAM.

:class:`StoredFeatureBlocks`
    A re-iterable sequence view over the stored feature blocks, building
    each chunk's :class:`CSRFeatureMatrix` from the mmapped triples on
    access.  ``fit_stream`` iterates it once per epoch with constant
    memory — the unlock for corpora whose sparse features outgrow RAM.

Fault-injection hooks (:mod:`repro.labeling.engine.faults`) are threaded
through the write path so the crash-recovery gate can deterministically
produce torn blocks, full disks, and mid-pass master deaths.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import warnings
import zlib
from collections.abc import Sequence
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine import faults
from repro.labeling.engine.accumulator import (
    ChunkResult,
    attach_arrays,
    detach_arrays,
)

__all__ = [
    "BlockStore",
    "ChunkCheckpointer",
    "EpochCheckpoint",
    "RETENTION_POLICIES",
    "StoredFeatureBlocks",
]

#: First bytes of every block file; bumping the trailing digit invalidates
#: all existing stores (they recover as empty, chunks re-execute).
MAGIC = b"RBLK1\n"

#: Array payloads are aligned to this many bytes within the block file so a
#: memmap view of any standard dtype is well-aligned.
ALIGN = 64

#: Keys are path-like identifiers; ``/`` separates namespaces and maps to a
#: filename-safe character on disk.
_KEY_RE = re.compile(r"^[A-Za-z0-9._/-]+$")

#: Space-reclamation policies for long-lived stores (see
#: :class:`BlockStore`'s ``retention`` parameter).
RETENTION_POLICIES = ("keep_all", "latest_epoch")

#: Appended index records between inline compactions, relative to the live
#: record count: once the index holds more than ``max(_COMPACT_SLACK,
#: ratio * live)`` lines, it is rewritten in place.  Bounds the index growth
#: of a long-lived open store (pre-PR-10 the index only compacted on open,
#: so every superseding ``put`` leaked one line forever).
_COMPACT_SLACK = 64
_COMPACT_RATIO = 4


def _key_family(key: str) -> str:
    """The retention grouping of a key: everything before its last segment.

    ``online/state/v7`` and ``online/state/v9`` share the family
    ``online/state``, so ``retention="latest_epoch"`` treats them as
    snapshots of one logical object.
    """
    return key.rsplit("/", 1)[0] if "/" in key else key


def _key_filename(key: str) -> str:
    return key.replace("/", "~") + ".blk"


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class BlockStore:
    """Atomic, checksummed, mmap-readable storage of named-array blocks.

    Layout under ``root``::

        index.jsonl          one JSON record per durable block (appended,
                             fsynced; compacted on open)
        blocks/<key>.blk     immutable block files (written via temp +
                             rename; ``*.tmp`` files are crash residue and
                             deleted on open)

    An index record ``{"key", "file", "size", "crc"}`` is the commit point:
    it is appended only after the block file is durably in place, and a
    block file is trusted only when its size and crc32 match a record.
    Re-``put`` of an existing key atomically replaces the file and appends
    a superseding record (last record wins on replay).  :meth:`delete`
    reclaims a key durably: the block file is unlinked and a tombstone
    record is appended (compacted away at the next index rewrite) — a crash
    at any point between the two leaves either a verifiable live block or a
    key recovery drops, never a trusted ghost.

    ``retention`` controls space reclamation for long-lived stores:

    * ``"keep_all"`` (default) — nothing is deleted except by explicit
      :meth:`delete` / :meth:`clear`.
    * ``"latest_epoch"`` — a ``put(..., epoch=E)`` eagerly deletes every
      other epoch-stamped key of the same *family* (the key minus its last
      ``/`` segment) with a lower epoch, and opening a store prunes stale
      epochs left behind by a ``keep_all`` writer.  Epoch snapshots and
      versioned model states stop accumulating dead block files.

    Independently of the policy, the live index is compacted inline once
    its appended records outnumber the surviving keys by a fixed ratio, so
    an unboundedly long run no longer grows ``index.jsonl`` without bound.
    """

    def __init__(self, root: str, retention: str = "keep_all") -> None:
        if retention not in RETENTION_POLICIES:
            raise LabelingError(
                f"retention must be one of {RETENTION_POLICIES}, got {retention!r}"
            )
        self.root = os.path.abspath(root)
        self.retention = retention
        self.blocks_dir = os.path.join(self.root, "blocks")
        self.index_path = os.path.join(self.root, "index.jsonl")
        os.makedirs(self.blocks_dir, exist_ok=True)
        self._records: dict[str, dict] = {}
        #: Ordinal of the next ``put`` in this process — the trigger index
        #: for write-path fault rules (``disk_full@N`` etc.).
        self._write_ordinal = 0
        self._appends_since_compact = 0
        self._recover()
        self._index_file = open(self.index_path, "a", encoding="utf-8")
        if self.retention == "latest_epoch":
            self._prune_stale_epochs()

    # ------------------------------------------------------------- recovery
    def _recover(self) -> None:
        """Replay the index, verify every block, delete what can't be trusted."""
        records: dict[str, dict] = {}
        if os.path.exists(self.index_path):
            with open(self.index_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    # A crash mid-append leaves one torn trailing line; it
                    # (and anything after a corruption) is simply not durable.
                    try:
                        record = json.loads(line)
                    except ValueError:
                        break
                    if not isinstance(record, dict) or "key" not in record:
                        break
                    if record.get("deleted"):
                        records.pop(record["key"], None)
                    else:
                        records[record["key"]] = record
        for key in list(records):
            record = records[key]
            path = os.path.join(self.blocks_dir, record["file"])
            if not self._verify(path, record):
                del records[key]
                if os.path.exists(path):
                    os.unlink(path)
        referenced = {record["file"] for record in records.values()}
        for name in os.listdir(self.blocks_dir):
            if name not in referenced:
                os.unlink(os.path.join(self.blocks_dir, name))
        self._records = records
        self._compact()

    @staticmethod
    def _verify(path: str, record: dict) -> bool:
        try:
            if os.path.getsize(path) != record["size"]:
                return False
            crc = 0
            with open(path, "rb") as handle:
                while True:
                    piece = handle.read(1 << 20)
                    if not piece:
                        break
                    crc = zlib.crc32(piece, crc)
            return crc == record["crc"]
        except OSError:
            return False

    def _compact(self) -> None:
        """Atomically rewrite the index with only the surviving records.

        Run once at open: removes superseded/invalid records and — the part
        correctness depends on — any torn trailing line, so this process's
        appends never extend a corrupt tail.
        """
        tmp = self.index_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in self._records.values():
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp, self.index_path)
        _fsync_dir(self.root)
        self._appends_since_compact = 0
        # The rename replaced the index inode.  An open append handle would
        # keep writing to the unlinked old file, silently losing every
        # commit record appended afterwards — reattach it.
        handle = getattr(self, "_index_file", None)
        if handle is not None and not handle.closed:
            handle.close()
            self._index_file = open(self.index_path, "a", encoding="utf-8")

    def _append_record(self, record: dict) -> None:
        """Durably append one index line, compacting when the slack runs out."""
        self._index_file.write(json.dumps(record) + "\n")
        self._index_file.flush()
        os.fsync(self._index_file.fileno())
        self._appends_since_compact += 1
        if self._appends_since_compact > max(
            _COMPACT_SLACK, _COMPACT_RATIO * len(self._records)
        ):
            self._compact()

    # --------------------------------------------------------------- writes
    def put(
        self,
        key: str,
        arrays: dict[str, np.ndarray],
        meta: Optional[dict] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Durably store named arrays (plus JSON-safe ``meta``) under ``key``.

        ``epoch`` stamps the record with a supersession ordinal: under
        ``retention="latest_epoch"`` this put then deletes every other
        epoch-stamped key of the same family with a lower epoch.
        """
        if not _KEY_RE.match(key):
            raise LabelingError(f"bad block key {key!r}")
        ordinal = self._write_ordinal
        self._write_ordinal += 1
        faults.maybe_disk_full(ordinal)
        payload = self._encode(key, arrays, meta or {})
        name = _key_filename(key)
        path = os.path.join(self.blocks_dir, name)
        tmp = path + f".{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.rename(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        _fsync_dir(self.blocks_dir)
        # Injected post-rename corruption: the index record below keeps the
        # *intended* crc, so the torn block is detected (and re-executed)
        # when the store is next opened.
        faults.corrupt_block_file(path, ordinal)
        record = {
            "key": key,
            "file": name,
            "size": len(payload),
            "crc": zlib.crc32(payload),
        }
        if epoch is not None:
            record["epoch"] = int(epoch)
        self._records[key] = record
        self._append_record(record)
        faults.maybe_die_at_block(ordinal)
        if self.retention == "latest_epoch" and epoch is not None:
            self._prune_family(key, int(epoch))

    @staticmethod
    def _encode(key: str, arrays: dict[str, np.ndarray], meta: dict) -> bytes:
        specs = []
        buffer = io.BytesIO()
        # Header length depends on the offsets, which depend on the header
        # length — resolve with payload offsets relative to the payload
        # section, whose absolute start is recorded once in the header.
        offset = 0
        chunks: list[bytes] = []
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            pad = (-offset) % ALIGN
            chunks.append(b"\x00" * pad)
            offset += pad
            raw = array.tobytes()
            specs.append(
                {
                    "name": name,
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                    "nbytes": len(raw),
                }
            )
            chunks.append(raw)
            offset += len(raw)
        header = json.dumps({"key": key, "meta": meta, "arrays": specs}).encode()
        buffer.write(MAGIC)
        buffer.write(len(header).to_bytes(8, "little"))
        buffer.write(header)
        for chunk in chunks:
            buffer.write(chunk)
        return buffer.getvalue()

    def delete(self, key: str) -> bool:
        """Durably remove a key: tombstone the index record, unlink the file.

        Crash-safe in either half: a tombstone without the unlink leaves an
        unreferenced file recovery sweeps; an unlink without the tombstone
        leaves a record whose verification fails, so recovery drops it.
        Returns whether the key existed.
        """
        record = self._records.pop(key, None)
        if record is None:
            return False
        self._append_record({"key": key, "deleted": True})
        path = os.path.join(self.blocks_dir, record["file"])
        if os.path.exists(path):
            os.unlink(path)
        return True

    def prune(self, prefix: str) -> int:
        """Delete every key under a ``/``-separated namespace prefix."""
        head = prefix.rstrip("/") + "/"
        stale = [key for key in self._records if key.startswith(head) or key == prefix]
        for key in stale:
            self.delete(key)
        return len(stale)

    def _prune_family(self, key: str, epoch: int) -> None:
        """Delete the other epoch-stamped keys of ``key``'s family below ``epoch``."""
        family = _key_family(key)
        stale = [
            other
            for other, record in self._records.items()
            if other != key
            and record.get("epoch") is not None
            and record["epoch"] < epoch
            and _key_family(other) == family
        ]
        for other in stale:
            self.delete(other)

    def _prune_stale_epochs(self) -> None:
        """Keep only each family's newest epoch (run when opening with
        ``retention="latest_epoch"``, so stores written under ``keep_all``
        shrink to their live snapshots)."""
        newest: dict[str, int] = {}
        for key, record in self._records.items():
            epoch = record.get("epoch")
            if epoch is not None:
                family = _key_family(key)
                newest[family] = max(newest.get(family, epoch), epoch)
        stale = [
            key
            for key, record in self._records.items()
            if record.get("epoch") is not None
            and record["epoch"] < newest[_key_family(key)]
        ]
        for key in stale:
            self.delete(key)

    # ---------------------------------------------------------------- reads
    def get(self, key: str) -> tuple[dict[str, np.ndarray], dict]:
        """Load ``key``'s arrays as read-only ``np.memmap`` views, plus meta."""
        record = self._records.get(key)
        if record is None:
            raise LabelingError(f"block {key!r} not in store {self.root}")
        path = os.path.join(self.blocks_dir, record["file"])
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise LabelingError(f"block file {path} has bad magic")
            header_len = int.from_bytes(handle.read(8), "little")
            header = json.loads(handle.read(header_len))
        base = len(MAGIC) + 8 + header_len
        arrays: dict[str, np.ndarray] = {}
        for spec in header["arrays"]:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(spec["shape"])
            if spec["nbytes"]:
                arrays[spec["name"]] = np.memmap(
                    path, dtype=dtype, mode="r", offset=base + spec["offset"], shape=shape
                )
            else:
                arrays[spec["name"]] = np.empty(shape, dtype=dtype)
        return arrays, header["meta"]

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> list[str]:
        return sorted(self._records)

    # ------------------------------------------------------- pickle helpers
    def put_pickle(self, key: str, obj: object, epoch: Optional[int] = None) -> None:
        """Store an arbitrary picklable object (phase checkpoints)."""
        blob = np.frombuffer(pickle.dumps(obj), dtype=np.uint8)
        self.put(key, {"pickle": blob}, epoch=epoch)

    def get_pickle(self, key: str) -> object:
        arrays, _ = self.get(key)
        return pickle.loads(arrays["pickle"].tobytes())

    # ------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Drop every block (used when a store's fingerprint is stale)."""
        self._records = {}
        for name in os.listdir(self.blocks_dir):
            os.unlink(os.path.join(self.blocks_dir, name))
        self._compact()

    def close(self) -> None:
        if not self._index_file.closed:
            self._index_file.close()

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ChunkCheckpointer:
    """Durable per-chunk checkpoints of one labeling pass over one split.

    ``record`` persists a freshly computed :class:`ChunkResult` before the
    accumulator transform consumes it; ``load`` reconstructs a durably
    recorded one (triple arrays as memmap views) so a resumed run can feed
    it through the identical transform chain.  ``completed`` is the set of
    chunk indices the store holds — the executor skips exactly these.

    A failed write (disk full, permissions) disables the checkpointer with
    a single warning instead of aborting the labeling run: durability
    degrades, correctness doesn't.
    """

    def __init__(self, store: BlockStore, split: str) -> None:
        self.store = store
        self.split = split
        self.disabled = False
        prefix = f"chunk/{split}/"
        self.completed = {
            int(key[len(prefix):])
            for key in store.keys()
            if key.startswith(prefix) and key[len(prefix):].isdigit()
        }

    def _key(self, index: int) -> str:
        return f"chunk/{self.split}/{index}"

    def record(self, result: ChunkResult) -> None:
        if self.disabled or result.index in self.completed:
            return
        meta, arrays = detach_arrays(result)
        named = {"meta": np.frombuffer(pickle.dumps(meta), dtype=np.uint8)}
        for position, array in enumerate(arrays):
            named[f"a{position}"] = array
        try:
            self.store.put(self._key(result.index), named, {"arrays": len(arrays)})
        except OSError as exc:
            warnings.warn(
                f"chunk checkpointing disabled after write failure on chunk "
                f"{result.index} ({exc}); the run continues without durability",
                RuntimeWarning,
                stacklevel=2,
            )
            self.disabled = True
            return
        self.completed.add(result.index)

    def load(self, index: int) -> ChunkResult:
        arrays, meta = self.store.get(self._key(index))
        chunk_meta = pickle.loads(arrays["meta"].tobytes())
        ordered = [arrays[f"a{position}"] for position in range(meta["arrays"])]
        return attach_arrays(chunk_meta, ordered)

    def prune_beyond(self, num_chunks: int) -> int:
        """Delete stored chunks at index >= ``num_chunks``.

        A shorter stream under the same fingerprint (fewer candidates this
        run) leaves the earlier run's high-index chunk blocks dead on disk;
        the pipeline calls this after a completed pass when the store's
        retention policy reclaims space.  Returns the number deleted.
        """
        stale = sorted(index for index in self.completed if index >= num_chunks)
        for index in stale:
            self.store.delete(self._key(index))
            self.completed.discard(index)
        return len(stale)


class EpochCheckpoint:
    """Durable per-epoch training state for one end-model fit.

    The trainers (see ``_train_minibatches`` in the discriminative models)
    call :meth:`save` after every completed epoch with their full update
    state — packed parameters, optimizer moments, epoch count — and
    :meth:`load` on entry.  A resumed fit re-draws its RNG initialization
    (keeping the RNG stream identical to the uninterrupted run) and then
    overwrites everything from the snapshot, so the minibatch updates it
    replays from ``state["epoch"]`` onward are bit-identical.

    Like :class:`ChunkCheckpointer`, a failed save degrades durability with
    one warning instead of aborting training.
    """

    def __init__(self, store: BlockStore, name: str) -> None:
        if not _KEY_RE.match(name):
            raise LabelingError(f"bad epoch checkpoint name {name!r}")
        self.store = store
        self.key = f"epoch/{name}"
        self.disabled = False

    def load(self) -> Optional[dict]:
        """The last durably saved state, or ``None`` for a fresh fit."""
        if self.key not in self.store:
            return None
        state = self.store.get_pickle(self.key)
        if not isinstance(state, dict) or "epoch" not in state:
            return None
        return state

    def save(self, state: dict) -> None:
        """Durably replace the snapshot; ``state["epoch"]`` = epochs done."""
        if self.disabled:
            return
        try:
            self.store.put_pickle(self.key, state)
        except OSError as exc:
            warnings.warn(
                f"epoch checkpointing disabled after write failure at epoch "
                f"{state.get('epoch')} ({exc}); training continues without "
                f"durability",
                RuntimeWarning,
                stacklevel=2,
            )
            self.disabled = True
            return
        # Crash *after* the durable save: the resumed run starts from this
        # epoch.  The hook ordinal is the 0-based index of the epoch that
        # just completed.
        faults.maybe_die_at_epoch(int(state["epoch"]) - 1)


class StoredFeatureBlocks(Sequence):
    """Re-iterable, mmap-backed view of a split's stored feature blocks.

    Each access rebuilds chunk ``i``'s :class:`CSRFeatureMatrix` from the
    store — the triple arrays are memmap views, so an epoch over the whole
    sequence touches the page cache instead of recomputing the fused pass,
    and holds at most one block's CSR structure at a time.
    """

    def __init__(
        self,
        checkpointer: ChunkCheckpointer,
        num_blocks: int,
        output_dim: int,
        overrides: Optional[dict] = None,
    ) -> None:
        # ``overrides`` covers the degraded case where checkpointing was
        # disabled mid-run (disk full): chunks the store missed stay in RAM
        # as already-built matrices and are served from here instead.
        self._overrides = dict(overrides or {})
        missing = sorted(
            set(range(num_blocks)) - checkpointer.completed - set(self._overrides)
        )
        if missing:
            raise LabelingError(
                f"stored feature blocks incomplete: missing chunks {missing[:5]}"
                f"{'...' if len(missing) > 5 else ''}"
            )
        self._checkpointer = checkpointer
        self._num_blocks = num_blocks
        self._output_dim = output_dim

    def __len__(self) -> int:
        return self._num_blocks

    def __getitem__(self, index: int):
        from repro.discriminative.sparse_features import CSRFeatureMatrix

        if not 0 <= index < self._num_blocks:
            raise IndexError(index)
        if index in self._overrides:
            return self._overrides[index]
        block = self._checkpointer.load(index).features
        if block is None:
            raise LabelingError(
                f"stored chunk {index} has no feature block (was the pass fused?)"
            )
        return CSRFeatureMatrix.from_triples(
            block.row_offsets,
            block.cols,
            block.values,
            (block.num_candidates, self._output_dim),
        )

    def __iter__(self) -> Iterator:
        for index in range(self._num_blocks):
            yield self[index]
