"""Declarative labeling-function operators.

These helpers encode the most common weak-supervision function types the
paper's interface layer ships (Section 2.1): regex pattern search between the
candidate's argument spans, keyword presence, dictionary membership of the
argument pair (distant supervision), and wrapping a weak classifier.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Optional, Sequence

from repro.context.candidates import Candidate
from repro.labeling.lf import LabelingFunction
from repro.types import ABSTAIN, NEGATIVE, POSITIVE
from repro.utils.textutils import normalize


def lf_search(
    pattern: str,
    name: Optional[str] = None,
    label: int = POSITIVE,
    reverse_args: bool = False,
    source_type: str = "pattern",
) -> LabelingFunction:
    """Regex search between the two argument spans, mirroring the paper's
    ``lf_search("{{1}}.*\\Wcauses\\W.*{{2}}")`` declarative operator.

    The placeholders ``{{1}}`` and ``{{2}}`` denote the first and second
    argument span; the text searched is the token sequence between the two
    spans (in sentence order).  If the pattern matches:

    * when the first argument precedes the second, ``label`` is emitted,
    * when the arguments appear in reverse order, the negated label is
      emitted (or ``label`` itself when ``reverse_args`` is ``True``),
    * otherwise the LF abstains.
    """
    core = pattern.replace("{{1}}", "").replace("{{2}}", "").strip()
    compiled = re.compile(core, flags=re.IGNORECASE)
    lf_name = name or f"lf_search_{_slugify(core)}"

    def function(candidate: Candidate) -> int:
        between = candidate.text_between()
        if not compiled.search(between):
            return ABSTAIN
        if candidate.span1_precedes_span2():
            return label
        return label if reverse_args else -label

    return LabelingFunction(lf_name, function, source_type=source_type)


def pattern_lf(
    phrase: str,
    label: int = POSITIVE,
    name: Optional[str] = None,
    where: str = "between",
    window_size: int = 3,
    source_type: str = "pattern",
) -> LabelingFunction:
    """Phrase-presence labeling function.

    Parameters
    ----------
    phrase:
        Word or multi-word phrase to look for (case-insensitive).
    label:
        Label emitted when the phrase is found.
    where:
        ``"between"`` (default) searches the tokens between the argument
        spans; ``"left"`` / ``"right"`` search a window next to the earlier /
        later span; ``"sentence"`` searches the entire sentence.
    window_size:
        Window size for ``"left"`` / ``"right"``.
    """
    phrase_tokens = tuple(normalize(token) for token in phrase.split())
    lf_name = name or f"lf_{where}_{_slugify(phrase)}"

    def function(candidate: Candidate) -> int:
        if where == "between":
            tokens = candidate.words_between()
        elif where == "left":
            tokens = candidate.window_left(window_size)
        elif where == "right":
            tokens = candidate.window_right(window_size)
        elif where == "sentence":
            tokens = list(candidate.sentence.words)
        else:
            raise ValueError(f"unknown search scope {where!r}")
        normalized = [normalize(token) for token in tokens]
        return label if _contains_phrase(normalized, phrase_tokens) else ABSTAIN

    return LabelingFunction(lf_name, function, source_type=source_type)


def keyword_lf(
    keywords: Sequence[str],
    label: int = POSITIVE,
    name: Optional[str] = None,
    where: str = "between",
    source_type: str = "pattern",
) -> LabelingFunction:
    """Emit ``label`` when any of ``keywords`` occurs in the chosen scope."""
    keyword_set = {normalize(keyword) for keyword in keywords}
    lf_name = name or f"lf_keywords_{_slugify('_'.join(sorted(keyword_set))[:30])}"

    def function(candidate: Candidate) -> int:
        if where == "between":
            tokens = candidate.words_between()
        elif where == "sentence":
            tokens = list(candidate.sentence.words)
        else:
            raise ValueError(f"unknown search scope {where!r}")
        for token in tokens:
            if normalize(token) in keyword_set:
                return label
        return ABSTAIN

    return LabelingFunction(lf_name, function, source_type=source_type)


def dictionary_lf(
    pairs: Iterable[tuple[str, str]],
    label: int = POSITIVE,
    name: Optional[str] = None,
    use_canonical_ids: bool = True,
    source_type: str = "distant_supervision",
) -> LabelingFunction:
    """Distant supervision from a set of known entity pairs.

    Emits ``label`` when the candidate's argument pair occurs in ``pairs``.
    Matching is on canonical KB ids when available (and
    ``use_canonical_ids`` is True), otherwise on normalized surface text.
    """
    pair_set = {(normalize(a), normalize(b)) for a, b in pairs}
    lf_name = name or "lf_dictionary"

    def function(candidate: Candidate) -> int:
        if use_canonical_ids and candidate.span1.canonical_id and candidate.span2.canonical_id:
            key = (normalize(candidate.span1.canonical_id), normalize(candidate.span2.canonical_id))
        else:
            key = (normalize(candidate.span1.text), normalize(candidate.span2.text))
        return label if key in pair_set else ABSTAIN

    return LabelingFunction(lf_name, function, source_type=source_type)


def weak_classifier_lf(
    predict: Callable[[Candidate], float],
    threshold_positive: float = 0.7,
    threshold_negative: float = 0.3,
    name: Optional[str] = None,
    source_type: str = "classifier",
) -> LabelingFunction:
    """Wrap a weak classifier's positive-class score as a labeling function.

    Scores above ``threshold_positive`` vote positive, below
    ``threshold_negative`` vote negative, and in between the LF abstains —
    this is how low-coverage / noisy classifiers are used as label sources.
    """
    if not 0.0 <= threshold_negative <= threshold_positive <= 1.0:
        raise ValueError(
            "thresholds must satisfy 0 <= threshold_negative <= threshold_positive <= 1"
        )
    lf_name = name or "lf_weak_classifier"

    def function(candidate: Candidate) -> int:
        score = float(predict(candidate))
        if score >= threshold_positive:
            return POSITIVE
        if score <= threshold_negative:
            return NEGATIVE
        return ABSTAIN

    return LabelingFunction(lf_name, function, source_type=source_type)


def _contains_phrase(tokens: Sequence[str], phrase: Sequence[str]) -> bool:
    """True if ``phrase`` occurs contiguously in ``tokens``."""
    n = len(phrase)
    if n == 0:
        return False
    return any(tuple(tokens[i : i + n]) == tuple(phrase) for i in range(len(tokens) - n + 1))


def _slugify(text: str) -> str:
    """Make a safe LF-name fragment from free text."""
    return re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_").lower() or "anon"
