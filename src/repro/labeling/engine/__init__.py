"""The streaming, parallel labeling-function execution engine.

The engine splits LF application into three orthogonal pieces:

* a **plan** (:class:`ExecutionPlan`) — chunking/partitioning policy, backend
  choice, worker count, and fault policy;
* an **executor** (``sequential`` / ``threads`` / ``processes``, see
  :mod:`repro.labeling.engine.executors`) — how chunks are scheduled, with
  windowed submission bounding in-flight memory;
* an **accumulator** (:class:`CSRAccumulator`) — per-chunk CSR triple blocks
  merged deterministically into one global triple set.

:func:`run_plan` wires them together: candidates stream in (any iterable —
lists, generators, database cursors), chunks fan out to workers, triple
blocks fan back in, and the result is identical for every backend.  The
:class:`repro.labeling.applier.LFApplier` facade is the main consumer.
"""

from repro.labeling.engine.accumulator import ChunkResult, CSRAccumulator, apply_chunk
from repro.labeling.engine.executors import (
    ChunkTask,
    EngineResult,
    ProcessPoolChunkExecutor,
    SequentialExecutor,
    ThreadPoolChunkExecutor,
    get_executor,
    run_plan,
)
from repro.labeling.engine.plan import (
    BACKENDS,
    TRANSPORTS,
    Chunk,
    ExecutionPlan,
    available_workers,
    iter_chunks,
)
from repro.labeling.engine.runtime import (
    HAVE_SHM,
    TaskSpec,
    TransportCorruptionError,
    WorkerCrashError,
    WorkerPool,
    WorkerTimeoutError,
    get_global_pool,
    resolve_transport,
    run_attached_chunk,
    shutdown_pools,
)
from repro.labeling.engine.tasks import featurize_chunk, label_and_featurize_chunk

__all__ = [
    "BACKENDS",
    "Chunk",
    "ChunkResult",
    "ChunkTask",
    "CSRAccumulator",
    "EngineResult",
    "ExecutionPlan",
    "HAVE_SHM",
    "ProcessPoolChunkExecutor",
    "SequentialExecutor",
    "TRANSPORTS",
    "TaskSpec",
    "ThreadPoolChunkExecutor",
    "TransportCorruptionError",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTimeoutError",
    "apply_chunk",
    "available_workers",
    "featurize_chunk",
    "get_executor",
    "get_global_pool",
    "iter_chunks",
    "label_and_featurize_chunk",
    "resolve_transport",
    "run_attached_chunk",
    "run_plan",
    "shutdown_pools",
]
