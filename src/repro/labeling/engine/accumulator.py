"""Per-chunk labeling results and their out-of-core CSR accumulation.

Workers never touch the global label matrix: :func:`apply_chunk` runs the LF
suite over one chunk and returns a :class:`ChunkResult` holding the chunk's
non-abstain entries as *local* ``(row_offset, col, value)`` triple arrays plus
its suppressed-error counts and wall-clock time.  The master feeds every
result (in whatever completion order the executor produces) into a
:class:`CSRAccumulator`, which re-sorts by chunk index and concatenates the
triple blocks with their global row offsets applied — a merge that is O(nnz)
and independent of executor scheduling, so the final matrix and error report
are deterministic for every backend.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.types import ABSTAIN


@dataclass
class LFErrorDetail:
    """Per-LF record of the exceptions a fault-tolerant run suppressed.

    ``count`` mirrors the plain error tally; ``type_counts`` breaks it down
    by exception class name, and ``first_traceback`` retains the formatted
    traceback of the *first* suppressed exception (in chunk order) so
    analyzer warnings can be correlated with the runtime failure they
    predicted without re-running the LF.
    """

    count: int = 0
    type_counts: dict[str, int] = field(default_factory=dict)
    first_traceback: Optional[str] = None

    def record(self, exc_type_name: str, formatted_traceback: str) -> None:
        self.count += 1
        self.type_counts[exc_type_name] = self.type_counts.get(exc_type_name, 0) + 1
        if self.first_traceback is None:
            self.first_traceback = formatted_traceback

    def merge(self, other: "LFErrorDetail") -> None:
        """Fold ``other`` into this record (callers iterate in chunk order)."""
        self.count += other.count
        for name, count in other.type_counts.items():
            self.type_counts[name] = self.type_counts.get(name, 0) + count
        if self.first_traceback is None:
            self.first_traceback = other.first_traceback


@dataclass
class ChunkResult:
    """Triples emitted by one chunk, in chunk-local coordinates.

    The values are integer labels for the LF-application task and float
    feature values for the featurization task — the accumulator is
    dtype-agnostic.  A fused task (labels *and* features in one pass over
    the chunk) attaches its secondary block as ``features``; the primary
    triples always describe the label matrix.
    """

    index: int
    start_row: int
    num_candidates: int
    row_offsets: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    errors: dict[str, int] = field(default_factory=dict)
    #: Exception breakdown behind ``errors``: per-LF type counts plus the
    #: chunk's first retained traceback (fault-tolerant runs only).
    error_details: dict[str, LFErrorDetail] = field(default_factory=dict)
    seconds: float = 0.0
    #: Per-LF wall-clock seconds spent inside this chunk, keyed by LF name
    #: (``None`` for tasks that don't track it, e.g. featurization).
    lf_seconds: Optional[dict[str, float]] = None
    #: Wall-clock seconds spent moving this chunk between processes —
    #: serialization, shared-memory copies, and descriptor claims, summed
    #: over both directions.  ``0.0`` for in-process execution, where no
    #: transport happens; disjoint from ``seconds`` (pure compute).
    transport_seconds: float = 0.0
    #: Secondary triple block produced by a fused chunk task (e.g. the CSR
    #: feature block riding along with the labels); consumed master-side by
    #: a :class:`CSRAccumulator` ``transform`` and never merged here.
    features: "ChunkResult | None" = None

    def stripped(self) -> "ChunkResult":
        """Copy without the triple arrays (statistics only).

        For :class:`CSRAccumulator` ``transform`` consumers that scatter the
        triples elsewhere on arrival and only need the merge's bookkeeping.
        Any attached ``features`` block is dropped too — the consumer has
        already claimed it.
        """
        empty = np.empty(0, dtype=np.int64)
        return replace(self, row_offsets=empty, cols=empty, values=empty, features=None)


def detach_arrays(result: ChunkResult) -> tuple[ChunkResult, list[np.ndarray]]:
    """Split a result into (array-free metadata, its triple arrays).

    The shared-memory transport ships the returned arrays as raw blocks in a
    worker's inbound ring and only pickles the metadata through the pipe; the
    array order is fixed (primary ``row_offsets, cols, values``, then the
    same three for an attached ``features`` block) so
    :func:`attach_arrays` can reassemble the result from positional
    descriptors.  The original result is not mutated.
    """
    arrays = [result.row_offsets, result.cols, result.values]
    features = result.features
    if features is not None:
        arrays.extend([features.row_offsets, features.cols, features.values])
        features = replace(features, row_offsets=None, cols=None, values=None)
    meta = replace(
        result, row_offsets=None, cols=None, values=None, features=features
    )
    return meta, arrays


def attach_arrays(meta: ChunkResult, arrays: list[np.ndarray]) -> ChunkResult:
    """Inverse of :func:`detach_arrays`: claim transported arrays back."""
    result = replace(
        meta, row_offsets=arrays[0], cols=arrays[1], values=arrays[2]
    )
    if result.features is not None:
        result.features = replace(
            result.features,
            row_offsets=arrays[3],
            cols=arrays[4],
            values=arrays[5],
        )
    return result


def apply_chunk(
    lfs: Sequence,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: Sequence,
) -> ChunkResult:
    """Run every LF over one chunk of candidates (the worker kernel)."""
    start = time.perf_counter()
    row_offsets: list[int] = []
    cols: list[int] = []
    values: list[int] = []
    errors: dict[str, int] = {}
    error_details: dict[str, LFErrorDetail] = {}
    lf_times = [0.0] * len(lfs)
    for offset, candidate in enumerate(candidates):
        for column, lf in enumerate(lfs):
            lf_start = time.perf_counter()
            # Catch every Exception, not just LabelingError: user LFs are
            # black boxes and may raise anything (KeyError, AttributeError,
            # ...).  KeyboardInterrupt/SystemExit are not Exception
            # subclasses and still propagate.
            try:
                label = lf(candidate)
            except Exception as exc:
                if not fault_tolerant:
                    raise
                errors[lf.name] = errors.get(lf.name, 0) + 1
                detail = error_details.setdefault(lf.name, LFErrorDetail())
                # LabelingError wraps the user exception; report the original
                # class so the breakdown matches what the LF actually raised.
                cause = exc.__cause__ if isinstance(exc, LabelingError) and exc.__cause__ else exc
                detail.record(type(cause).__name__, traceback.format_exc())
                label = ABSTAIN
            lf_times[column] += time.perf_counter() - lf_start
            if label != ABSTAIN:
                row_offsets.append(offset)
                cols.append(column)
                values.append(label)
    return ChunkResult(
        index=index,
        start_row=start_row,
        num_candidates=len(candidates),
        row_offsets=np.asarray(row_offsets, dtype=np.int64),
        cols=np.asarray(cols, dtype=np.int64),
        values=np.asarray(values, dtype=np.int64),
        errors=errors,
        error_details=error_details,
        seconds=time.perf_counter() - start,
        lf_seconds={lf.name: lf_times[column] for column, lf in enumerate(lfs)},
    )


@dataclass
class MergedTriples:
    """The accumulator's output: global CSR triples plus run statistics."""

    num_candidates: int
    num_chunks: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    errors: dict[str, int]
    error_details: dict[str, LFErrorDetail]
    chunk_seconds: list[float]
    #: Per-LF wall-clock totals summed over chunks (empty when the task did
    #: not report per-LF timings).
    lf_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-chunk transport seconds, in chunk order (all zeros for in-process
    #: execution; see :attr:`ChunkResult.transport_seconds`).
    transport_seconds: list[float] = field(default_factory=list)


class CSRAccumulator:
    """Collects :class:`ChunkResult` blocks and merges them deterministically.

    Blocks may arrive in any order (pool executors complete out of order);
    the merge sorts by chunk index, applies each block's global row offset,
    and sums error counts in chunk order, so every backend produces the same
    triples, the same error totals, and the same per-chunk timing sequence.
    Memory is O(nnz) — the candidate chunks themselves are released as soon
    as their triples are extracted.

    ``transform``, when given, is applied to every block on arrival (always
    in the master thread/process) and its return value is stored instead —
    consumers that scatter a block's triples into their own structure can
    return a stripped block to release the triple arrays immediately, e.g.
    the applier's dense path, which would otherwise hold triples *and* the
    dense matrix at full coverage.
    """

    def __init__(self, transform: Optional[Callable[[ChunkResult], ChunkResult]] = None) -> None:
        self._results: dict[int, ChunkResult] = {}
        self._transform = transform

    def add(self, result: ChunkResult) -> None:
        """Record one chunk's output."""
        if result.index in self._results:
            raise LabelingError(f"chunk {result.index} accumulated twice")
        if self._transform is not None:
            result = self._transform(result)
        self._results[result.index] = result

    def merge(self) -> MergedTriples:
        """Combine all blocks into globally indexed CSR triples."""
        ordered = [self._results[index] for index in sorted(self._results)]
        expected_row = 0
        for result in ordered:
            if result.start_row != expected_row:
                raise LabelingError(
                    f"chunk {result.index} starts at row {result.start_row}, "
                    f"expected {expected_row} (missing or duplicated chunk?)"
                )
            expected_row += result.num_candidates
        rows = [result.row_offsets + result.start_row for result in ordered]
        errors: dict[str, int] = {}
        error_details: dict[str, LFErrorDetail] = {}
        lf_seconds: dict[str, float] = {}
        for result in ordered:
            for name, count in result.errors.items():
                errors[name] = errors.get(name, 0) + count
            # Chunk order makes the retained "first" traceback deterministic
            # for every backend, whatever the completion order was.
            for name, detail in result.error_details.items():
                error_details.setdefault(name, LFErrorDetail()).merge(detail)
            if result.lf_seconds:
                for name, spent in result.lf_seconds.items():
                    lf_seconds[name] = lf_seconds.get(name, 0.0) + spent
        empty = np.empty(0, dtype=np.int64)
        return MergedTriples(
            num_candidates=expected_row,
            num_chunks=len(ordered),
            rows=np.concatenate(rows) if rows else empty,
            cols=np.concatenate([r.cols for r in ordered]) if ordered else empty,
            values=np.concatenate([r.values for r in ordered]) if ordered else empty,
            errors=errors,
            error_details=error_details,
            chunk_seconds=[result.seconds for result in ordered],
            lf_seconds=lf_seconds,
            transport_seconds=[result.transport_seconds for result in ordered],
        )
