"""Pluggable chunk executors and the engine's top-level ``run_plan``.

Three executors implement the same contract — consume a lazy chunk stream,
run a **chunk task** on each unit, and feed every result into a
:class:`CSRAccumulator`.  A chunk task is any picklable callable with the
:func:`repro.labeling.engine.accumulator.apply_chunk` signature
``task(payload, fault_tolerant, index, start_row, candidates) ->
ChunkResult``; ``apply_chunk`` (the LF suite) is the default, and
:mod:`repro.labeling.engine.tasks` adds featurization and fused
label+featurize tasks that ride the same executors.  The executors are:

* :class:`SequentialExecutor` — the in-process loop (no pool overhead);
* :class:`ThreadPoolChunkExecutor` — ``concurrent.futures`` threads, the
  right choice for latency-bound LFs (I/O, external services) where workers
  overlap waiting rather than computation;
* :class:`ProcessPoolChunkExecutor` — CPU-bound work on the **persistent
  worker runtime** (:mod:`repro.labeling.engine.runtime`): a pool of
  long-lived processes shared by every run in this master process.  The
  task payload (LF list, featurizer, ...) is attached once as a
  :class:`~repro.labeling.engine.runtime.TaskSpec` (pickled when possible,
  inherited via ``fork`` respawn otherwise, so closures still work); the
  candidate chunks then travel over the plan's ``transport`` — pickled
  bytes on the pipe, or zero-copy-claimed ``multiprocessing.shared_memory``
  slots — and must be picklable.

The pool executors use windowed submission: at most ``plan.pending_limit()``
chunks are in flight, so a generator-fed run keeps bounded memory no matter
how large the stream is — chunks are drawn from the iterator only as workers
free up.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import cycle guard
    from repro.labeling.blockstore import ChunkCheckpointer
    from repro.labeling.engine.runtime import TaskSpec

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine.accumulator import (
    ChunkResult,
    CSRAccumulator,
    LFErrorDetail,
    apply_chunk,
)
from repro.labeling.engine.plan import Chunk, ExecutionPlan, iter_chunks


#: Signature of a chunk task: ``(payload, fault_tolerant, index, start_row,
#: candidates) -> ChunkResult``.  Must be picklable (a module-level function)
#: for the process backend.
ChunkTask = Callable[[object, bool, int, int, list], ChunkResult]


@dataclass
class EngineResult:
    """Everything one engine run produced (triples + execution statistics)."""

    num_candidates: int
    num_chunks: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    errors: dict[str, int]
    error_details: dict[str, LFErrorDetail]
    chunk_seconds: list[float]
    backend: str
    num_workers: int
    #: Per-LF wall-clock totals (summed over chunks; empty when the task
    #: does not report them, e.g. pure featurization).
    lf_seconds: dict[str, float] = field(default_factory=dict)
    #: Resolved chunk transport: ``"inline"`` for in-process backends,
    #: ``"pickle"`` or ``"shm"`` for the processes backend.
    transport: str = "inline"
    #: Per-chunk serialization/copy seconds, in chunk order — disjoint from
    #: ``chunk_seconds`` (pure compute), so transport overhead is
    #: attributable per run (all zeros for in-process backends).
    transport_seconds: list[float] = field(default_factory=list)


class SequentialExecutor:
    """Runs chunks one after another in the calling process."""

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
        spec: Optional["TaskSpec"] = None,
    ) -> None:
        for chunk in chunks:
            accumulator.add(
                task(payload, plan.fault_tolerant, chunk.index, chunk.start_row, chunk.candidates)
            )


def _windowed_submit(
    pool: Executor,
    submit: Callable[[Chunk], Future],
    chunks: Iterator[Chunk],
    accumulator: CSRAccumulator,
    limit: int,
) -> None:
    """Submit chunks with a bounded in-flight window; merge as they complete.

    On the first chunk failure the remaining stream is abandoned and queued
    work is cancelled, so a non-fault-tolerant run aborts promptly.
    """
    pending: set[Future] = set()
    try:
        for chunk in chunks:
            while len(pending) >= limit:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    accumulator.add(future.result())
            pending.add(submit(chunk))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                accumulator.add(future.result())
    finally:
        for future in pending:
            future.cancel()


class ThreadPoolChunkExecutor:
    """Executes chunks on a ``ThreadPoolExecutor``."""

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
        spec: Optional["TaskSpec"] = None,
    ) -> None:
        with ThreadPoolExecutor(max_workers=plan.effective_workers()) as pool:
            _windowed_submit(
                pool,
                lambda chunk: pool.submit(
                    task,
                    payload,
                    plan.fault_tolerant,
                    chunk.index,
                    chunk.start_row,
                    chunk.candidates,
                ),
                chunks,
                accumulator,
                plan.pending_limit(),
            )


class ProcessPoolChunkExecutor:
    """Executes chunks on the persistent worker runtime.

    Workers are **not** created per call: the executor borrows the
    per-process :func:`~repro.labeling.engine.runtime.get_global_pool` for
    ``plan.effective_workers()``, attaches the task/payload as a
    :class:`~repro.labeling.engine.runtime.TaskSpec` (a no-op when the same
    suite was attached before), and streams only chunk payloads over the
    plan's ``transport``.  Under the ``fork`` start method unpicklable
    payloads (closure LFs, compiled pushdown plans) still work — the pool
    respawns its workers once so the spec is inherited by memory.  Under
    ``spawn`` (macOS / Windows) the spec itself must be picklable.
    """

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
        spec: Optional["TaskSpec"] = None,
    ) -> None:
        from repro.labeling.engine import runtime

        if spec is None:
            spec = runtime.TaskSpec(task=task, payload=payload)
        spec = replace(spec, fault_tolerant=plan.fault_tolerant)
        pool = runtime.get_global_pool(plan.effective_workers())
        pool.run(
            spec,
            chunks,
            accumulator,
            transport=plan.transport,
            pending_limit=plan.pending_limit(),
            chunk_timeout=plan.chunk_timeout,
        )


_EXECUTORS = {
    "sequential": SequentialExecutor,
    "threads": ThreadPoolChunkExecutor,
    "processes": ProcessPoolChunkExecutor,
}


def get_executor(backend: str):
    """Instantiate the executor implementing ``backend``."""
    try:
        return _EXECUTORS[backend]()
    except KeyError:
        raise LabelingError(
            f"unknown executor backend {backend!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None


def run_plan(
    payload: object,
    candidates: Iterable,
    plan: ExecutionPlan,
    transform: Callable[[ChunkResult], ChunkResult] | None = None,
    task: ChunkTask = apply_chunk,
    spec: Optional["TaskSpec"] = None,
    checkpoint: Optional["ChunkCheckpointer"] = None,
) -> EngineResult:
    """Execute a chunk task over a candidate iterable under ``plan``.

    ``task`` defaults to :func:`apply_chunk` (the LF suite, with ``payload``
    the LF list); :mod:`repro.labeling.engine.tasks` provides featurization
    and fused label+featurize tasks for the same executors.  The candidate
    iterable is consumed lazily (chunk in, CSR triple block out); only the
    emitted triples, per-chunk statistics, and the bounded in-flight window
    are held in memory.  ``transform`` (see :class:`CSRAccumulator`) lets
    the caller consume each block's triples on arrival instead of keeping
    them for the final merge.

    ``spec`` is the worker-shippable description of the task for the
    processes backend (see :class:`~repro.labeling.engine.runtime.TaskSpec`)
    — callers whose master-side ``payload`` cannot cross a pipe (e.g. a
    compiled pushdown plan) pass a spec whose ``builder`` re-derives the
    payload worker-side from shipped configuration.  In-process backends run
    ``task(payload, ...)`` directly and ignore it.

    ``checkpoint`` (a :class:`repro.labeling.blockstore.ChunkCheckpointer`)
    makes the run crash-safe and resumable: every fresh result is recorded
    durably *before* ``transform`` consumes it, and chunks the store already
    holds are never handed to the executor — they are replayed from disk
    into the accumulator, through the same ``transform``, which is what
    makes a resumed run bit-identical to an uninterrupted one.  Chunking is
    deterministic (fixed ``chunk_size`` over the same stream), so chunk
    indices are stable identities across runs.
    """
    if checkpoint is not None:
        inner = transform

        def transform(result: ChunkResult) -> ChunkResult:
            checkpoint.record(result)
            return inner(result) if inner is not None else result

    accumulator = CSRAccumulator(transform=transform)
    chunks = iter_chunks(candidates, plan.chunk_size)
    if checkpoint is not None and checkpoint.completed:

        def replay_or_yield(stream):
            # Replayed results enter through accumulator.add, so they run
            # the identical transform chain as fresh ones (record() is a
            # no-op for indices already durable).
            for chunk in stream:
                if chunk.index in checkpoint.completed:
                    accumulator.add(checkpoint.load(chunk.index))
                else:
                    yield chunk

        chunks = replay_or_yield(chunks)
    executor = get_executor(plan.backend)
    executor.execute(plan, payload, chunks, accumulator, task, spec=spec)
    merged = accumulator.merge()
    if plan.backend == "processes":
        from repro.labeling.engine.runtime import resolve_transport

        transport = resolve_transport(plan.transport)
    else:
        transport = "inline"
    return EngineResult(
        num_candidates=merged.num_candidates,
        num_chunks=merged.num_chunks,
        rows=merged.rows,
        cols=merged.cols,
        values=merged.values,
        errors=merged.errors,
        error_details=merged.error_details,
        chunk_seconds=merged.chunk_seconds,
        backend=plan.backend,
        num_workers=plan.effective_workers(),
        lf_seconds=merged.lf_seconds,
        transport=transport,
        transport_seconds=merged.transport_seconds,
    )
