"""Pluggable chunk executors and the engine's top-level ``run_plan``.

Three executors implement the same contract — consume a lazy chunk stream,
run a **chunk task** on each unit, and feed every result into a
:class:`CSRAccumulator`.  A chunk task is any picklable callable with the
:func:`repro.labeling.engine.accumulator.apply_chunk` signature
``task(payload, fault_tolerant, index, start_row, candidates) ->
ChunkResult``; ``apply_chunk`` (the LF suite) is the default, and
:mod:`repro.labeling.engine.tasks` adds featurization and fused
label+featurize tasks that ride the same executors.  The executors are:

* :class:`SequentialExecutor` — the in-process loop (no pool overhead);
* :class:`ThreadPoolChunkExecutor` — ``concurrent.futures`` threads, the
  right choice for latency-bound LFs (I/O, external services) where workers
  overlap waiting rather than computation;
* :class:`ProcessPoolChunkExecutor` — ``concurrent.futures`` processes for
  CPU-bound work.  The task payload (LF list, featurizer, ...) travels to
  the workers through the pool initializer (with the ``fork`` start method
  it is inherited by memory and never pickled, so closures work); the
  candidate chunks go through the task queue and must be picklable.

The pool executors use windowed submission: at most ``plan.pending_limit()``
chunks are in flight, so a generator-fed run keeps bounded memory no matter
how large the stream is — chunks are drawn from the iterator only as workers
free up.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine.accumulator import (
    ChunkResult,
    CSRAccumulator,
    LFErrorDetail,
    apply_chunk,
)
from repro.labeling.engine.plan import Chunk, ExecutionPlan, iter_chunks


#: Signature of a chunk task: ``(payload, fault_tolerant, index, start_row,
#: candidates) -> ChunkResult``.  Must be picklable (a module-level function)
#: for the process backend.
ChunkTask = Callable[[object, bool, int, int, list], ChunkResult]


@dataclass
class EngineResult:
    """Everything one engine run produced (triples + execution statistics)."""

    num_candidates: int
    num_chunks: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    errors: dict[str, int]
    error_details: dict[str, LFErrorDetail]
    chunk_seconds: list[float]
    backend: str
    num_workers: int
    #: Per-LF wall-clock totals (summed over chunks; empty when the task
    #: does not report them, e.g. pure featurization).
    lf_seconds: dict[str, float] = field(default_factory=dict)


class SequentialExecutor:
    """Runs chunks one after another in the calling process."""

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
    ) -> None:
        for chunk in chunks:
            accumulator.add(
                task(payload, plan.fault_tolerant, chunk.index, chunk.start_row, chunk.candidates)
            )


def _windowed_submit(
    pool: Executor,
    submit: Callable[[Chunk], Future],
    chunks: Iterator[Chunk],
    accumulator: CSRAccumulator,
    limit: int,
) -> None:
    """Submit chunks with a bounded in-flight window; merge as they complete.

    On the first chunk failure the remaining stream is abandoned and queued
    work is cancelled, so a non-fault-tolerant run aborts promptly.
    """
    pending: set[Future] = set()
    try:
        for chunk in chunks:
            while len(pending) >= limit:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    accumulator.add(future.result())
            pending.add(submit(chunk))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                accumulator.add(future.result())
    finally:
        for future in pending:
            future.cancel()


class ThreadPoolChunkExecutor:
    """Executes chunks on a ``ThreadPoolExecutor``."""

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
    ) -> None:
        with ThreadPoolExecutor(max_workers=plan.effective_workers()) as pool:
            _windowed_submit(
                pool,
                lambda chunk: pool.submit(
                    task,
                    payload,
                    plan.fault_tolerant,
                    chunk.index,
                    chunk.start_row,
                    chunk.candidates,
                ),
                chunks,
                accumulator,
                plan.pending_limit(),
            )


# Worker-process state, populated once per worker by the pool initializer so
# the task payload (LF suite, featurizer, ...) is not re-pickled with every
# chunk.
_PROCESS_PAYLOAD: object = ()
_PROCESS_FAULT_TOLERANT = False
_PROCESS_TASK: ChunkTask = apply_chunk


def _process_worker_init(payload: object, fault_tolerant: bool, task: ChunkTask) -> None:
    global _PROCESS_PAYLOAD, _PROCESS_FAULT_TOLERANT, _PROCESS_TASK
    _PROCESS_PAYLOAD = payload
    _PROCESS_FAULT_TOLERANT = fault_tolerant
    _PROCESS_TASK = task


def _process_chunk_entry(index: int, start_row: int, candidates: list) -> ChunkResult:
    return _PROCESS_TASK(
        _PROCESS_PAYLOAD, _PROCESS_FAULT_TOLERANT, index, start_row, candidates
    )


class ProcessPoolChunkExecutor:
    """Executes chunks on a ``ProcessPoolExecutor``.

    Prefers the ``fork`` start method (Linux): worker initializer arguments
    are inherited by memory, so LFs built from closures or lambdas work
    unchanged.  Under ``spawn`` (macOS / Windows) the task payload itself
    must be picklable.
    """

    def execute(
        self,
        plan: ExecutionPlan,
        payload: object,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        task: ChunkTask = apply_chunk,
    ) -> None:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=plan.effective_workers(),
            mp_context=context,
            initializer=_process_worker_init,
            initargs=(payload, plan.fault_tolerant, task),
        ) as pool:
            _windowed_submit(
                pool,
                lambda chunk: pool.submit(
                    _process_chunk_entry, chunk.index, chunk.start_row, chunk.candidates
                ),
                chunks,
                accumulator,
                plan.pending_limit(),
            )


_EXECUTORS = {
    "sequential": SequentialExecutor,
    "threads": ThreadPoolChunkExecutor,
    "processes": ProcessPoolChunkExecutor,
}


def get_executor(backend: str):
    """Instantiate the executor implementing ``backend``."""
    try:
        return _EXECUTORS[backend]()
    except KeyError:
        raise LabelingError(
            f"unknown executor backend {backend!r}; expected one of {sorted(_EXECUTORS)}"
        ) from None


def run_plan(
    payload: object,
    candidates: Iterable,
    plan: ExecutionPlan,
    transform: Callable[[ChunkResult], ChunkResult] | None = None,
    task: ChunkTask = apply_chunk,
) -> EngineResult:
    """Execute a chunk task over a candidate iterable under ``plan``.

    ``task`` defaults to :func:`apply_chunk` (the LF suite, with ``payload``
    the LF list); :mod:`repro.labeling.engine.tasks` provides featurization
    and fused label+featurize tasks for the same executors.  The candidate
    iterable is consumed lazily (chunk in, CSR triple block out); only the
    emitted triples, per-chunk statistics, and the bounded in-flight window
    are held in memory.  ``transform`` (see :class:`CSRAccumulator`) lets
    the caller consume each block's triples on arrival instead of keeping
    them for the final merge.
    """
    accumulator = CSRAccumulator(transform=transform)
    executor = get_executor(plan.backend)
    executor.execute(plan, payload, iter_chunks(candidates, plan.chunk_size), accumulator, task)
    merged = accumulator.merge()
    return EngineResult(
        num_candidates=merged.num_candidates,
        num_chunks=merged.num_chunks,
        rows=merged.rows,
        cols=merged.cols,
        values=merged.values,
        errors=merged.errors,
        error_details=merged.error_details,
        chunk_seconds=merged.chunk_seconds,
        backend=plan.backend,
        num_workers=plan.effective_workers(),
        lf_seconds=merged.lf_seconds,
    )
