"""Deterministic fault injection for the engine runtime and block store.

The runtime claims to survive worker crashes, hung workers, torn
shared-memory slots, torn block-store writes, and full disks — claims that
are worthless untested, and untestable without a way to *cause* each
failure at an exact, reproducible point.  This module is that way: a fault
plan is a tiny spec string naming (action, trigger ordinal) pairs, parsed
from the ``REPRO_ENGINE_FAULTS`` environment variable so it crosses the
``fork`` boundary into pool workers for free, and every injection site in
the engine calls a hook here that is a no-op (one dict lookup) when no plan
is active.

Spec grammar — semicolon-separated rules, each ``action@ordinal`` with
optional ``:key=value`` options::

    kill@3                    SIGKILL the worker handed chunk 3
    hang@5:seconds=600        sleep inside chunk 5 (EN101 timeout fodder)
    corrupt_shm@2             flip a byte of chunk 2's shm slot after write
    corrupt_result@2          flip a byte of chunk 2's result ring blocks
    disk_full@4               the 5th block-store write raises ENOSPC
    corrupt_block@1           flip a byte of the 2nd durably written block
    die_block@6               SIGKILL the *master* after 7 durable blocks
    die_epoch@1               SIGKILL the master after 2 end-model epochs

Any rule takes ``:flag=/path`` — the fault then fires only while the flag
file does not exist, and creates it when it fires, so a fault-tolerant
resubmission (or a resumed run) sees the failure exactly once even across
processes.  ``install(spec)`` activates a plan process-wide (and, via the
environment, in workers forked afterwards); ``install(None)`` clears it.

The hooks are deliberately dumb: they decide *whether* to fire from the
plan and leave *what firing means* to one obvious line (``os.kill``, a byte
flip, ``OSError(ENOSPC)``) at the call site or here.  Determinism comes
from triggering on the engine's own ordinals (chunk index, block ordinal,
epoch number), never on wall clock or randomness.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import LabelingError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "corrupt_block_file",
    "corrupt_shm_slot",
    "install",
    "maybe_die_at_block",
    "maybe_die_at_epoch",
    "maybe_disk_full",
    "maybe_fail_chunk",
    "parse_plan",
]

#: Environment variable carrying the active fault spec.  Pool workers are
#: forked after :func:`install` sets it, so they inherit the plan without
#: any extra plumbing.
ENV_VAR = "REPRO_ENGINE_FAULTS"

#: Actions understood by :func:`parse_plan`, with the hook that honors each.
ACTIONS = (
    "kill",  # maybe_fail_chunk (worker side)
    "hang",  # maybe_fail_chunk (worker side)
    "corrupt_shm",  # corrupt_shm_slot (master side, outbound chunk bytes)
    "corrupt_result",  # corrupt_shm_slot (worker side, inbound result bytes)
    "disk_full",  # maybe_disk_full (block-store writes)
    "corrupt_block",  # corrupt_block_file (block-store durable files)
    "die_block",  # maybe_die_at_block (master SIGKILL after N durable blocks)
    "die_epoch",  # maybe_die_at_epoch (master SIGKILL after N epochs)
)

#: Default sleep of a ``hang`` rule — long enough that only the timeout
#: machinery (never the test suite outwaiting it) can end the run.
DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultRule:
    """One injected fault: fire ``action`` at trigger ordinal ``at``."""

    action: str
    at: int
    seconds: float = DEFAULT_HANG_SECONDS
    flag: Optional[str] = None

    def fires(self, ordinal: int) -> bool:
        """Whether the fault fires for this ordinal (honoring the flag file)."""
        if ordinal != self.at:
            return False
        if self.flag is None:
            return True
        if os.path.exists(self.flag):
            return False
        # Mark before firing: a fault that kills the process must not fire
        # again on the retry/resume that follows.
        open(self.flag, "w").close()
        return True


@dataclass(frozen=True)
class FaultPlan:
    """All rules of one spec, grouped by action."""

    rules: tuple[FaultRule, ...] = ()
    by_action: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        grouped: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            grouped.setdefault(rule.action, []).append(rule)
        self.by_action.update(grouped)

    def matching(self, action: str, ordinal: int) -> Optional[FaultRule]:
        for rule in self.by_action.get(action, ()):
            if rule.fires(ordinal):
                return rule
        return None


def parse_plan(spec: str) -> FaultPlan:
    """Parse a fault spec string (see the module docstring for the grammar)."""
    rules = []
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        head, _, options = token.partition(":")
        action, sep, ordinal = head.partition("@")
        if not sep or action not in ACTIONS:
            raise LabelingError(
                f"bad fault rule {token!r}: expected action@ordinal with action "
                f"in {ACTIONS}"
            )
        try:
            at = int(ordinal)
        except ValueError:
            raise LabelingError(f"bad fault ordinal in {token!r}") from None
        kwargs: dict = {}
        for option in filter(None, options.split(":")):
            key, sep, value = option.partition("=")
            if key == "seconds" and sep:
                kwargs["seconds"] = float(value)
            elif key == "flag" and sep:
                kwargs["flag"] = value
            else:
                raise LabelingError(f"bad fault option {option!r} in {token!r}")
        rules.append(FaultRule(action=action, at=at, **kwargs))
    return FaultPlan(rules=tuple(rules))


_CACHED: tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_plan() -> Optional[FaultPlan]:
    """The plan named by the environment, or ``None`` (the hot-path check)."""
    global _CACHED
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    if _CACHED[0] != spec:
        _CACHED = (spec, parse_plan(spec))
    return _CACHED[1]


def install(spec: Optional[str]) -> None:
    """Activate (or with ``None`` clear) a fault plan process-wide.

    Writes the environment variable so workers forked *after* this call
    inherit the plan; already-running workers keep the plan they were born
    with — call :func:`repro.labeling.engine.runtime.shutdown_pools` first
    when the faults must reach pool workers.
    """
    if spec:
        parse_plan(spec)  # fail fast on a bad spec
        os.environ[ENV_VAR] = spec
    else:
        os.environ.pop(ENV_VAR, None)


# ------------------------------------------------------------------ hooks
def maybe_fail_chunk(index: int) -> None:
    """Worker-side hook: SIGKILL or hang this worker on a matching chunk."""
    plan = active_plan()
    if plan is None:
        return
    if plan.matching("kill", index) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    rule = plan.matching("hang", index)
    if rule is not None:
        time.sleep(rule.seconds)


def corrupt_shm_slot(action: str, index: int, buf, offset: int, length: int) -> bool:
    """Flip one byte of ``buf[offset:offset+length]`` on a matching chunk.

    ``action`` is ``"corrupt_shm"`` (master corrupting the outbound chunk
    slot) or ``"corrupt_result"`` (worker corrupting its inbound result
    blocks).  Returns whether a byte was flipped — callers must *not* refresh
    their checksum afterwards; the mismatch is the point.
    """
    plan = active_plan()
    if plan is None or length == 0:
        return False
    if plan.matching(action, index) is None:
        return False
    position = offset + length // 2
    buf[position] = buf[position] ^ 0xFF
    return True


def maybe_disk_full(ordinal: int) -> None:
    """Block-store hook: raise ``ENOSPC`` for a matching write ordinal."""
    plan = active_plan()
    if plan is None:
        return
    if plan.matching("disk_full", ordinal) is not None:
        raise OSError(errno.ENOSPC, "injected disk-full fault")


def corrupt_block_file(path: str, ordinal: int) -> bool:
    """Flip one payload byte of a durably written block file (torn write)."""
    plan = active_plan()
    if plan is None:
        return False
    if plan.matching("corrupt_block", ordinal) is None:
        return False
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        byte = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return True


def maybe_die_at_block(ordinal: int) -> None:
    """Master-side hook: SIGKILL this process after a matching durable block."""
    plan = active_plan()
    if plan is None:
        return
    if plan.matching("die_block", ordinal) is not None:
        os.kill(os.getpid(), signal.SIGKILL)


def maybe_die_at_epoch(epoch: int) -> None:
    """Master-side hook: SIGKILL this process after a matching epoch."""
    plan = active_plan()
    if plan is None:
        return
    if plan.matching("die_epoch", epoch) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
