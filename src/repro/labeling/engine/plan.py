"""Execution plans: how a candidate stream is partitioned into work units.

An :class:`ExecutionPlan` is the declarative half of the labeling execution
engine — it fixes the chunking policy (how many candidates per work unit),
the executor backend (``sequential`` / ``threads`` / ``processes``), the
worker count, and the fault policy, without referencing any particular
candidate set.  :func:`iter_chunks` turns any candidate iterable into a lazy
stream of :class:`Chunk` work units; a ``Sequence`` input is sliced without
copying the whole list, and a generator is consumed incrementally via
``itertools.islice`` so the full candidate list is never materialized.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence

from repro.exceptions import LabelingError

#: Executor backends understood by the engine.
BACKENDS = ("sequential", "threads", "processes")

#: Chunk transports of the processes backend (see
#: :mod:`repro.labeling.engine.runtime`).  ``"pickle"`` moves chunks and
#: results as pickled bytes over each worker's pipe; ``"shm"`` moves the
#: bulk bytes/arrays through reusable ``multiprocessing.shared_memory``
#: slots with only descriptors on the pipe; ``"auto"`` picks ``shm`` when
#: the interpreter supports it.  Results are bit-identical across
#: transports; in-process backends ignore the setting.
TRANSPORTS = ("auto", "pickle", "shm")


class Chunk(NamedTuple):
    """One work unit: a contiguous run of candidates with its global offset."""

    index: int
    start_row: int
    candidates: list


def available_workers() -> int:
    """Number of CPUs this process may use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - platforms without affinity
        return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class ExecutionPlan:
    """Chunking / partitioning policy of one labeling execution.

    Parameters
    ----------
    chunk_size:
        Candidates per work unit.  Results are independent of this value; it
        trades scheduling overhead against pipeline granularity.
    backend:
        ``"sequential"`` (in-process loop), ``"threads"``
        (``concurrent.futures.ThreadPoolExecutor`` — effective for
        latency-bound LFs that release the GIL or wait on I/O), or
        ``"processes"`` (``ProcessPoolExecutor`` — effective for CPU-bound
        LFs; candidates must be picklable).
    num_workers:
        Worker count for the pool backends; ``None`` means one worker per
        available CPU.  Ignored by the sequential backend.
    fault_tolerant:
        When ``True``, LF exceptions are counted per LF name and converted
        to abstentions; when ``False`` the first exception aborts the run.
    max_pending:
        Upper bound on chunks in flight at once (submitted but not yet
        merged).  Defaults to ``2 × workers`` — the backpressure that keeps
        a generator-fed run out-of-core instead of draining the stream into
        the pool's queue.
    transport:
        Chunk transport of the processes backend (see :data:`TRANSPORTS`);
        ignored by the in-process backends.  Results are bit-identical
        across transports.
    chunk_timeout:
        Soft per-chunk deadline in seconds for the processes backend: a
        chunk in flight past the deadline draws a warning, and past the
        escalation point its worker is killed and the chunk resubmitted
        under the crash machinery (EN101; see
        :class:`repro.labeling.engine.runtime.WorkerTimeoutError`).
        ``None`` (default) waits indefinitely; ignored by the in-process
        backends, which cannot kill a hung task.
    """

    chunk_size: int = 1024
    backend: str = "sequential"
    num_workers: Optional[int] = 1
    fault_tolerant: bool = False
    max_pending: Optional[int] = None
    transport: str = "auto"
    chunk_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise LabelingError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.backend not in BACKENDS:
            raise LabelingError(
                f"unknown executor backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.transport not in TRANSPORTS:
            raise LabelingError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORTS}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise LabelingError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_pending is not None and self.max_pending < 1:
            raise LabelingError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise LabelingError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )

    def effective_workers(self) -> int:
        """Worker count the executor will actually use."""
        if self.backend == "sequential":
            return 1
        if self.num_workers is None:
            return available_workers()
        return self.num_workers

    def pending_limit(self) -> int:
        """Maximum number of chunks in flight (the backpressure window)."""
        if self.max_pending is not None:
            return self.max_pending
        return 2 * self.effective_workers()


def iter_chunks(candidates: Iterable, chunk_size: int) -> Iterator[Chunk]:
    """Lazily partition any candidate iterable into :class:`Chunk` units.

    Sequences are sliced (no full copy of the container beyond the slice
    views); other iterables — generators, database cursors — are consumed
    chunk by chunk, so memory holds at most the chunks currently in flight.
    """
    if isinstance(candidates, Sequence):
        for index, start in enumerate(range(0, len(candidates), chunk_size)):
            yield Chunk(index, start, list(candidates[start : start + chunk_size]))
        return
    iterator = iter(candidates)
    start = 0
    for index in itertools.count():
        block = list(itertools.islice(iterator, chunk_size))
        if not block:
            return
        yield Chunk(index, start, block)
        start += len(block)
