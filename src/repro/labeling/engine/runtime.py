"""The persistent worker runtime: long-lived processes + shared-memory transport.

Before this module, the ``processes`` backend built a fresh
``ProcessPoolExecutor`` inside every ``apply`` call — even back-to-back
applies on the same suite paid full worker startup, and every chunk paid a
pickle round-trip through the pool's task queue.  The runtime replaces that
with a :class:`WorkerPool` of long-lived processes that is created once per
master process (see :func:`get_global_pool`), shared across pipeline stages
(apply → fused apply+featurize → featurize), and reaped at interpreter exit.

The pool ships *configuration, not objects*: a :class:`TaskSpec` describes a
chunk task once — the task function, its payload (LF suite, featurizer, …),
and an optional worker-side ``builder`` that derives the actual payload from
shipped configuration (e.g. compiling a pushdown plan from the LF list,
since compiled plans hold closures and cannot cross a pipe).  Workers build
the payload **once at attach time** and afterwards receive only chunk
payloads.  Attach is warm when the spec pickles; when it does not (LF
closures under the ``fork`` start method), the pool respawns its workers so
the spec is inherited by memory — the same trick the old executor played
with initializer args, but amortized across every subsequent run.

Two transports move the bulk data (``transport="pickle"|"shm"|"auto"``):

* ``pickle`` — chunk candidates and results travel as pickled bytes over
  each worker's duplex pipe.  Always available; the fallback.
* ``shm`` — pickled candidate bytes go out through a per-worker ring of
  reusable ``multiprocessing.shared_memory`` slots, and result triple/
  feature arrays come back as raw array blocks in a worker-owned inbound
  ring, described by ``(name, offset, dtype, count)`` descriptors; only the
  small result metadata crosses the pipe.  Results are bit-identical to the
  ``pickle`` transport — the differential suite in
  ``tests/test_engine_transport.py`` pins this down.

Segment ownership is asymmetric by design: workers create and write their
inbound rings but only the *master* ever unlinks a segment (exactly once),
which keeps the shared resource tracker's bookkeeping balanced under the
``fork`` start method.  Ring slots are reused under a per-worker in-flight
cap (2 for ``shm``, 1 for ``pickle`` — the pipe transport must never let the
master block on a large send while a worker blocks sending a result, which
would deadlock), results are claimed (copied out) immediately on receipt,
and retired segments are unlinked only after a result proves the worker has
moved to the replacement — so no slot is overwritten before it is drained.

Crash handling: the master waits on each worker's pipe *and* process
sentinel.  A worker that dies mid-run surfaces as :class:`WorkerCrashError`
(coded ``EN100``) naming the in-flight chunk; in fault-tolerant mode the
pool respawns a replacement and resubmits the lost chunks (bounded by
:data:`MAX_CHUNK_ATTEMPTS`).  The accumulator's duplicate-index guard means
a resubmitted chunk can never be merged twice, so the deterministic merge
survives crashes unchanged.
"""

from __future__ import annotations

import atexit
import os
import pickle
import signal
import time
import traceback
import warnings
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Callable, Iterator, Optional

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine import faults
from repro.labeling.engine.accumulator import (
    ChunkResult,
    CSRAccumulator,
    attach_arrays,
    detach_arrays,
)
from repro.labeling.engine.plan import TRANSPORTS, Chunk

try:  # pragma: no cover - import guard exercised only on exotic builds
    from multiprocessing import shared_memory as _shm

    HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shm = None
    HAVE_SHM = False

__all__ = [
    "HAVE_SHM",
    "MAX_CHUNK_ATTEMPTS",
    "TRANSPORTS",
    "TaskSpec",
    "TransportCorruptionError",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTimeoutError",
    "get_global_pool",
    "resolve_transport",
    "run_attached_chunk",
    "shutdown_pools",
]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Times one chunk may be submitted before a worker crash becomes fatal even
#: in fault-tolerant mode (first attempt + one resubmission).
MAX_CHUNK_ATTEMPTS = 2

#: A chunk in flight past ``chunk_timeout`` seconds draws a warning; past
#: ``chunk_timeout * TIMEOUT_ESCALATION`` its worker is killed and the chunk
#: resubmitted (:class:`WorkerTimeoutError`, EN101).
TIMEOUT_ESCALATION = 2.0

#: Specs kept attached per pool before the least-recently-attached one is
#: detached (workers drop the built payload; the master forgets the spec id).
MAX_ATTACHED_SPECS = 8

#: Per-worker in-flight chunk cap by transport.  ``shm`` pipelines two chunks
#: per worker (ring slots alternate, control messages are tiny so the master
#: never blocks on a send).  ``pickle`` must stay at one: with a chunk in
#: flight, a large candidate send can fill the pipe while the worker blocks
#: sending a large result the master is not reading — a deadlock.
_TRANSPORT_DEPTH = {"shm": 2, "pickle": 1}

_RING_MIN_SLOT = 1 << 16


def resolve_transport(transport: str) -> str:
    """Resolve an ``ExecutionPlan.transport`` value to a concrete transport."""
    if transport not in TRANSPORTS:
        raise LabelingError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if transport == "auto":
        return "shm" if HAVE_SHM else "pickle"
    if transport == "shm" and not HAVE_SHM:  # pragma: no cover - exotic builds
        raise LabelingError(
            'transport="shm" requires multiprocessing.shared_memory, which '
            'this interpreter lacks; use transport="pickle"'
        )
    return transport


class WorkerCrashError(LabelingError):
    """A pool worker died while chunks were in flight (engine error EN100).

    Unlike ``concurrent.futures.BrokenProcessPool`` this names the lost
    chunk, so the failure is actionable (which data, which attempt) and a
    fault-tolerant run knows exactly what to resubmit.
    """

    code = "EN100"

    def __init__(
        self, chunk_index: int, worker_pid: Optional[int], exit_code, attempts: int
    ) -> None:
        self.chunk_index = chunk_index
        self.worker_pid = worker_pid
        self.exit_code = exit_code
        self.attempts = attempts
        super().__init__(
            f"[{self.code}] worker process {worker_pid} (exit code {exit_code}) "
            f"died while chunk {chunk_index} was in flight "
            f"(attempt {attempts}/{MAX_CHUNK_ATTEMPTS})"
        )


class WorkerTimeoutError(WorkerCrashError):
    """A worker exceeded the per-chunk deadline and was killed (EN101).

    Raised (or, in fault-tolerant mode, retried) when a chunk stays in
    flight past ``chunk_timeout × `` :data:`TIMEOUT_ESCALATION` — the hung
    worker is SIGKILLed and handled through the same resubmission machinery
    as a crash, so a stuck LF (deadlocked I/O, runaway regex) can stall a
    run by at most the escalated deadline instead of forever.
    """

    code = "EN101"

    def __init__(
        self, chunk_index: int, worker_pid: Optional[int], timeout: float, attempts: int
    ) -> None:
        # Build the base message, then override with the timeout story.
        super().__init__(chunk_index, worker_pid, None, attempts)
        self.timeout = timeout
        self.args = (
            f"[{self.code}] worker process {worker_pid} exceeded the "
            f"{timeout:g}s chunk deadline on chunk {chunk_index} and was "
            f"killed (attempt {attempts}/{MAX_CHUNK_ATTEMPTS})",
        )


class TransportCorruptionError(LabelingError):
    """A transported payload failed its checksum (engine error EN102).

    Every shm-transport payload (the pickled candidate bytes going out, each
    result array block coming back) carries a crc32; a mismatch means the
    ring slot was torn or overwritten.  Fault-tolerant runs resubmit the
    chunk (bounded by :data:`MAX_CHUNK_ATTEMPTS`) — the data is still
    upstream, so corruption in transit is retryable, unlike a task error.
    """

    code = "EN102"

    def __init__(self, chunk_index: int, direction: str, expected: int, actual: int) -> None:
        self.chunk_index = chunk_index
        self._init_args = (chunk_index, direction, expected, actual)
        super().__init__(
            f"[{self.code}] {direction} payload of chunk {chunk_index} failed "
            f"its checksum (expected {expected:#010x}, got {actual:#010x}); "
            "the shared-memory slot was torn or overwritten"
        )

    def __reduce__(self):
        # The worker pickles this through the pipe; default exception
        # reduction would replay ``args`` (the message) into the four-field
        # constructor, so spell the constructor call out.
        return (type(self), self._init_args)


@dataclass(frozen=True)
class TaskSpec:
    """What a worker needs to run one kind of chunk task, shipped once.

    ``task`` is a chunk task (``apply_chunk`` signature).  ``payload`` is its
    first argument — or, when ``builder`` is given, the *configuration* from
    which each worker derives the first argument at attach time
    (``builder(payload)``), e.g. compiling a pushdown plan from the LF list.
    Workers cache the built payload, so attach cost is paid once per worker
    per spec, not per chunk.
    """

    task: Callable
    payload: object = None
    builder: Optional[Callable[[object], object]] = None
    fault_tolerant: bool = False


@dataclass
class _AttachedSpec:
    """A spec after worker-side attach: the task plus its built payload."""

    task: Callable
    payload: object
    fault_tolerant: bool


def run_attached_chunk(
    attached: _AttachedSpec,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: list,
) -> ChunkResult:
    """Run one chunk against an attached spec (the pool's worker kernel).

    A pure dispatch with the standard chunk-task signature, so the EN
    purity contracts (:mod:`repro.analysis.contracts`) apply to the pool's
    hot path exactly as they do to the tasks it dispatches to.
    """
    return attached.task(attached.payload, fault_tolerant, index, start_row, candidates)


def _build_attached(spec: TaskSpec) -> _AttachedSpec:
    payload = spec.builder(spec.payload) if spec.builder is not None else spec.payload
    return _AttachedSpec(
        task=spec.task, payload=payload, fault_tolerant=spec.fault_tolerant
    )


def _exc_payload(exc: BaseException) -> tuple:
    """Pack an exception for the pipe (picklable or not)."""
    try:
        blob = pickle.dumps(exc, _PICKLE_PROTOCOL)
    except Exception:
        blob = None
    return (blob, type(exc).__name__, str(exc), traceback.format_exc())


def _rebuild_exc(payload: tuple) -> BaseException:
    """Reconstruct a worker exception master-side.

    Picklable exceptions (the common case — ``LabelingError`` wrapping, user
    ``ZeroDivisionError``s, …) come back as the same type with the same
    message, so the exception a pool run raises matches the sequential run's
    bit for bit; the worker traceback rides along as ``remote_traceback``.
    """
    blob, type_name, message, remote_tb = payload
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            exc.remote_traceback = remote_tb
            return exc
        except Exception:
            pass
    exc = LabelingError(f"worker task raised {type_name}: {message}\n{remote_tb}")
    exc.remote_traceback = remote_tb
    return exc


def _align(nbytes: int) -> int:
    return (nbytes + 63) & ~63


class _SlotRing:
    """A shared-memory segment split into ``depth`` reusable slots.

    Slot ``seq % depth`` carries the payload of task/result ``seq``; the
    submission protocol guarantees a slot is never rewritten before its
    previous occupant was claimed.  A payload larger than the current slot
    size retires the whole segment and allocates a bigger one (geometric
    growth) — the retired segment is returned to the caller, because only
    the caller knows when the peer has stopped reading it.
    """

    def __init__(self, base_name: str, depth: int) -> None:
        self.base_name = base_name
        self.depth = depth
        self.segment = None
        self.slot_bytes = 0
        self._generation = 0

    def reserve(self, seq: int, nbytes: int) -> tuple[str, int, object]:
        """Return ``(segment_name, offset, retired_segment_or_None)``."""
        needed = max(_align(nbytes), 64)
        retired = None
        if self.segment is None or needed > self.slot_bytes:
            retired = self.segment
            self.slot_bytes = max(needed, 2 * self.slot_bytes, _RING_MIN_SLOT)
            name = f"{self.base_name}g{self._generation}"
            self._generation += 1
            self.segment = _shm.SharedMemory(
                name=name, create=True, size=self.slot_bytes * self.depth
            )
        return self.segment.name, (seq % self.depth) * self.slot_bytes, retired

    def release(self, unlink: bool) -> None:
        if self.segment is not None:
            _release_segment(self.segment, unlink=unlink)
            self.segment = None
            self.slot_bytes = 0


def _release_segment(segment, unlink: bool) -> None:
    try:
        segment.close()
    except BufferError:  # pragma: no cover - an un-released view; leak mapping
        return
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _worker_main(conn, inherited_specs: dict, inbound_base: str) -> None:
    """The worker loop: attach specs, run chunks, ship results back.

    ``inherited_specs`` arrived through the ``fork`` start method (by
    memory, never pickled) so closure-built payloads work; later specs
    arrive as ``("attach", sid, bytes)`` messages when they pickle.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    master_pid = os.getppid()
    attached: dict[int, _AttachedSpec] = {}
    broken: dict[int, tuple] = {}
    outbound: dict[str, object] = {}
    ring = _SlotRing(inbound_base, depth=max(_TRANSPORT_DEPTH.values())) if HAVE_SHM else None

    def build(sid, spec) -> None:
        try:
            attached[sid] = _build_attached(spec)
        except Exception as exc:
            broken[sid] = _exc_payload(exc)
            conn.send(("attach_error", sid, broken[sid]))

    try:
        for sid, spec in inherited_specs.items():
            build(sid, spec)
        while True:
            try:
                # A blocking recv() would never see EOF after the master is
                # SIGKILLed — sibling workers hold inherited write ends of
                # this pipe — so poll with a timeout and watch for the
                # master's death (reparenting changes our ppid).
                while not conn.poll(1.0):
                    if os.getppid() != master_pid:  # pragma: no cover
                        return
                msg = conn.recv()
            except (EOFError, OSError):  # pragma: no cover - master vanished
                break
            kind = msg[0]
            if kind == "close":
                break
            if kind == "attach":
                _, sid, spec_blob = msg
                try:
                    spec = pickle.loads(spec_blob)
                except Exception as exc:
                    broken[sid] = _exc_payload(exc)
                    conn.send(("attach_error", sid, broken[sid]))
                    continue
                build(sid, spec)
            elif kind == "detach":
                attached.pop(msg[1], None)
                broken.pop(msg[1], None)
            elif kind == "task":
                _, sid, seq, index, start_row, meta = msg
                _worker_run_task(
                    conn, attached, broken, outbound, ring, sid, seq, index, start_row, meta
                )
    finally:
        for segment in outbound.values():
            _release_segment(segment, unlink=False)
        if ring is not None:
            # The master unlinks inbound segments it attached; segments it
            # never saw are swept by name prefix at pool close.
            ring.release(unlink=False)
        conn.close()


def _worker_run_task(
    conn, attached, broken, outbound, ring, sid, seq, index, start_row, meta
) -> None:
    decode_start = time.perf_counter()
    try:
        if meta[0] == "shm":
            _, name, offset, length, crc = meta
            segment = outbound.get(name)
            if segment is None:
                # The master grew its outbound ring: every older segment is
                # retired (tasks arrive in order) — drop them before attaching.
                for old in outbound.values():
                    _release_segment(old, unlink=False)
                outbound.clear()
                segment = _shm.SharedMemory(name=name)
                outbound[name] = segment
            blob = bytes(segment.buf[offset : offset + length])
            actual = zlib.crc32(blob)
            if actual != crc:
                # The slot no longer holds what the master wrote — torn or
                # overwritten.  A coded, retryable error: the candidates are
                # still master-side, so a resubmission rewrites the slot.
                raise TransportCorruptionError(index, "chunk", crc, actual)
            candidates = pickle.loads(blob)
        else:
            candidates = pickle.loads(meta[1])
    except Exception as exc:
        # A decode failure is a per-chunk task error, not a worker death: a
        # raw raise here would kill the process and surface as an opaque
        # EN100 crash (and a doomed FT resubmit) instead of naming the cause.
        conn.send(("error", seq, index, _exc_payload(exc)))
        return
    transport_seconds = time.perf_counter() - decode_start

    # Deterministic fault injection (no-op without an installed plan):
    # SIGKILL or hang this worker on the configured chunk index.
    faults.maybe_fail_chunk(index)

    spec = attached.get(sid)
    if spec is None:
        payload = broken.get(sid) or _exc_payload(
            LabelingError(f"task spec {sid} is not attached to this worker")
        )
        conn.send(("error", seq, index, payload))
        return
    try:
        result = run_attached_chunk(spec, spec.fault_tolerant, index, start_row, candidates)
    except Exception as exc:
        conn.send(("error", seq, index, _exc_payload(exc)))
        return

    encode_start = time.perf_counter()
    if ring is not None and meta[0] == "shm":
        meta_result, arrays = detach_arrays(result)
        name, base, retired = ring.reserve(seq, sum(_align(a.nbytes) for a in arrays))
        if retired is not None:
            # Master still claims older results from the retired segment (it
            # unlinks it on seeing the new name); this side just unmaps.
            _release_segment(retired, unlink=False)
        blocks = []
        offset = base
        for array in arrays:
            if array.nbytes:
                view = np.frombuffer(
                    ring.segment.buf, dtype=array.dtype, count=array.size, offset=offset
                )
                view[:] = array
                del view
            # Each block descriptor carries the crc of the slot bytes so the
            # master can detect a torn/overwritten ring slot (EN102) instead
            # of merging garbage triples.
            crc = zlib.crc32(ring.segment.buf[offset : offset + array.nbytes])
            blocks.append((offset, array.dtype.str, array.size, crc))
            offset += _align(array.nbytes)
        for block_offset, dtype_str, count, _crc in blocks:
            nbytes = count * np.dtype(dtype_str).itemsize
            if nbytes:
                faults.corrupt_shm_slot(
                    "corrupt_result", index, ring.segment.buf, block_offset, nbytes
                )
                break
        transport_seconds += time.perf_counter() - encode_start
        conn.send(("result", seq, index, ("shm", name, blocks, meta_result, transport_seconds)))
    else:
        blob = pickle.dumps(result, _PICKLE_PROTOCOL)
        transport_seconds += time.perf_counter() - encode_start
        conn.send(("result", seq, index, ("pipe", blob, transport_seconds)))


# --------------------------------------------------------------------------
# Master side
# --------------------------------------------------------------------------


@dataclass
class _InFlight:
    seq: int
    chunk: Chunk
    attempts: int
    submit_seconds: float
    #: ``time.monotonic()`` at submission — the chunk-timeout reference point.
    started: float = 0.0
    #: Whether the soft-deadline warning for this entry already fired.
    warned: bool = False


@dataclass(eq=False)
class _Worker:
    """Master-side handle on one pool process (identity-hashed)."""

    process: object
    conn: object
    out_ring: Optional[_SlotRing]
    pending: deque = field(default_factory=deque)
    #: ``(confirm_seq, segment)``: retired outbound segments, unlinked once a
    #: result for a task ``seq >= confirm_seq`` proves the worker moved on.
    retired_out: deque = field(default_factory=deque)
    #: Inbound segments (worker-created) this master has attached, by name.
    inbound: dict = field(default_factory=dict)
    next_seq: int = 0


class WorkerPool:
    """A persistent pool of chunk-task workers with spec attach semantics.

    Lifecycle: construct (no processes yet) → :meth:`attach` a
    :class:`TaskSpec` (first attach spawns the workers; unpicklable specs
    respawn them so ``fork`` inherits the payload) → :meth:`run` chunk
    streams against it, any number of times, across pipeline stages →
    :meth:`close` (also wired to ``atexit`` for pools from
    :func:`get_global_pool`).  ``close`` is not terminal: the next attach
    simply respawns.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise LabelingError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        #: Processes spawned over the pool's lifetime — the single-spawn
        #: regression probe (one pipeline run must not exceed num_workers).
        self.total_spawned = 0
        self._owner_pid = os.getpid()
        self._name = f"repro-eng-{os.getpid()}-{os.urandom(3).hex()}"
        if "fork" in __import__("multiprocessing").get_all_start_methods():
            self._ctx = get_context("fork")
        else:  # pragma: no cover - non-fork platforms
            self._ctx = get_context()
        self._workers: list[_Worker] = []
        self._specs: dict[int, TaskSpec] = {}
        self._spec_ids: dict[tuple, int] = {}
        self._broken_specs: dict[int, BaseException] = {}
        self._next_spec_id = 0
        self._spawn_serial = 0
        self._running = False
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def _spawn_worker(self) -> _Worker:
        if HAVE_SHM:
            # Start the resource tracker *before* forking so workers inherit
            # it: every segment registration then lands in one shared
            # tracker whose bookkeeping the master's single unlink per
            # segment balances.  Workers left to start their own trackers
            # would warn about (and try to re-unlink) segments the master
            # already cleaned up.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        serial = self._spawn_serial
        self._spawn_serial += 1
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, dict(self._specs), f"{self._name}-w{serial}-in-"),
            daemon=True,
            name=f"repro-engine-worker-{serial}",
        )
        process.start()
        child_conn.close()
        self.total_spawned += 1
        out_ring = (
            _SlotRing(f"{self._name}-w{serial}-out-", depth=max(_TRANSPORT_DEPTH.values()))
            if HAVE_SHM
            else None
        )
        return _Worker(process=process, conn=parent_conn, out_ring=out_ring)

    def _ensure_workers(self) -> None:
        while len(self._workers) < self.num_workers:
            self._workers.append(self._spawn_worker())
        self._closed = False

    def _destroy_worker(self, worker: _Worker, join_timeout: float = 1.0) -> None:
        """Release one worker's master-side resources (process already exiting)."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        worker.process.join(timeout=join_timeout)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        if worker.out_ring is not None:
            worker.out_ring.release(unlink=True)
        for _seq, segment in worker.retired_out:
            _release_segment(segment, unlink=True)
        worker.retired_out.clear()
        for segment in worker.inbound.values():
            _release_segment(segment, unlink=True)
        worker.inbound.clear()

    def close(self) -> None:
        """Stop all workers and release every shared-memory segment.

        Idempotent: the atexit hook and an explicit user ``close`` may both
        run (in either order); the second invocation returns without
        touching ``/dev/shm`` again.  Not terminal — a later attach/run
        respawns workers (and re-arms the close).
        """
        if os.getpid() != self._owner_pid:  # pragma: no cover - forked child
            return
        if self._closed and not self._workers:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass
        for worker in list(self._workers):
            self._destroy_worker(worker, join_timeout=5.0)
        self._specs.clear()
        self._spec_ids.clear()
        self._broken_specs.clear()
        self._sweep_segments()

    def _sweep_segments(self) -> None:
        """Unlink any segment with this pool's name prefix (crash leftovers)."""
        if not HAVE_SHM:  # pragma: no cover
            return
        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
            return
        for fname in os.listdir(shm_dir):
            if fname.startswith(self._name):
                try:
                    segment = _shm.SharedMemory(name=fname)
                except FileNotFoundError:
                    continue
                _release_segment(segment, unlink=True)

    # ---------------------------------------------------------------- attach
    def _spec_key(self, spec: TaskSpec) -> tuple:
        return (spec.task, id(spec.payload), spec.builder, spec.fault_tolerant)

    def attach(self, spec: TaskSpec) -> int:
        """Register a spec with the pool; returns its id.  Idempotent per
        ``(task, payload identity, builder, fault policy)`` — repeat applies
        on the same suite reuse the worker-side built payload."""
        key = self._spec_key(spec)
        sid = self._spec_ids.get(key)
        if sid is not None:
            return sid
        sid = self._next_spec_id
        self._next_spec_id += 1
        while len(self._specs) >= MAX_ATTACHED_SPECS:
            self._detach(min(self._specs))
        self._specs[sid] = spec
        self._spec_ids[key] = sid
        if not self._workers:
            return sid
        try:
            blob = pickle.dumps(spec, _PICKLE_PROTOCOL)
        except Exception:
            # Unpicklable payload (closures, compiled plans): respawn so the
            # fork start method hands workers the spec by memory.
            self._respawn_generation()
            return sid
        for worker in list(self._workers):
            try:
                worker.conn.send(("attach", sid, blob))
            except (OSError, BrokenPipeError):
                # The worker died silently between runs; destroy it so the
                # next run's _ensure_workers respawns a replacement (which
                # inherits every registered spec, this one included).
                self._destroy_worker(worker)
        return sid

    def _detach(self, sid: int) -> None:
        spec = self._specs.pop(sid, None)
        self._broken_specs.pop(sid, None)
        if spec is not None:
            self._spec_ids.pop(self._spec_key(spec), None)
            for worker in self._workers:
                try:
                    worker.conn.send(("detach", sid))
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass

    def _respawn_generation(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(("close",))
            except (OSError, BrokenPipeError):
                pass
        for worker in list(self._workers):
            self._destroy_worker(worker, join_timeout=5.0)
        self._broken_specs.clear()
        self._ensure_workers()

    # ------------------------------------------------------------------- run
    def run(
        self,
        spec: TaskSpec,
        chunks: Iterator[Chunk],
        accumulator: CSRAccumulator,
        transport: str = "auto",
        pending_limit: Optional[int] = None,
        chunk_timeout: Optional[float] = None,
    ) -> None:
        """Run a chunk stream against ``spec``, feeding the accumulator.

        Submission is backpressure-aware: at most ``pending_limit`` chunks
        (and per worker, the transport's depth) are in flight, so generator
        inputs stay out-of-core.  Results are claimed and accumulated on
        arrival; the accumulator's chunk-index merge keeps the output
        independent of completion order, crashes and resubmissions included.

        ``chunk_timeout`` bounds how long any chunk may stay in flight: past
        the deadline its worker draws a warning, and past ``chunk_timeout ×``
        :data:`TIMEOUT_ESCALATION` the worker is killed and the chunk
        resubmitted under the crash machinery (:class:`WorkerTimeoutError`,
        EN101) — a hung worker can no longer stall the run forever.  ``None``
        (default) waits indefinitely, as before.
        """
        transport = resolve_transport(transport)
        if self._running:
            raise LabelingError("WorkerPool.run is not reentrant")
        sid = self.attach(spec)
        self._ensure_workers()
        depth = _TRANSPORT_DEPTH[transport]
        limit = max(1, min(pending_limit or depth * self.num_workers,
                           depth * self.num_workers))
        chunk_iter = iter(chunks)
        resubmit: deque = deque()
        state = {"exhausted": False, "failure": None, "respawn": None, "respawned": False}
        fault_tolerant = spec.fault_tolerant
        self._running = True

        def note_failure(order_key: int, exc: BaseException) -> None:
            failure = state["failure"]
            if failure is None or order_key < failure[0]:
                state["failure"] = (order_key, exc)

        def submit(worker: _Worker, chunk: Chunk, attempts: int) -> None:
            seq = worker.next_seq
            worker.next_seq += 1
            start = time.perf_counter()
            blob = pickle.dumps(chunk.candidates, _PICKLE_PROTOCOL)
            if transport == "shm":
                name, offset, retired = worker.out_ring.reserve(seq, len(blob))
                if retired is not None:
                    worker.retired_out.append((seq, retired))
                worker.out_ring.segment.buf[offset : offset + len(blob)] = blob
                faults.corrupt_shm_slot(
                    "corrupt_shm", chunk.index, worker.out_ring.segment.buf,
                    offset, len(blob),
                )
                meta = ("shm", name, offset, len(blob), zlib.crc32(blob))
            else:
                meta = ("pipe", blob)
            worker.conn.send(("task", sid, seq, chunk.index, chunk.start_row, meta))
            worker.pending.append(
                _InFlight(
                    seq, chunk, attempts, time.perf_counter() - start,
                    started=time.monotonic(),
                )
            )

        def fill() -> None:
            while state["failure"] is None:
                free = [w for w in self._workers if len(w.pending) < depth]
                if not free or sum(len(w.pending) for w in self._workers) >= limit:
                    return
                if resubmit:
                    chunk, attempts = resubmit.popleft()
                elif not state["exhausted"]:
                    try:
                        chunk, attempts = next(chunk_iter), 1
                    except StopIteration:
                        state["exhausted"] = True
                        return
                else:
                    return
                submit(min(free, key=lambda w: len(w.pending)), chunk, attempts)

        def claim(worker: _Worker, entry: _InFlight, meta) -> ChunkResult:
            start = time.perf_counter()
            if meta[0] == "pipe":
                _, blob, worker_seconds = meta
                result = pickle.loads(blob)
            else:
                _, name, blocks, meta_result, worker_seconds = meta
                segment = worker.inbound.get(name)
                if segment is None:
                    # New inbound generation: older segments hold no
                    # unclaimed results (claims are in seq order), unlink.
                    for old in worker.inbound.values():
                        _release_segment(old, unlink=True)
                    worker.inbound.clear()
                    segment = _shm.SharedMemory(name=name)
                    worker.inbound[name] = segment
                arrays = []
                for offset, dtype_str, count, crc in blocks:
                    dtype = np.dtype(dtype_str)
                    actual = zlib.crc32(
                        segment.buf[offset : offset + count * dtype.itemsize]
                    )
                    if actual != crc:
                        # The ring slot no longer holds what the worker
                        # wrote; the chunk is retryable (EN102), garbage
                        # triples must never reach the accumulator.
                        raise TransportCorruptionError(
                            entry.chunk.index, "result", crc, actual
                        )
                    view = np.frombuffer(
                        segment.buf, dtype=dtype, count=count, offset=offset
                    )
                    arrays.append(view.copy())
                    del view
                result = attach_arrays(meta_result, arrays)
            result.transport_seconds = (
                worker_seconds + entry.submit_seconds + time.perf_counter() - start
            )
            return result

        def retry_corruption(entry: _InFlight, exc: TransportCorruptionError) -> None:
            # EN102 is retryable under FT: the chunk's source data is intact
            # master-side (unlike a task error, which would fail again), so a
            # torn slot costs one resubmission, bounded like a crash.
            if fault_tolerant and entry.attempts < MAX_CHUNK_ATTEMPTS:
                resubmit.append((entry.chunk, entry.attempts + 1))
            else:
                note_failure(entry.chunk.index, exc)

        def handle_message(worker: _Worker, msg) -> None:
            kind = msg[0]
            if kind == "result":
                _, seq, _index, meta = msg
                entry = worker.pending.popleft()
                try:
                    result = claim(worker, entry, meta)
                except TransportCorruptionError as exc:
                    result = None
                    retry_corruption(entry, exc)
                # A result for ``seq`` proves the worker moved past every
                # segment retired at or before it — claimed or torn alike.
                while worker.retired_out and worker.retired_out[0][0] <= seq:
                    _, segment = worker.retired_out.popleft()
                    _release_segment(segment, unlink=True)
                if result is not None and state["failure"] is None:
                    accumulator.add(result)
            elif kind == "error":
                _, _seq, index, payload = msg
                entry = worker.pending.popleft()
                if state["respawn"] is not None:
                    # The worker could not attach the spec; its per-task
                    # errors are attach fallout, not task failures — the
                    # chunk reruns on the respawned generation.
                    resubmit.append((entry.chunk, entry.attempts))
                    return
                exc = _rebuild_exc(payload)
                if isinstance(exc, TransportCorruptionError):
                    retry_corruption(entry, exc)
                else:
                    note_failure(index, exc)
            elif kind == "attach_error":
                _, bad_sid, payload = msg
                exc = _rebuild_exc(payload)
                if bad_sid != sid:
                    self._broken_specs[bad_sid] = exc
                elif state["respawned"]:
                    note_failure(-1, exc)
                else:
                    # A spec that pickled master-side can still fail to load
                    # in a worker forked before its definitions existed
                    # (e.g. suites built in __main__ after the pool warmed
                    # up).  Fork-respawning is guaranteed to attach — the
                    # spec travels by memory — so self-heal once per run.
                    state["respawn"] = exc

        def handle_death(worker: _Worker, timeout_entry: Optional[_InFlight] = None) -> None:
            lost = list(worker.pending)
            pid = worker.process.pid
            self._destroy_worker(worker)
            exit_code = worker.process.exitcode
            if state["failure"] is not None:
                return
            for entry in lost:
                if not fault_tolerant or entry.attempts >= MAX_CHUNK_ATTEMPTS:
                    if entry is timeout_entry:
                        exc: WorkerCrashError = WorkerTimeoutError(
                            entry.chunk.index, pid, chunk_timeout, entry.attempts
                        )
                    else:
                        exc = WorkerCrashError(
                            entry.chunk.index, pid, exit_code, entry.attempts
                        )
                    note_failure(entry.chunk.index, exc)
            if state["failure"] is not None:
                return
            resubmit.extend((entry.chunk, entry.attempts + 1) for entry in lost)
            if not state["exhausted"] or resubmit:
                self._workers.append(self._spawn_worker())

        def next_deadline() -> Optional[float]:
            """Earliest pending warn/kill deadline, as a ``wait`` timeout."""
            if chunk_timeout is None:
                return None
            soonest = None
            for worker in self._workers:
                for entry in worker.pending:
                    at = entry.started + chunk_timeout * (
                        TIMEOUT_ESCALATION if entry.warned else 1.0
                    )
                    if soonest is None or at < soonest:
                        soonest = at
            if soonest is None:
                return None
            return max(0.0, soonest - time.monotonic())

        def enforce_deadlines() -> None:
            """Warn on, then kill, workers whose oldest chunk overstayed.

            Only the head of each worker's pending queue is judged — workers
            process in submission order, so younger entries are queued, not
            hung.  A kill flows through :func:`handle_death` (resubmission,
            respawn, attempt cap) with the head chunk coded EN101.
            """
            now = time.monotonic()
            for worker in list(self._workers):
                if not worker.pending:
                    continue
                entry = worker.pending[0]
                age = now - entry.started
                if age >= chunk_timeout * TIMEOUT_ESCALATION:
                    worker.process.kill()
                    worker.process.join()
                    handle_death(worker, timeout_entry=entry)
                elif age >= chunk_timeout and not entry.warned:
                    entry.warned = True
                    warnings.warn(
                        f"chunk {entry.chunk.index} has been in flight "
                        f"{age:.1f}s on worker {worker.process.pid} (deadline "
                        f"{chunk_timeout:g}s); the worker will be killed at "
                        f"{chunk_timeout * TIMEOUT_ESCALATION:g}s",
                        RuntimeWarning,
                        stacklevel=2,
                    )

        try:
            while True:
                fill()
                if sum(len(w.pending) for w in self._workers) == 0:
                    failure = state["failure"]
                    if failure is not None:
                        raise failure[1]
                    if state["exhausted"] and not resubmit:
                        return
                    if not self._workers:
                        self._ensure_workers()
                    continue
                waitables = []
                by_waitable = {}
                for worker in self._workers:
                    waitables.append(worker.conn)
                    by_waitable[worker.conn] = worker
                    waitables.append(worker.process.sentinel)
                    by_waitable[worker.process.sentinel] = worker
                ready = connection.wait(waitables, timeout=next_deadline())
                for worker in {by_waitable[obj] for obj in ready}:
                    dead = False
                    while True:
                        try:
                            if not worker.conn.poll():
                                break
                            msg = worker.conn.recv()
                        except (EOFError, OSError):
                            dead = True
                            break
                        handle_message(worker, msg)
                    if dead or not worker.process.is_alive():
                        handle_death(worker)
                if chunk_timeout is not None:
                    enforce_deadlines()
                if state["respawn"] is not None and state["failure"] is None:
                    state["respawned"] = True
                    state["respawn"] = None
                    for worker in list(self._workers):
                        resubmit.extend(
                            (entry.chunk, entry.attempts) for entry in worker.pending
                        )
                    self._respawn_generation()
        finally:
            self._running = False
            if any(worker.pending for worker in self._workers):
                # Controlled exits (normal return, the failure raise above)
                # only happen with zero chunks in flight, so pending entries
                # here mean an unexpected exception escaped the loop — e.g.
                # unpicklable candidates in submit(), or an accumulator
                # transform raising in handle_message.  Leaving them would
                # poison the shared global pool: the next run would pop this
                # run's late-arriving results against its own entries.
                # Quarantine by retiring the whole worker generation; the
                # next attach/run respawns a clean one.
                for worker in self._workers:
                    try:
                        worker.conn.send(("close",))
                    except (OSError, BrokenPipeError):
                        pass
                for worker in list(self._workers):
                    self._destroy_worker(worker)


# --------------------------------------------------------------------------
# Global registry
# --------------------------------------------------------------------------

_POOLS: dict[int, WorkerPool] = {}


def get_global_pool(num_workers: int) -> WorkerPool:
    """The per-process pool for ``num_workers`` — created once, then shared
    by every pipeline stage and ``apply`` call, and reaped at exit."""
    pool = _POOLS.get(num_workers)
    if pool is None:
        pool = WorkerPool(num_workers)
        _POOLS[num_workers] = pool
    return pool


def shutdown_pools() -> None:
    """Close every registry pool and empty the registry (wired to ``atexit``).

    Dropping the registry entries (rather than keeping closed pools around)
    makes the call a full reset: the next :func:`get_global_pool` starts a
    fresh pool whose ``total_spawned`` counts from zero, which is what the
    single-spawn regression tests measure against.
    """
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


# Ordering matters: atexit hooks run LIFO, and multiprocessing registers its
# own teardown (which reaps the shared-memory resource tracker) when
# ``multiprocessing.util`` is first imported.  Importing it explicitly *before*
# registering shutdown_pools guarantees the pools — whose close() unlinks
# segments through that tracker — are reaped first, not after the tracker
# infrastructure is already torn down.
import multiprocessing.util  # noqa: E402  (ordering-sensitive, see above)

atexit.register(shutdown_pools)
