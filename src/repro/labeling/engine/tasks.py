"""Chunk tasks beyond LF application: featurization and fused label+featurize.

The execution engine schedules *chunk tasks* — picklable callables with the
:func:`repro.labeling.engine.accumulator.apply_chunk` signature — over any
candidate iterable.  This module adds the discriminative stage's tasks:

* :func:`featurize_chunk` maps one candidate chunk to its sparse feature
  triples (``payload`` is a fitted
  :class:`repro.discriminative.featurizers.RelationFeaturizer`), giving
  featurization the same streaming, parallel, deterministically-merged
  execution path LF application has had since PR 2;
* :func:`label_and_featurize_chunk` runs the LF suite *and* the featurizer
  over each chunk in one pass (``payload`` is ``(lfs, featurizer)``), so an
  out-of-core pipeline run touches every candidate exactly once — the label
  triples are the primary block and the feature triples ride along as
  ``ChunkResult.features``, to be claimed master-side by an accumulator
  ``transform``.

Feature values are floats; the accumulator concatenates them untouched, and
because every chunk emits its rows in ascending order with ascending columns
within each row, the merged triples are already in canonical CSR order.

Under the processes backend these tasks run inside the persistent worker
runtime (:mod:`repro.labeling.engine.runtime`): the payload is attached to
each long-lived worker once as a :class:`~repro.labeling.engine.runtime.
TaskSpec` and only candidate chunks travel per call, over the plan's
``transport`` (pickled pipe bytes or shared-memory slots).  Tasks notice
none of this — the dispatch kernel hands them the same
``(payload, fault_tolerant, index, start_row, candidates)`` call either way
— but it is why a task must be a module-level callable and must treat the
payload as read-only (worker-side payload mutations would persist across
chunks *and* runs; see :mod:`repro.analysis.contracts`).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.labeling.engine.accumulator import ChunkResult, apply_chunk


def featurize_chunk(
    featurizer,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: Sequence,
) -> ChunkResult:
    """Featurize one chunk of candidates into sparse feature triples.

    ``featurizer`` must expose ``candidate_entries(candidate) ->
    {column: value}`` and be *fitted* (see
    :meth:`repro.discriminative.featurizers.RelationFeaturizer.fit`) — the
    fitted check runs worker-side so a stale featurizer shipped to a pool
    worker fails loudly instead of emitting misaligned columns.
    ``fault_tolerant`` is accepted for signature compatibility but ignored:
    featurization failures are library bugs, not user-LF misbehavior, and
    always propagate.
    """
    from repro.discriminative.sparse_features import sorted_entry_arrays

    start = time.perf_counter()
    featurizer.require_fitted()
    row_offsets: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    values: list[np.ndarray] = []
    for offset, candidate in enumerate(candidates):
        columns, row_values = sorted_entry_arrays(featurizer.candidate_entries(candidate))
        row_offsets.append(np.full(columns.size, offset, dtype=np.int64))
        cols.append(columns)
        values.append(row_values)
    empty_i, empty_f = np.empty(0, np.int64), np.empty(0, np.float64)
    return ChunkResult(
        index=index,
        start_row=start_row,
        num_candidates=len(candidates),
        row_offsets=np.concatenate(row_offsets) if row_offsets else empty_i,
        cols=np.concatenate(cols) if cols else empty_i,
        values=np.concatenate(values) if values else empty_f,
        seconds=time.perf_counter() - start,
    )


def label_and_featurize_chunk(
    payload: tuple,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: Sequence,
) -> ChunkResult:
    """Run the LF suite and the featurizer over one chunk in a single pass.

    ``payload`` is ``(lfs, featurizer)``.  Returns the label
    :class:`ChunkResult` with the feature block attached as ``features`` —
    the streaming pipeline's one-pass work unit.
    """
    lfs, featurizer = payload
    result = apply_chunk(lfs, fault_tolerant, index, start_row, candidates)
    result.features = featurize_chunk(
        featurizer, fault_tolerant, index, start_row, candidates
    )
    result.seconds += result.features.seconds
    return result
