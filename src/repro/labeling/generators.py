"""Labeling-function generators.

Generators build many labeling functions from a single resource (paper
Example 2.4): an ontology / knowledge base with several relation subsets, or
a crowdsourcing table with one LF per worker.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.context.candidates import Candidate
from repro.labeling.declarative import dictionary_lf
from repro.labeling.lf import LabelingFunction
from repro.types import ABSTAIN


class OntologyLFGenerator:
    """Generate one distant-supervision LF per ontology subset.

    Parameters
    ----------
    name:
        Name of the ontology (e.g. ``"ctd"``); used as an LF name prefix.
    subsets:
        Mapping from subset name (e.g. ``"causes"``) to the set of entity-id
        pairs that subset asserts.
    subset_labels:
        Mapping from subset name to the label its LF should emit, mirroring
        the paper's ``Ontology(ctd, {"Causes": True, "Treats": False})``.
    """

    def __init__(
        self,
        name: str,
        subsets: Mapping[str, Sequence[tuple[str, str]]],
        subset_labels: Mapping[str, int | bool],
    ) -> None:
        unknown = set(subset_labels) - set(subsets)
        if unknown:
            raise ValueError(f"subset_labels references unknown subsets {sorted(unknown)}")
        self.name = name
        self.subsets = {key: list(value) for key, value in subsets.items()}
        self.subset_labels = dict(subset_labels)

    def generate(self) -> list[LabelingFunction]:
        """Create one LF per labeled subset."""
        lfs = []
        for subset_name, label in self.subset_labels.items():
            numeric = 1 if label is True else (-1 if label is False else int(label))
            lfs.append(
                dictionary_lf(
                    pairs=self.subsets[subset_name],
                    label=numeric,
                    name=f"lf_{self.name}_{subset_name}",
                )
            )
        return lfs


class CrowdWorkerLFGenerator:
    """Represent each crowd worker as a labeling function (paper Section 4.1.2).

    Parameters
    ----------
    annotations:
        Mapping from worker id to a mapping from candidate uid to that
        worker's label.  Workers abstain on candidates they did not annotate.
    cardinality:
        Number of classes of the crowd task (binary by default; the Crowd
        sentiment task in the paper is multi-class).
    """

    def __init__(
        self,
        annotations: Mapping[str, Mapping[int, int]],
        cardinality: int = 2,
    ) -> None:
        self.annotations = {worker: dict(votes) for worker, votes in annotations.items()}
        self.cardinality = cardinality

    def generate(self) -> list[LabelingFunction]:
        """Create one LF per crowd worker."""
        lfs = []
        for worker_id in sorted(self.annotations):
            votes = self.annotations[worker_id]
            lfs.append(
                LabelingFunction(
                    name=f"lf_worker_{worker_id}",
                    function=self._make_vote_function(votes),
                    source_type="crowd",
                    cardinality=self.cardinality,
                )
            )
        return lfs

    @staticmethod
    def _make_vote_function(votes: Mapping[int, int]):
        def vote(candidate: Candidate) -> int:
            return votes.get(candidate.uid, ABSTAIN)

        return vote
