"""The labeling function abstraction.

A labeling function (LF) is a black-box function ``λ : X → Y ∪ {∅}`` that
takes a candidate and emits a label or abstains (paper Section 2).  In this
library LFs are wrapped in :class:`LabelingFunction`, which normalizes return
values (``True`` / ``False`` / ``None`` map to +1 / -1 / 0), tracks optional
metadata (a *source type* such as ``"pattern"`` or ``"distant_supervision"``
used by the ablation experiments), and validates outputs so buggy LFs fail
loudly during application.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.exceptions import LabelingError
from repro.types import ABSTAIN, NEGATIVE, POSITIVE


class LabelingFunction:
    """A named, typed wrapper around a user labeling heuristic.

    Parameters
    ----------
    name:
        Unique name of the LF (used in analysis tables and correlation plots).
    function:
        The underlying callable.  May return ``True``/``False``/``None``, an
        integer label in ``{-1, 0, +1}`` (binary), or an integer class label
        ``>= 1`` for multi-class tasks.
    source_type:
        Category of weak supervision the LF expresses.  The paper's ablation
        (Table 6) groups LFs into ``"pattern"``, ``"distant_supervision"``,
        and ``"structure"``; crowd-worker LFs use ``"crowd"`` and weak
        classifiers ``"classifier"``.
    cardinality:
        Number of classes (2 for binary).  Used only for output validation.
    """

    def __init__(
        self,
        name: str,
        function: Callable[[Any], Any],
        source_type: str = "custom",
        cardinality: int = 2,
    ) -> None:
        if not name:
            raise LabelingError("labeling functions must have a non-empty name")
        if not callable(function):
            raise LabelingError(f"labeling function {name!r} is not callable")
        self.name = name
        self.function = function
        self.source_type = source_type
        self.cardinality = cardinality

    def __call__(self, candidate: Any) -> int:
        """Apply the LF to a candidate and return a canonical integer label."""
        try:
            raw = self.function(candidate)
        except Exception as exc:  # noqa: BLE001 - we re-raise with LF context
            raise LabelingError(
                f"labeling function {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        return self._canonicalize(raw)

    def _canonicalize(self, raw: Any) -> int:
        if raw is None:
            return ABSTAIN
        if raw is True:
            return POSITIVE
        if raw is False:
            return NEGATIVE
        if isinstance(raw, (int,)) and not isinstance(raw, bool):
            value = int(raw)
            if self.cardinality == 2:
                if value in (NEGATIVE, ABSTAIN, POSITIVE):
                    return value
                raise LabelingError(
                    f"labeling function {self.name!r} returned {value}, expected one of "
                    f"{{-1, 0, 1}} (binary task)"
                )
            if 0 <= value <= self.cardinality:
                return value
            raise LabelingError(
                f"labeling function {self.name!r} returned {value}, expected 0..{self.cardinality}"
            )
        raise LabelingError(
            f"labeling function {self.name!r} returned {raw!r} of type {type(raw).__name__}; "
            "expected True/False/None or an integer label"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"LabelingFunction(name={self.name!r}, source_type={self.source_type!r})"


def labeling_function(
    name: Optional[str] = None,
    source_type: str = "custom",
    cardinality: int = 2,
) -> Callable[[Callable[[Any], Any]], LabelingFunction]:
    """Decorator turning a plain function into a :class:`LabelingFunction`.

    Example
    -------
    >>> @labeling_function(source_type="pattern")
    ... def lf_causes(x):
    ...     return True if "causes" in x.words_between() else None
    """

    def decorate(function: Callable[[Any], Any]) -> LabelingFunction:
        lf_name = name or function.__name__
        wrapped = LabelingFunction(
            name=lf_name,
            function=function,
            source_type=source_type,
            cardinality=cardinality,
        )
        functools.update_wrapper(wrapped, function, updated=())
        return wrapped

    return decorate
