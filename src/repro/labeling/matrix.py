"""The label matrix Λ: labeling-function outputs over a candidate set.

``LabelMatrix`` is a thin, validated wrapper around an integer numpy array of
shape ``(num_candidates, num_lfs)`` with named columns, plus the summary
quantities the paper's analysis and optimizer rely on — most importantly the
label density ``d_Λ`` (mean number of non-abstaining labels per data point).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, validate_label_matrix


class LabelMatrix:
    """A validated label matrix with named labeling-function columns."""

    def __init__(
        self,
        values: np.ndarray,
        lf_names: Optional[Sequence[str]] = None,
        cardinality: int = 2,
    ) -> None:
        self.values = validate_label_matrix(values, cardinality=cardinality)
        self.cardinality = cardinality
        if lf_names is None:
            lf_names = [f"lf_{j}" for j in range(self.values.shape[1])]
        if len(lf_names) != self.values.shape[1]:
            raise LabelingError(
                f"got {len(lf_names)} LF names for a matrix with {self.values.shape[1]} columns"
            )
        self.lf_names = list(lf_names)

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, int]:
        """``(num_candidates, num_lfs)``."""
        return self.values.shape  # type: ignore[return-value]

    @property
    def num_candidates(self) -> int:
        """Number of data points (rows)."""
        return self.values.shape[0]

    @property
    def num_lfs(self) -> int:
        """Number of labeling functions (columns)."""
        return self.values.shape[1]

    def __getitem__(self, item):
        return self.values[item]

    def column(self, lf_name: str) -> np.ndarray:
        """Return the label vector of the LF called ``lf_name``."""
        try:
            index = self.lf_names.index(lf_name)
        except ValueError:
            raise LabelingError(f"no labeling function named {lf_name!r}") from None
        return self.values[:, index]

    def select_lfs(self, names_or_indices: Iterable) -> "LabelMatrix":
        """Return a new matrix restricted to the given LFs (by name or index)."""
        indices = []
        for item in names_or_indices:
            if isinstance(item, str):
                if item not in self.lf_names:
                    raise LabelingError(f"no labeling function named {item!r}")
                indices.append(self.lf_names.index(item))
            else:
                indices.append(int(item))
        return LabelMatrix(
            self.values[:, indices],
            lf_names=[self.lf_names[i] for i in indices],
            cardinality=self.cardinality,
        )

    def select_rows(self, row_indices: Sequence[int] | np.ndarray) -> "LabelMatrix":
        """Return a new matrix restricted to the given rows."""
        return LabelMatrix(
            self.values[np.asarray(row_indices)],
            lf_names=self.lf_names,
            cardinality=self.cardinality,
        )

    # --------------------------------------------------------------- statistics
    @property
    def non_abstain_mask(self) -> np.ndarray:
        """Boolean mask of non-abstaining entries."""
        return self.values != ABSTAIN

    def label_density(self) -> float:
        """Mean number of non-abstaining labels per data point (paper's d_Λ)."""
        if self.num_candidates == 0:
            return 0.0
        return float(self.non_abstain_mask.sum(axis=1).mean())

    def coverage(self) -> float:
        """Fraction of data points with at least one non-abstaining label."""
        if self.num_candidates == 0:
            return 0.0
        return float((self.non_abstain_mask.sum(axis=1) > 0).mean())

    def lf_coverage(self) -> np.ndarray:
        """Per-LF fraction of data points it labels."""
        if self.num_candidates == 0:
            return np.zeros(self.num_lfs)
        return self.non_abstain_mask.mean(axis=0)

    def lf_polarity(self) -> list[list[int]]:
        """Per-LF sorted list of distinct non-abstain labels it emits."""
        polarities = []
        for j in range(self.num_lfs):
            column = self.values[:, j]
            polarities.append(sorted(int(v) for v in np.unique(column[column != ABSTAIN])))
        return polarities

    def class_balance(self) -> dict[int, float]:
        """Distribution of emitted (non-abstain) labels across the matrix."""
        non_abstain = self.values[self.non_abstain_mask]
        if non_abstain.size == 0:
            return {}
        labels, counts = np.unique(non_abstain, return_counts=True)
        total = counts.sum()
        return {int(label): float(count) / total for label, count in zip(labels, counts)}

    def vote_counts(self, label: int) -> np.ndarray:
        """Per-row counts of LFs voting exactly ``label`` (the paper's c_y(Λ_i))."""
        return (self.values == label).sum(axis=1)

    # ----------------------------------------------------------------- exports
    def to_array(self) -> np.ndarray:
        """Return a copy of the underlying integer array."""
        return self.values.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"LabelMatrix(shape={self.shape}, density={self.label_density():.2f}, "
            f"coverage={self.coverage():.2f})"
        )
