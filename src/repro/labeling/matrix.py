"""The label matrix Λ: labeling-function outputs over a candidate set.

``LabelMatrix`` is a thin, validated wrapper around the labeling-function
output matrix of shape ``(num_candidates, num_lfs)`` with named columns, plus
the summary quantities the paper's analysis and optimizer rely on — most
importantly the label density ``d_Λ`` (mean number of non-abstaining labels
per data point).

Two storage backends are supported and dispatched on transparently:

* **dense** — an integer numpy array, the default and the right choice for
  small or high-coverage matrices;
* **sparse** — a :class:`repro.labeling.sparse.SparseLabelMatrix` holding only
  the non-abstain entries in CSR form, the right choice for the low-coverage
  matrices real LF suites produce.

``to_sparse()`` / ``to_dense()`` convert between the two; every statistic on
this class (``label_density``, ``coverage``, ``lf_coverage``,
``class_balance``, ``vote_counts``, …) has a sparse-aware implementation, and
the label-model hot paths consume the sparse storage without densifying.
Accessing ``.values`` on a sparse-backed matrix materializes a dense copy —
it exists for compatibility, not for hot paths.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.sparse import HAVE_SCIPY, SparseLabelMatrix, _scipy_sparse
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, validate_label_matrix


def _validate_sparse_labels(storage: SparseLabelMatrix, cardinality: int) -> None:
    """Check that the stored (non-abstain) values fit the task's vocabulary."""
    if storage.nnz == 0:
        return
    values = np.unique(storage.data)
    if cardinality == 2:
        allowed = {NEGATIVE, POSITIVE}
    else:
        allowed = set(range(1, cardinality + 1))
    unexpected = [int(v) for v in values if int(v) not in allowed]
    if unexpected:
        raise LabelingError(
            f"sparse label matrix contains values {unexpected} outside {sorted(allowed)}"
        )


class LabelMatrix:
    """A validated label matrix with named labeling-function columns."""

    def __init__(
        self,
        values: Union[np.ndarray, SparseLabelMatrix],
        lf_names: Optional[Sequence[str]] = None,
        cardinality: int = 2,
    ) -> None:
        if isinstance(values, SparseLabelMatrix):
            _validate_sparse_labels(values, cardinality)
            self._sparse: Optional[SparseLabelMatrix] = values
            self._dense: Optional[np.ndarray] = None
        elif HAVE_SCIPY and _scipy_sparse is not None and _scipy_sparse.issparse(values):
            storage = SparseLabelMatrix.from_scipy(values)
            _validate_sparse_labels(storage, cardinality)
            self._sparse = storage
            self._dense = None
        else:
            self._dense = validate_label_matrix(values, cardinality=cardinality)
            self._sparse = None
        self.cardinality = cardinality
        if lf_names is None:
            lf_names = [f"lf_{j}" for j in range(self.shape[1])]
        if len(lf_names) != self.shape[1]:
            raise LabelingError(
                f"got {len(lf_names)} LF names for a matrix with {self.shape[1]} columns"
            )
        self.lf_names = list(lf_names)

    # ----------------------------------------------------------------- storage
    @property
    def is_sparse(self) -> bool:
        """Whether this matrix is stored sparsely (non-abstain entries only)."""
        return self._sparse is not None

    @property
    def storage(self) -> Union[np.ndarray, SparseLabelMatrix]:
        """The backing storage object (ndarray or :class:`SparseLabelMatrix`)."""
        return self._sparse if self._sparse is not None else self._dense

    @property
    def values(self) -> np.ndarray:
        """The dense integer array.

        For sparse storage this materializes a dense copy on every access;
        prefer :attr:`storage` (and the sparse-aware statistics on this class)
        in performance-sensitive code.
        """
        if self._dense is not None:
            return self._dense
        return self._sparse.to_dense()

    def to_sparse(self) -> "LabelMatrix":
        """This matrix with sparse (CSR) storage (self if already sparse)."""
        if self.is_sparse:
            return self
        return LabelMatrix(
            SparseLabelMatrix.from_dense(self._dense),
            lf_names=self.lf_names,
            cardinality=self.cardinality,
        )

    def to_dense(self) -> "LabelMatrix":
        """This matrix with dense storage (self if already dense)."""
        if not self.is_sparse:
            return self
        return LabelMatrix(
            self._sparse.to_dense(), lf_names=self.lf_names, cardinality=self.cardinality
        )

    @classmethod
    def from_sparse(
        cls,
        storage: SparseLabelMatrix,
        lf_names: Optional[Sequence[str]] = None,
        cardinality: int = 2,
    ) -> "LabelMatrix":
        """Wrap an existing :class:`SparseLabelMatrix` (or scipy sparse matrix)."""
        if not isinstance(storage, SparseLabelMatrix):
            storage = SparseLabelMatrix.from_scipy(storage)
        return cls(storage, lf_names=lf_names, cardinality=cardinality)

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, int]:
        """``(num_candidates, num_lfs)``."""
        if self._dense is not None:
            return self._dense.shape  # type: ignore[return-value]
        return self._sparse.shape

    @property
    def num_candidates(self) -> int:
        """Number of data points (rows)."""
        return self.shape[0]

    @property
    def num_lfs(self) -> int:
        """Number of labeling functions (columns)."""
        return self.shape[1]

    def __getitem__(self, item):
        return self.values[item]

    def column(self, lf_name: str) -> np.ndarray:
        """Return the (dense) label vector of the LF called ``lf_name``."""
        try:
            index = self.lf_names.index(lf_name)
        except ValueError:
            raise LabelingError(f"no labeling function named {lf_name!r}") from None
        if self._dense is not None:
            return self._dense[:, index]
        rows, vals = self._sparse.column(index)
        column = np.full(self.num_candidates, ABSTAIN, dtype=np.int64)
        column[rows] = vals
        return column

    def select_lfs(self, names_or_indices: Iterable) -> "LabelMatrix":
        """Return a new matrix restricted to the given LFs (by name or index).

        The storage backend (dense or sparse) is preserved.
        """
        indices = []
        for item in names_or_indices:
            if isinstance(item, str):
                if item not in self.lf_names:
                    raise LabelingError(f"no labeling function named {item!r}")
                indices.append(self.lf_names.index(item))
            else:
                indices.append(int(item))
        if self._dense is not None:
            selected: Union[np.ndarray, SparseLabelMatrix] = self._dense[:, indices]
        else:
            selected = self._sparse.select_columns(indices)
        return LabelMatrix(
            selected,
            lf_names=[self.lf_names[i] for i in indices],
            cardinality=self.cardinality,
        )

    def select_rows(self, row_indices: Sequence[int] | np.ndarray) -> "LabelMatrix":
        """Return a new matrix restricted to the given rows (storage preserved)."""
        row_indices = np.asarray(row_indices)
        if self._dense is not None:
            selected: Union[np.ndarray, SparseLabelMatrix] = self._dense[row_indices]
        else:
            selected = self._sparse.select_rows(row_indices)
        return LabelMatrix(selected, lf_names=self.lf_names, cardinality=self.cardinality)

    # --------------------------------------------------------------- statistics
    @property
    def non_abstain_mask(self) -> np.ndarray:
        """Boolean mask of non-abstaining entries (dense, ``(m, n)``)."""
        if self._dense is not None:
            return self._dense != ABSTAIN
        mask = np.zeros(self.shape, dtype=bool)
        mask[self._sparse.entry_rows(), self._sparse.indices] = True
        return mask

    def label_density(self) -> float:
        """Mean number of non-abstaining labels per data point (paper's d_Λ)."""
        if self.num_candidates == 0:
            return 0.0
        if self._sparse is not None:
            return float(self._sparse.nnz / self.num_candidates)
        return float(self.non_abstain_mask.sum(axis=1).mean())

    def coverage(self) -> float:
        """Fraction of data points with at least one non-abstaining label."""
        if self.num_candidates == 0:
            return 0.0
        if self._sparse is not None:
            return float((self._sparse.row_nnz() > 0).mean())
        return float((self.non_abstain_mask.sum(axis=1) > 0).mean())

    def lf_coverage(self) -> np.ndarray:
        """Per-LF fraction of data points it labels."""
        if self.num_candidates == 0:
            return np.zeros(self.num_lfs)
        if self._sparse is not None:
            return self._sparse.col_nnz() / self.num_candidates
        return self.non_abstain_mask.mean(axis=0)

    def lf_polarity(self) -> list[list[int]]:
        """Per-LF sorted list of distinct non-abstain labels it emits."""
        polarities = []
        for j in range(self.num_lfs):
            if self._sparse is not None:
                _, vals = self._sparse.column(j)
                polarities.append(sorted(int(v) for v in np.unique(vals)))
            else:
                column = self._dense[:, j]
                polarities.append(sorted(int(v) for v in np.unique(column[column != ABSTAIN])))
        return polarities

    def class_balance(self) -> dict[int, float]:
        """Distribution of emitted (non-abstain) labels across the matrix."""
        if self._sparse is not None:
            non_abstain = self._sparse.data
        else:
            non_abstain = self._dense[self._dense != ABSTAIN]
        if non_abstain.size == 0:
            return {}
        labels, counts = np.unique(non_abstain, return_counts=True)
        total = counts.sum()
        return {int(label): float(count) / total for label, count in zip(labels, counts)}

    def vote_counts(self, label: int) -> np.ndarray:
        """Per-row counts of LFs voting exactly ``label`` (the paper's c_y(Λ_i))."""
        if self._sparse is not None:
            return self._sparse.count_per_row(label)
        return (self._dense == label).sum(axis=1)

    def covered_rows(self) -> np.ndarray:
        """Boolean mask of rows with at least one non-abstaining label."""
        if self._sparse is not None:
            return self._sparse.row_nnz() > 0
        return (self._dense != ABSTAIN).any(axis=1)

    def row_sums(self) -> np.ndarray:
        """Per-row sum of the entries (the unweighted vote score ``f_1(Λ_i)``)."""
        if self._sparse is not None:
            return self._sparse.row_sums()
        return self._dense.sum(axis=1).astype(float)

    # ----------------------------------------------------------------- exports
    def to_array(self) -> np.ndarray:
        """Return a (dense) copy of the underlying integer array."""
        if self._dense is not None:
            return self._dense.copy()
        return self._sparse.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        backend = "sparse" if self.is_sparse else "dense"
        return (
            f"LabelMatrix(shape={self.shape}, storage={backend}, "
            f"density={self.label_density():.2f}, coverage={self.coverage():.2f})"
        )
