"""Pushdown LF execution: compiled columnar kernels behind the engine API.

The interpreted hot path calls every labeling function on every candidate —
``m × n`` Python frames, each re-reading the candidate fields it needs.
This package removes both costs for the declarative majority of a suite:

* :mod:`~repro.labeling.pushdown.fields` extracts each candidate field a
  suite reads into a numpy column **once per chunk**;
* :mod:`~repro.labeling.pushdown.compiler` symbolically executes each LF
  body the analyzer classified ``COMPILABLE`` into a
  :class:`~repro.labeling.pushdown.program.CompiledProgram` — vectorized
  comparisons for threshold/equality shapes, precompiled regex sweeps,
  frozenset membership kernels, shared per-row normalization;
* :mod:`~repro.labeling.pushdown.task` packages the compiled/fallback
  partition as a :class:`~repro.labeling.pushdown.task.PushdownPlan` and
  exposes :func:`~repro.labeling.pushdown.task.label_chunk_pushdown`, a
  drop-in engine chunk task composing with every executor backend and the
  fused label+featurize path.

The cardinal rule: compiled output is **bit-identical** to interpreted
output — same triples in the same order, same suppressed-error accounting,
same exception out of a non-fault-tolerant run.  The compiler refuses
anything it cannot reproduce exactly, and refused LFs transparently fall
back to the interpreted loop (``LFApplier(pushdown="auto")``).
"""

from repro.labeling.pushdown.compiler import CompileError, compile_lf
from repro.labeling.pushdown.fields import Column, ColumnarChunk
from repro.labeling.pushdown.program import Branch, ColExpr, CompiledProgram
from repro.labeling.pushdown.task import (
    CompiledLF,
    PushdownPlan,
    PushdownSummary,
    build_fused_worker_payload,
    build_plan,
    build_worker_payload,
    label_chunk_pushdown,
    label_pushdown_and_featurize_chunk,
)

__all__ = [
    "Branch",
    "ColExpr",
    "Column",
    "ColumnarChunk",
    "CompileError",
    "CompiledLF",
    "CompiledProgram",
    "PushdownPlan",
    "PushdownSummary",
    "build_fused_worker_payload",
    "build_plan",
    "build_worker_payload",
    "compile_lf",
    "label_chunk_pushdown",
    "label_pushdown_and_featurize_chunk",
]
