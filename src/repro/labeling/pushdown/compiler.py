"""Restricted symbolic execution of LF bodies into columnar programs.

:func:`compile_lf` walks the AST of a labeling function (recovered by
:mod:`repro.analysis.source`) with an abstract environment mapping names to

* ``K(value)`` — a constant resolved from the closure/globals (labels,
  compiled patterns, keyword sets, thresholds);
* a :class:`~repro.labeling.pushdown.program.ColExpr` — a per-candidate
  column expression;
* ``_Obj(kind)`` — the candidate object itself or one of its span/sentence
  sub-objects, whose attribute and method reads become
  :class:`~repro.labeling.pushdown.program.FieldCol` s.

Statements are executed symbolically: assignments bind names, ``if`` s with
constant tests fold (dead arms — like the ``raise ValueError`` else-arm of
the declarative factories' scope dispatch — are never visited), ``if`` s with
column tests fork the environment and either terminate per arm (emitting
:class:`~repro.labeling.pushdown.program.Branch` es guarded by the path
condition) or φ-merge divergent bindings through ``IfExpCol``.  A ``for``
loop is accepted only as the ``any()`` idiom (``for t in seq: if pred(t):
return CONST``).  Every ``return`` site becomes one branch; branches are
emitted in source order, and the evaluator's undecided-row masking
reproduces first-return-wins control flow exactly.

Anything outside the subset raises :class:`CompileError`, and the caller
falls back to the interpreted LF — the compiler is *sound, not complete*:
it may refuse, it must never produce different labels or errors.
"""

from __future__ import annotations

import ast
import re
from typing import Any, Callable, Optional

from repro.analysis.source import SourceInfo, extract_source, is_unresolved
from repro.labeling.pushdown import program as prog
from repro.labeling.pushdown.fields import (
    CANDIDATE_ATTRS,
    CANDIDATE_METHODS,
    SENTENCE_ATTRS,
    SPAN_ATTRS,
    WINDOW_METHODS,
)
from repro.labeling.pushdown.program import (
    K,
    AnyElem,
    BinCol,
    BoolAnd,
    BoolOr,
    Branch,
    ColExpr,
    Compare,
    CompiledProgram,
    ConstBool,
    Contains,
    ContainsPhrase,
    FieldCol,
    IfExpCol,
    LenCol,
    Map2,
    MapElems,
    MapRow,
    NegCol,
    NotCol,
    RegexSearch,
    StrLower,
    TokenMatch,
    Truthy,
    TupleCol,
    const_key,
)
from repro.utils.textutils import normalize as _normalize

__all__ = ["CompileError", "compile_lf"]


class CompileError(Exception):
    """The LF body fell outside the compilable subset; use the fallback."""


class _Obj:
    """The candidate (or one of its sub-objects) flowing through the body."""

    __slots__ = ("kind",)

    def __init__(self, kind: str) -> None:
        self.kind = kind  # "candidate" | "span1" | "span2" | "sentence"


#: Candidate attribute aliases onto the two spans and the sentence.
_SPAN_ALIASES = {
    "span1": "span1",
    "chemical": "span1",
    "person1": "span1",
    "span2": "span2",
    "disease": "span2",
    "person2": "span2",
}
_SENTENCE_ALIASES = {"sentence": "sentence", "parent": "sentence"}

#: Pure helper functions the compiler may push into per-row kernels,
#: identified by ``(module, qualname)`` — the same registry discipline as
#: :data:`repro.analysis.pushdown._PURE_HELPERS`.
_HELPER_NORMALIZE = ("repro.utils.textutils", "normalize")
_HELPER_CONTAINS_PHRASE = ("repro.labeling.declarative", "_contains_phrase")
_HELPER_CONTAINS_ANY = ("repro.utils.textutils", "contains_any")
_SCALAR_HELPERS = {_HELPER_NORMALIZE}

_REGEX_METHODS = {"search", "match", "fullmatch"}

#: ``_scalar`` keys identifying the two elementwise transforms whose
#: container idioms lower to the vectorized :class:`TokenMatch` kernel.
_NORMALIZE_ELEM_KEY = ("call", _HELPER_NORMALIZE, ("var",))
_IDENTITY_ELEM_KEY = ("var",)


def _phrase_check(phrase: tuple):
    """The exact single-token row check :class:`ContainsPhrase` applies."""
    first = phrase[0]

    def check(row):
        if type(row) in (list, tuple):
            return first in row
        return any(tuple(row[i : i + 1]) == phrase for i in range(len(row)))

    return check

#: Builtins allowed as single-column per-row transforms.
_ROW_BUILTINS = {
    "len", "str", "int", "float", "abs", "bool", "tuple", "list", "set",
    "frozenset", "sorted", "sum", "min", "max", "any", "all",
}
_BOOL_BUILTINS = {"bool", "any", "all"}

#: String-ish methods allowed per row on a column receiver (called through
#: ``getattr`` at runtime, so non-string rows raise exactly as interpreted).
_ROW_METHODS = {
    "lower", "upper", "strip", "lstrip", "rstrip", "title", "casefold",
    "startswith", "endswith", "find", "rfind", "count", "index",
    "split", "rsplit", "replace", "join",
    "isdigit", "isalpha", "isalnum", "islower", "isupper",
}
_BOOL_METHODS = {
    "startswith", "endswith", "isdigit", "isalpha", "isalnum", "islower", "isupper",
}

_CMP_AST = {
    ast.Lt: "lt", ast.LtE: "le", ast.Gt: "gt", ast.GtE: "ge",
    ast.Eq: "eq", ast.NotEq: "ne", ast.Is: "is", ast.IsNot: "is_not",
}
_BIN_AST = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "truediv",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.BitAnd: "and_", ast.BitOr: "or_", ast.BitXor: "xor",
}

#: Constants safe to vectorize alongside int64 field columns without any
#: risk of int64 overflow (fields themselves are bounded by make_column).
_CONST_BOUND = 2**61


def _fqn(fn: Any) -> tuple:
    return (getattr(fn, "__module__", None), getattr(fn, "__qualname__", None))


def _is_atomic_int(sym: Any) -> bool:
    """Operand whose int64 magnitude is bounded (safe to vector add/sub)."""
    if isinstance(sym, K):
        return type(sym.value) is int and -_CONST_BOUND < sym.value < _CONST_BOUND
    return isinstance(sym, (FieldCol, LenCol))


def compile_lf(lf: Any, cardinality: Optional[int] = None) -> CompiledProgram:
    """Compile one LF into a :class:`CompiledProgram`, or raise
    :class:`CompileError` when the body is outside the supported subset."""
    if cardinality is None:
        declared = getattr(lf, "cardinality", None)
        cardinality = int(declared) if isinstance(declared, int) else 2
    name = getattr(lf, "name", None) or getattr(lf, "__name__", None) or type(lf).__name__
    inner = getattr(lf, "function", lf)
    info = extract_source(lf)
    if info.tree is None:
        raise CompileError(f"source {info.failure or 'unavailable'}")
    compiler = _Compiler(info, name, cardinality, instance=inner)
    return compiler.compile()


class _Compiler:
    def __init__(self, info: SourceInfo, lf_name: str, cardinality: int, instance: Any = None):
        self.info = info
        self.lf_name = lf_name
        self.cardinality = cardinality
        self.instance = instance
        self.branches: list[Branch] = []
        self.assigned: set[str] = set()

    # ------------------------------------------------------------- top level
    def compile(self) -> CompiledProgram:
        tree = self.info.tree
        env = self._initial_env(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.assigned.add(node.id)
        if isinstance(tree, ast.Lambda):
            self._emit_return(tree.body, env, None)
        else:
            terminated = self._block(tree.body, env, None)
            if not terminated:
                # Falling off the end returns None → abstain; rows reaching
                # here are exactly the still-undecided ones, already 0.
                pass
        if not self.branches:
            raise CompileError("no return sites compiled")
        return CompiledProgram(self.branches, self.lf_name, self.cardinality)

    def _initial_env(self, tree: ast.AST) -> dict:
        args = tree.args
        names = [arg.arg for arg in args.posonlyargs + args.args]
        if args.vararg or args.kwarg or args.kwonlyargs:
            raise CompileError("*args/**kwargs/keyword-only parameters")
        env: dict[str, Any] = {}
        index = 0
        if names and names[0] == "self":
            if self.instance is None or not callable(self.instance):
                raise CompileError("unbound self parameter")
            env["self"] = K(self.instance)
            index = 1
        if index >= len(names):
            raise CompileError("no candidate parameter")
        env[names[index]] = _Obj("candidate")
        extra = names[index + 1 :]
        defaults = getattr(self.info.function, "__defaults__", None) or ()
        if len(extra) > len(defaults):
            raise CompileError("extra parameters without defaults")
        for param, value in zip(extra, defaults[len(defaults) - len(extra) :]):
            env[param] = K(value)
        return env

    # ------------------------------------------------------------ statements
    def _block(self, stmts: list, env: dict, path: Optional[ColExpr]) -> bool:
        """Symbolically execute a statement list; True when every row on
        this path has returned."""
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Return):
                self._emit_return(stmt.value, env, path)
                return True
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                    raise CompileError("non-name assignment target")
                env[stmt.targets[0].id] = self._value_sym(stmt.value, env)
                continue
            if isinstance(stmt, ast.AnnAssign):
                if stmt.value is None or not isinstance(stmt.target, ast.Name):
                    raise CompileError("annotation-only assignment")
                env[stmt.target.id] = self._value_sym(stmt.value, env)
                continue
            if isinstance(stmt, ast.If):
                cond = self._condition(stmt.test, env)
                if isinstance(cond, K):
                    live = stmt.body if cond.value else stmt.orelse
                    if live and self._block(live, env, path):
                        return True
                    continue
                then_env = dict(env)
                else_env = dict(env)
                then_term = self._block(stmt.body, then_env, self._and(path, cond))
                negated = self._negate(cond)
                else_term = (
                    self._block(stmt.orelse, else_env, self._and(path, negated))
                    if stmt.orelse
                    else False
                )
                if then_term and else_term:
                    return True
                if then_term:
                    env.clear()
                    env.update(else_env)
                    path = self._and(path, negated)
                    continue
                if else_term:
                    env.clear()
                    env.update(then_env)
                    path = self._and(path, cond)
                    continue
                merged = self._phi(then_env, else_env, cond)
                env.clear()
                env.update(merged)
                continue
            if isinstance(stmt, ast.For):
                self._compile_any_loop(stmt, env, path)
                continue
            raise CompileError(f"unsupported statement {type(stmt).__name__}")
        return False

    def _phi(self, then_env: dict, else_env: dict, cond: ColExpr) -> dict:
        merged: dict[str, Any] = {}
        for name, then_sym in then_env.items():
            if name not in else_env:
                continue  # conditionally bound; later reads fail → fallback
            else_sym = else_env[name]
            if then_sym is else_sym:
                merged[name] = then_sym
                continue
            if isinstance(then_sym, _Obj) or isinstance(else_sym, _Obj):
                if isinstance(then_sym, _Obj) and isinstance(else_sym, _Obj):
                    if then_sym.kind == else_sym.kind:
                        merged[name] = then_sym
                continue
            if then_sym.key == else_sym.key:
                merged[name] = then_sym
                continue
            merged[name] = IfExpCol(cond, then_sym, else_sym)
        return merged

    def _compile_any_loop(self, stmt: ast.For, env: dict, path: Optional[ColExpr]) -> None:
        """``for t in seq: if pred(t): return CONST`` → an AnyElem branch."""
        if stmt.orelse or not isinstance(stmt.target, ast.Name):
            raise CompileError("loop outside the any() idiom")
        body = stmt.body
        if (
            len(body) != 1
            or not isinstance(body[0], ast.If)
            or body[0].orelse
            or len(body[0].body) != 1
            or not isinstance(body[0].body[0], ast.Return)
        ):
            raise CompileError("loop outside the any() idiom")
        sequence = self._value_sym(stmt.iter, env)
        if not isinstance(sequence, ColExpr):
            raise CompileError("loop iterable is not a candidate column")
        var = stmt.target.id
        value = self._const_label(body[0].body[0].value, env)
        cond = self._specialize_membership(body[0].test, var, env, sequence)
        if cond is None:
            pred, pred_key = self._scalar(body[0].test, var, env)
            cond = AnyElem(sequence, pred, pred_key)
        guard = self._and(path, cond)
        self.branches.append(Branch(guard, value=value))
        env.pop(var, None)  # the loop variable leaks a data-dependent value

    # --------------------------------------------------------------- returns
    def _emit_return(self, node: Optional[ast.AST], env: dict, path: Optional[ColExpr]) -> None:
        if node is None or (isinstance(node, ast.Constant) and node.value is None):
            self.branches.append(Branch(path, value=0))
            return
        if isinstance(node, ast.IfExp):
            cond = self._condition(node.test, env)
            if isinstance(cond, K):
                self._emit_return(node.body if cond.value else node.orelse, env, path)
                return
            self._emit_return(node.body, env, self._and(path, cond))
            self._emit_return(node.orelse, env, self._and(path, self._negate(cond)))
            return
        sym = self._value_sym(node, env)
        if isinstance(sym, K):
            self.branches.append(Branch(path, value=self._canonical_const(sym.value)))
            return
        if isinstance(sym, _Obj):
            raise CompileError("returning the candidate object")
        if sym.cond_only:
            raise CompileError("returning a truthiness proxy value")
        self.branches.append(Branch(path, column=sym))

    def _const_label(self, node: Optional[ast.AST], env: dict) -> int:
        if node is None:
            return 0
        sym = self._value_sym(node, env)
        if not isinstance(sym, K):
            raise CompileError("loop return value is not a constant")
        return self._canonical_const(sym.value)

    def _canonical_const(self, raw: Any) -> int:
        if raw is None:
            return 0
        if raw is True:
            return 1
        if raw is False:
            return -1
        if isinstance(raw, int) and not isinstance(raw, bool):
            value = int(raw)
            if self.cardinality == 2:
                if value in (-1, 0, 1):
                    return value
            elif 0 <= value <= self.cardinality:
                return value
            # The interpreted path raises per candidate; refusing keeps the
            # compiled path from having to replicate a guaranteed error.
            raise CompileError(f"constant label {value} outside the declared range")
        raise CompileError(f"constant return of type {type(raw).__name__}")

    # --------------------------------------------- token-kernel specialization
    def _token_source(self, sym):
        """``(src, elem_fn, lower, kind)`` when ``sym`` is a container built
        by mapping normalize/identity over a token column, else ``None``."""
        if not isinstance(sym, MapElems) or sym.filter_fn is not None:
            return None
        fn_key = sym.key[2]
        kind = sym.key[1]
        if fn_key == _NORMALIZE_ELEM_KEY:
            return sym.child, sym.elem_fn, True, kind
        if fn_key == _IDENTITY_ELEM_KEY:
            return sym.child, sym.elem_fn, False, kind
        return None

    def _specialize_phrase(self, tokens: ColExpr, phrase: tuple):
        """Single-token phrase containment → vectorized :class:`TokenMatch`."""
        if len(phrase) != 1 or type(phrase[0]) is not str:
            return None
        check = _phrase_check(phrase)
        source = self._token_source(tokens)
        if source is not None:
            child, elem_fn, lower, kind = source
            if kind not in ("list", "tuple"):
                return None
            build = MapElems._BUILDERS[kind]
            fallback = lambda row, f=elem_fn, b=build, c=check: c(b(map(f, row)))  # noqa: E731
            return TokenMatch(child, "eq", phrase[0], lower, fallback)
        return TokenMatch(tokens, "eq", phrase[0], False, check)

    def _specialize_membership(self, elt: ast.AST, var: str, env: dict, sequence: ColExpr):
        """``any(t in VOCAB ...)`` / ``any(normalize(t) in VOCAB ...)`` →
        vectorized :class:`TokenMatch` membership."""
        if (
            not isinstance(elt, ast.Compare)
            or len(elt.ops) != 1
            or not isinstance(elt.ops[0], ast.In)
        ):
            return None
        left = elt.left
        lower = False
        if (
            isinstance(left, ast.Call)
            and not left.keywords
            and len(left.args) == 1
            and isinstance(left.args[0], ast.Name)
            and left.args[0].id == var
            and isinstance(left.func, ast.Name)
        ):
            callee = env.get(left.func.id)
            if callee is None:
                resolved = self.info.resolve_name(left.func.id)
                if is_unresolved(resolved) or left.func.id in self.assigned:
                    return None
                callee = K(resolved)
            if not isinstance(callee, K) or _fqn(callee.value) != _HELPER_NORMALIZE:
                return None
            lower = True
        elif not (isinstance(left, ast.Name) and left.id == var):
            return None
        try:
            container_fn, container_key = self._scalar(elt.comparators[0], var, env)
            pred, _ = self._scalar(elt, var, env)
        except CompileError:
            return None
        if container_key[:1] != ("k",):
            return None
        container = container_fn(None)  # a constant closure; the arg is unused
        if not isinstance(container, (set, frozenset, tuple, list, dict)):
            return None
        # The fallback short-circuits exactly like the interpreted any().
        fallback = lambda row, p=pred: any(map(p, row))  # noqa: E731
        return TokenMatch(sequence, "isin", container, lower, fallback)

    def _truthy(self, sym: ColExpr) -> ColExpr:
        """Truthiness, with container idioms lowered to vectorized kernels."""
        source = self._token_source(sym)
        if source is not None:
            child, elem_fn, lower, kind = source
            build = MapElems._BUILDERS[kind]
            fallback = lambda row, f=elem_fn, b=build: bool(b(map(f, row)))  # noqa: E731
            return TokenMatch(child, "nonempty", None, lower, fallback)
        if isinstance(sym, BinCol) and sym.op == "and_":
            for mapped, const in ((sym.left, sym.right), (sym.right, sym.left)):
                if not isinstance(const, K) or not isinstance(
                    const.value, (set, frozenset)
                ):
                    continue
                source = self._token_source(mapped)
                if source is None or source[3] != "set":
                    continue
                child, elem_fn, lower, _ = source
                vocab = const.value
                # bool({f(t) for t in row} & vocab) ≡ any token's image in
                # vocab; the comprehension (not the &) is what can raise, so
                # the fallback rebuilds the set exactly as interpreted.
                fallback = (  # noqa: E731
                    lambda row, f=elem_fn, v=vocab: bool({f(t) for t in row} & v)
                )
                return TokenMatch(child, "isin", vocab, lower, fallback)
        return Truthy(sym)

    # ------------------------------------------------------------ conditions
    def _and(self, path: Optional[ColExpr], cond: ColExpr) -> ColExpr:
        return cond if path is None else BoolAnd(path, cond)

    def _negate(self, cond: ColExpr) -> ColExpr:
        return NotCol(cond)

    def _condition(self, node: ast.AST, env: dict):
        """Compile in condition position → ``K`` (folded) or a bool ColExpr."""
        if isinstance(node, ast.BoolOp):
            is_and = isinstance(node.op, ast.And)
            chain: Optional[ColExpr] = None
            for value in node.values:
                sym = self._condition(value, env)
                if isinstance(sym, K):
                    if bool(sym.value) == is_and:
                        continue  # identity element: skip
                    # Absorbing element: evaluation short-circuits here, but
                    # errors from the columns already in the chain survive.
                    if chain is None:
                        return K(bool(sym.value))
                    terminal = ConstBool(not is_and)
                    return BoolAnd(chain, terminal) if is_and else BoolOr(chain, terminal)
                chain = (
                    sym
                    if chain is None
                    else (BoolAnd(chain, sym) if is_and else BoolOr(chain, sym))
                )
            return chain if chain is not None else K(is_and)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            sym = self._condition(node.operand, env)
            if isinstance(sym, K):
                return K(not sym.value)
            return NotCol(sym)
        sym = self._value_sym(node, env)
        if isinstance(sym, K):
            return sym
        if isinstance(sym, _Obj):
            raise CompileError("candidate object in condition position")
        if sym.is_bool:
            return sym
        return self._truthy(sym)

    # ----------------------------------------------------------- expressions
    def _value_sym(self, node: ast.AST, env: dict):
        """Compile in value position → ``K`` | ``ColExpr`` | ``_Obj``."""
        if isinstance(node, ast.Constant):
            return K(node.value)
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in self.assigned:
                raise CompileError(f"read of unassigned local {node.id!r}")
            value = self.info.resolve_name(node.id)
            if is_unresolved(value):
                raise CompileError(f"unresolved name {node.id!r}")
            return K(value)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.BoolOp):
            return self._value_boolop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node, env)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.IfExp):
            cond = self._condition(node.test, env)
            if isinstance(cond, K):
                return self._value_sym(node.body if cond.value else node.orelse, env)
            then_sym = self._operand(node.body, env)
            else_sym = self._operand(node.orelse, env)
            return IfExpCol(cond, then_sym, else_sym)
        if isinstance(node, ast.Subscript):
            return self._subscript(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            kind = {ast.Tuple: "tuple", ast.List: "list", ast.Set: "set"}[type(node)]
            items = [self._operand(item, env) for item in node.elts]
            if all(isinstance(item, K) for item in items):
                builder = {"tuple": tuple, "list": list, "set": set}[kind]
                return K(builder(item.value for item in items))
            return TupleCol(items, kind)
        if isinstance(node, (ast.ListComp, ast.SetComp)):
            return self._comprehension(node, env)
        raise CompileError(f"unsupported expression {type(node).__name__}")

    def _operand(self, node: ast.AST, env: dict):
        sym = self._value_sym(node, env)
        if isinstance(sym, _Obj):
            raise CompileError("candidate object used as a value")
        return sym

    def _attribute(self, node: ast.Attribute, env: dict):
        base = self._value_sym(node.value, env)
        attr = node.attr
        if isinstance(base, _Obj):
            if base.kind == "candidate":
                if attr in _SPAN_ALIASES:
                    return _Obj(_SPAN_ALIASES[attr])
                if attr in _SENTENCE_ALIASES:
                    return _Obj("sentence")
                if attr in CANDIDATE_ATTRS:
                    return FieldCol((attr,))
                raise CompileError(f"candidate attribute {attr!r}")
            if base.kind in ("span1", "span2"):
                if attr in SPAN_ATTRS:
                    return FieldCol((base.kind, attr))
                raise CompileError(f"span attribute {attr!r}")
            if base.kind == "sentence":
                if attr in SENTENCE_ATTRS:
                    return FieldCol(("sentence", attr))
                raise CompileError(f"sentence attribute {attr!r}")
            raise CompileError(f"object attribute {attr!r}")
        if isinstance(base, K):
            try:
                return K(getattr(base.value, attr))
            except Exception as exc:
                raise CompileError(f"constant attribute {attr!r}: {exc}") from exc
        raise CompileError(f"attribute {attr!r} on a column value")

    def _compare(self, node: ast.Compare, env: dict):
        if len(node.ops) != 1:
            raise CompileError("chained comparison")
        op = node.ops[0]
        left = self._operand(node.left, env)
        right = self._operand(node.comparators[0], env)
        if isinstance(op, (ast.In, ast.NotIn)):
            negate = isinstance(op, ast.NotIn)
            if isinstance(left, K) and isinstance(right, K):
                try:
                    result = left.value in right.value
                except Exception as exc:
                    raise CompileError(f"constant membership failed: {exc}") from exc
                return K(result != negate)
            return Contains(left, right, negate=negate)
        if type(op) not in _CMP_AST:
            raise CompileError(f"comparison {type(op).__name__}")
        op_name = _CMP_AST[type(op)]
        if isinstance(left, K) and isinstance(right, K):
            try:
                result = prog._CMP_OPS[op_name](left.value, right.value)
            except Exception as exc:
                raise CompileError(f"constant comparison failed: {exc}") from exc
            return K(result)
        return Compare(op_name, left, right)

    def _value_boolop(self, node: ast.BoolOp, env: dict):
        # ``a and b`` in value position returns an *operand*, not a bool;
        # only all-real-bool operands make the condition fold equivalent.
        for value in node.values:
            sym = self._value_sym(value, env)
            if isinstance(sym, K):
                if type(sym.value) is not bool:
                    raise CompileError("non-boolean operand in value-position and/or")
            elif isinstance(sym, _Obj) or not sym.is_bool or sym.cond_only:
                raise CompileError("non-boolean operand in value-position and/or")
        result = self._condition(node, env)
        return K(bool(result.value)) if isinstance(result, K) else result

    def _unaryop(self, node: ast.UnaryOp, env: dict):
        if isinstance(node.op, ast.Not):
            sym = self._condition(node.operand, env)
            if isinstance(sym, K):
                return K(not sym.value)
            return NotCol(sym)
        operand = self._operand(node.operand, env)
        if isinstance(operand, K):
            try:
                if isinstance(node.op, ast.USub):
                    return K(-operand.value)
                if isinstance(node.op, ast.UAdd):
                    return K(+operand.value)
                if isinstance(node.op, ast.Invert):
                    return K(~operand.value)
            except Exception as exc:
                raise CompileError(f"constant unary op failed: {exc}") from exc
        if isinstance(node.op, ast.USub):
            return NegCol(operand)
        raise CompileError(f"unary {type(node.op).__name__} on a column")

    def _binop(self, node: ast.BinOp, env: dict):
        left = self._operand(node.left, env)
        right = self._operand(node.right, env)
        if type(node.op) not in _BIN_AST:
            raise CompileError(f"operator {type(node.op).__name__}")
        op_name = _BIN_AST[type(node.op)]
        if isinstance(left, K) and isinstance(right, K):
            try:
                return K(prog._BIN_OPS[op_name](left.value, right.value))
            except Exception as exc:
                raise CompileError(f"constant arithmetic failed: {exc}") from exc
        vectorize = (
            op_name in ("add", "sub") and _is_atomic_int(left) and _is_atomic_int(right)
        )
        return BinCol(op_name, left, right, vectorize=vectorize)

    def _subscript(self, node: ast.Subscript, env: dict):
        base = self._operand(node.value, env)
        if isinstance(node.slice, ast.Slice):
            parts = []
            for bound in (node.slice.lower, node.slice.upper, node.slice.step):
                if bound is None:
                    parts.append(None)
                else:
                    bound_sym = self._operand(bound, env)
                    if not isinstance(bound_sym, K):
                        raise CompileError("non-constant slice bound")
                    parts.append(bound_sym.value)
            index: Any = K(slice(*parts))
        else:
            index = self._operand(node.slice, env)
        if isinstance(base, K) and isinstance(index, K):
            try:
                return K(base.value[index.value])
            except Exception as exc:
                raise CompileError(f"constant subscript failed: {exc}") from exc
        getter = lambda container, key: container[key]  # noqa: E731
        return Map2(base, index, getter, ("getitem",))

    def _comprehension(self, node, env: dict, kind: Optional[str] = None):
        if kind is None:
            kind = "list" if isinstance(node, ast.ListComp) else "set"
        if len(node.generators) != 1:
            raise CompileError("nested comprehension")
        gen = node.generators[0]
        if gen.is_async or not isinstance(gen.target, ast.Name):
            raise CompileError("unsupported comprehension target")
        if len(gen.ifs) > 1:
            raise CompileError("multiple comprehension filters")
        sequence = self._value_sym(gen.iter, env)
        if not isinstance(sequence, ColExpr):
            raise CompileError("comprehension over a non-column iterable")
        var = gen.target.id
        elem_fn, elem_key = self._scalar(node.elt, var, env)
        if gen.ifs:
            filter_fn, filter_key = self._scalar(gen.ifs[0], var, env)
            return MapElems(sequence, elem_fn, elem_key, kind, filter_fn, filter_key)
        return MapElems(sequence, elem_fn, elem_key, kind)

    # ----------------------------------------------------------------- calls
    def _call(self, node: ast.Call, env: dict):
        if node.keywords:
            raise CompileError("keyword arguments in call")
        func = node.func
        if isinstance(func, ast.Attribute):
            return self._method_call(func, node.args, env)
        callee = self._value_sym(func, env)
        if not isinstance(callee, K):
            raise CompileError("calling a non-constant callable")
        fn = callee.value
        fqn = _fqn(fn)
        args = node.args
        if fqn == _HELPER_CONTAINS_PHRASE and len(args) == 2:
            tokens = self._operand(args[0], env)
            phrase = self._operand(args[1], env)
            if isinstance(tokens, ColExpr) and isinstance(phrase, K):
                try:
                    phrase_tuple = tuple(phrase.value)
                except TypeError as exc:
                    raise CompileError("non-sequence phrase constant") from exc
                special = self._specialize_phrase(tokens, phrase_tuple)
                if special is not None:
                    return special
                return ContainsPhrase(tokens, phrase_tuple)
        if fqn == _HELPER_CONTAINS_ANY and len(args) == 2:
            tokens = self._operand(args[0], env)
            vocab = self._operand(args[1], env)
            if isinstance(tokens, ColExpr) and isinstance(vocab, K):
                helper, vocabulary = fn, vocab.value
                fallback = lambda row: helper(row, vocabulary)  # noqa: E731
                try:
                    # contains_any normalizes its (constant) vocabulary per
                    # call; hoist that to compile time for the vector kernel.
                    vocab_norm = frozenset(_normalize(word) for word in vocabulary)
                except Exception:
                    vocab_norm = None  # a bad vocab raises per row; keep generic
                if vocab_norm is not None:
                    return TokenMatch(tokens, "isin", vocab_norm, True, fallback)
                return MapRow(
                    tokens,
                    fallback,
                    ("helper", "contains_any", const_key(vocabulary)),
                    is_bool=True,
                )
        if fqn in _SCALAR_HELPERS and len(args) == 1:
            argument = self._operand(args[0], env)
            if isinstance(argument, K):
                return self._eager_call(fn, [argument.value])
            if fqn == _HELPER_NORMALIZE:
                return StrLower(argument, fn)
            return MapRow(argument, fn, ("helper",) + fqn)
        if fqn[0] == "builtins" and fqn[1] in _ROW_BUILTINS:
            return self._builtin_call(fqn[1], fn, node, env)
        raise CompileError(f"call to {fqn[1] or fn!r}")

    def _builtin_call(self, name: str, fn: Callable, node: ast.Call, env: dict):
        args = node.args
        if name in ("any", "all") and len(args) == 1 and isinstance(args[0], ast.GeneratorExp):
            gen_node = args[0]
            if len(gen_node.generators) != 1:
                raise CompileError("nested generator in any()/all()")
            gen = gen_node.generators[0]
            if gen.is_async or not isinstance(gen.target, ast.Name) or gen.ifs:
                raise CompileError("unsupported generator in any()/all()")
            sequence = self._value_sym(gen.iter, env)
            if not isinstance(sequence, ColExpr):
                raise CompileError("any()/all() over a non-column iterable")
            if name == "any":
                special = self._specialize_membership(
                    gen_node.elt, gen.target.id, env, sequence
                )
                if special is not None:
                    return special
            pred, pred_key = self._scalar(gen_node.elt, gen.target.id, env)
            return AnyElem(sequence, pred, pred_key, want_all=(name == "all"))
        if name in ("tuple", "list", "set", "frozenset") and len(args) == 1 and isinstance(
            args[0], ast.GeneratorExp
        ):
            kind = {"tuple": "tuple", "list": "list", "set": "set", "frozenset": "set"}[name]
            result = self._comprehension(args[0], env, kind=kind)
            if name == "frozenset":
                return MapRow(result, frozenset, ("cast", "frozenset"))
            return result
        syms = [self._operand(arg, env) for arg in args]
        if all(isinstance(sym, K) for sym in syms):
            return self._eager_call(fn, [sym.value for sym in syms])
        if len(syms) == 1 and isinstance(syms[0], ColExpr):
            if name == "len":
                return LenCol(syms[0])
            return MapRow(syms[0], fn, ("builtin", name), is_bool=name in _BOOL_BUILTINS)
        if len(syms) == 2 and name in ("min", "max"):
            return Map2(syms[0], syms[1], fn, ("builtin", name))
        raise CompileError(f"unsupported builtin call {name}()")

    def _eager_call(self, fn: Callable, values: list):
        try:
            return K(fn(*values))
        except Exception as exc:
            raise CompileError(f"constant call failed: {exc}") from exc

    def _method_call(self, func: ast.Attribute, args: list, env: dict):
        base = self._value_sym(func.value, env)
        method = func.attr
        if isinstance(base, _Obj):
            return self._object_method(base, method, args, env)
        if isinstance(base, K):
            receiver = base.value
            if isinstance(receiver, re.Pattern) and method in _REGEX_METHODS:
                if len(args) != 1:
                    raise CompileError("regex method arity")
                argument = self._operand(args[0], env)
                if isinstance(argument, K):
                    return self._eager_call(getattr(receiver, method), [argument.value])
                return RegexSearch(receiver, method, argument)
            if isinstance(receiver, (str, int, float, tuple, frozenset, bytes)):
                syms = [self._operand(arg, env) for arg in args]
                if all(isinstance(sym, K) for sym in syms):
                    return self._eager_call(
                        getattr(receiver, method), [sym.value for sym in syms]
                    )
                if method in _ROW_METHODS and len(syms) == 1:
                    bound = getattr(receiver, method)
                    return MapRow(
                        syms[0],
                        bound,
                        ("constmeth", const_key(receiver), method),
                        is_bool=method in _BOOL_METHODS,
                    )
            raise CompileError(f"method {method!r} on constant {type(receiver).__name__}")
        # Column receiver: per-row method dispatch through getattr keeps the
        # exact AttributeError/TypeError a non-conforming row would raise.
        if method not in _ROW_METHODS:
            raise CompileError(f"method {method!r} on a column value")
        syms = [self._operand(arg, env) for arg in args]
        if not all(isinstance(sym, K) for sym in syms):
            raise CompileError("non-constant method arguments")
        arg_values = tuple(sym.value for sym in syms)
        fn = lambda row, m=method, a=arg_values: getattr(row, m)(*a)  # noqa: E731
        key = ("rowmeth", method) + tuple(const_key(v) for v in arg_values)
        return MapRow(base, fn, key, is_bool=method in _BOOL_METHODS)

    def _object_method(self, base: _Obj, method: str, args: list, env: dict):
        if base.kind == "candidate":
            if method in CANDIDATE_METHODS:
                if args:
                    raise CompileError(f"{method}() takes no arguments")
                return FieldCol((method,))
            if method in WINDOW_METHODS:
                if len(args) != 1:
                    raise CompileError(f"{method}() arity")
                size = self._operand(args[0], env)
                if not isinstance(size, K) or type(size.value) is not int:
                    raise CompileError(f"{method}() size is not a constant int")
                return FieldCol((method, size.value))
            raise CompileError(f"candidate method {method!r}")
        if base.kind in ("span1", "span2") and method == "get_word_range" and not args:
            return TupleCol(
                (FieldCol((base.kind, "word_start")), FieldCol((base.kind, "word_end"))),
                "tuple",
            )
        raise CompileError(f"method {method!r} on {base.kind}")

    # ------------------------------------------------------- scalar kernels
    def _scalar(self, node: ast.AST, var: str, env: dict):
        """Compile an elementwise expression over loop variable ``var`` into
        a genuine Python closure ``(fn, structural_key)``."""
        if isinstance(node, ast.Name) and node.id == var:
            return (lambda t: t), ("var",)
        if isinstance(node, ast.Constant):
            value = node.value
            return (lambda t, v=value: v), ("k", const_key(value))
        if isinstance(node, ast.Name):
            sym = env.get(node.id)
            if sym is None:
                resolved = self.info.resolve_name(node.id)
                if is_unresolved(resolved) or node.id in self.assigned:
                    raise CompileError(f"unresolved name {node.id!r} in scalar expression")
                sym = K(resolved)
            if not isinstance(sym, K):
                raise CompileError(f"non-constant name {node.id!r} in scalar expression")
            value = sym.value
            return (lambda t, v=value: v), ("k", const_key(value))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise CompileError("chained comparison in scalar expression")
            left_fn, left_key = self._scalar(node.left, var, env)
            right_fn, right_key = self._scalar(node.comparators[0], var, env)
            op = node.ops[0]
            if isinstance(op, (ast.In, ast.NotIn)):
                if isinstance(op, ast.In):
                    fn = lambda t, lf=left_fn, rf=right_fn: lf(t) in rf(t)  # noqa: E731
                else:
                    fn = lambda t, lf=left_fn, rf=right_fn: lf(t) not in rf(t)  # noqa: E731
                return fn, ("cmp", type(op).__name__, left_key, right_key)
            if type(op) not in _CMP_AST:
                raise CompileError(f"scalar comparison {type(op).__name__}")
            op_fn = prog._CMP_OPS[_CMP_AST[type(op)]]
            fn = lambda t, lf=left_fn, rf=right_fn, o=op_fn: o(lf(t), rf(t))  # noqa: E731
            return fn, ("cmp", _CMP_AST[type(op)], left_key, right_key)
        if isinstance(node, ast.BoolOp):
            part_fns = []
            part_keys = []
            for part in node.values:
                part_fn, part_key = self._scalar(part, var, env)
                part_fns.append(part_fn)
                part_keys.append(part_key)
            if isinstance(node.op, ast.And):
                def fn(t, fns=tuple(part_fns)):
                    result = True
                    for part in fns:
                        result = part(t)
                        if not result:
                            return result
                    return result

                return fn, ("and",) + tuple(part_keys)

            def fn(t, fns=tuple(part_fns)):
                result = False
                for part in fns:
                    result = part(t)
                    if result:
                        return result
                return result

            return fn, ("or",) + tuple(part_keys)
        if isinstance(node, ast.UnaryOp):
            child_fn, child_key = self._scalar(node.operand, var, env)
            if isinstance(node.op, ast.Not):
                return (lambda t, cf=child_fn: not cf(t)), ("not", child_key)
            if isinstance(node.op, ast.USub):
                return (lambda t, cf=child_fn: -cf(t)), ("neg", child_key)
            raise CompileError(f"scalar unary {type(node.op).__name__}")
        if isinstance(node, ast.BinOp):
            if type(node.op) not in _BIN_AST:
                raise CompileError(f"scalar operator {type(node.op).__name__}")
            left_fn, left_key = self._scalar(node.left, var, env)
            right_fn, right_key = self._scalar(node.right, var, env)
            op_fn = prog._BIN_OPS[_BIN_AST[type(node.op)]]
            fn = lambda t, lf=left_fn, rf=right_fn, o=op_fn: o(lf(t), rf(t))  # noqa: E731
            return fn, ("bin", _BIN_AST[type(node.op)], left_key, right_key)
        if isinstance(node, ast.Tuple):
            item_pairs = [self._scalar(item, var, env) for item in node.elts]
            fns = tuple(pair[0] for pair in item_pairs)
            keys = tuple(pair[1] for pair in item_pairs)
            return (lambda t, fs=fns: tuple(f(t) for f in fs)), ("tuple",) + keys
        if isinstance(node, ast.Call):
            return self._scalar_call(node, var, env)
        if isinstance(node, ast.Subscript) and not isinstance(node.slice, ast.Slice):
            base_fn, base_key = self._scalar(node.value, var, env)
            index_fn, index_key = self._scalar(node.slice, var, env)
            fn = lambda t, bf=base_fn, xf=index_fn: bf(t)[xf(t)]  # noqa: E731
            return fn, ("getitem", base_key, index_key)
        raise CompileError(f"unsupported scalar expression {type(node).__name__}")

    def _scalar_call(self, node: ast.Call, var: str, env: dict):
        if node.keywords:
            raise CompileError("keyword arguments in scalar call")
        func = node.func
        if isinstance(func, ast.Attribute):
            recv_fn, recv_key = self._scalar(func.value, var, env)
            if func.attr not in _ROW_METHODS:
                raise CompileError(f"scalar method {func.attr!r}")
            arg_pairs = [self._scalar(arg, var, env) for arg in node.args]
            arg_fns = tuple(pair[0] for pair in arg_pairs)
            arg_keys = tuple(pair[1] for pair in arg_pairs)
            method = func.attr

            def fn(t, rf=recv_fn, m=method, afs=arg_fns):
                return getattr(rf(t), m)(*(af(t) for af in afs))

            return fn, ("meth", method, recv_key) + arg_keys
        if not isinstance(func, ast.Name):
            raise CompileError("unsupported scalar callee")
        callee = env.get(func.id)
        if callee is None:
            resolved = self.info.resolve_name(func.id)
            if is_unresolved(resolved) or func.id in self.assigned:
                raise CompileError(f"unresolved scalar callee {func.id!r}")
            callee = K(resolved)
        if not isinstance(callee, K):
            raise CompileError("non-constant scalar callee")
        fn_obj = callee.value
        fqn = _fqn(fn_obj)
        allowed = fqn in _SCALAR_HELPERS or (
            fqn[0] == "builtins"
            and fqn[1] in ("len", "str", "int", "float", "abs", "bool", "tuple")
        )
        if not allowed:
            raise CompileError(f"scalar call to {fqn[1] or fn_obj!r}")
        arg_pairs = [self._scalar(arg, var, env) for arg in node.args]
        if len(arg_pairs) == 1:
            arg_fn, arg_key = arg_pairs[0]
            if arg_key == ("var",):
                return fn_obj, ("call", fqn, arg_key)
            return (
                lambda t, f=fn_obj, af=arg_fn: f(af(t))
            ), ("call", fqn, arg_key)
        arg_fns = tuple(pair[0] for pair in arg_pairs)
        arg_keys = tuple(pair[1] for pair in arg_pairs)

        def fn(t, f=fn_obj, afs=arg_fns):
            return f(*(af(t) for af in afs))

        return fn, ("call", fqn) + arg_keys
