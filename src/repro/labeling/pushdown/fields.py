"""Columnar candidate fields: per-chunk extraction of the values LFs read.

The pushdown execution model hoists every candidate field a compiled suite
reads — ``words_between()``, span attributes, sentence attributes, window
slices — out of the per-candidate×per-LF inner loop and into **one
extraction pass per chunk**.  A field is identified by a structural key
(``("words_between",)``, ``("span1", "text")``, ``("window_left", 3)``,
...); :class:`ColumnarChunk` caches the extracted :class:`Column` under
that key, so ten LFs reading ``words_between()`` share one pass over the
chunk instead of calling the accessor ten times per candidate.

Extraction is *error-faithful*: a candidate whose accessor raises does not
poison the chunk — the exception is recorded per row in
:attr:`Column.errors` and propagates to exactly the LFs whose programs read
that column, mirroring what each interpreted LF would have raised on that
candidate.

Columns are numpy arrays.  Values are kept in an ``object`` array unless
*every* extracted value is exactly a Python ``int`` (→ ``int64``) or
exactly a ``bool`` (→ ``bool``); the strict ``type(v) is int`` check is
what lets downstream label canonicalization use the vectorized range check
while preserving the interpreted path's ``isinstance(raw, int)`` semantics
bit-for-bit (a column holding e.g. ``np.int64`` values stays ``object`` and
is canonicalized per row, exactly as :class:`LabelingFunction` would
reject/accept each raw value).
"""

from __future__ import annotations

from operator import attrgetter, methodcaller
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.context.candidates import Candidate

#: Candidate no-argument accessor methods exposed as fields.
CANDIDATE_METHODS = ("words_between", "text_between", "token_distance", "span1_precedes_span2")

#: Candidate window methods; the key carries the (constant) window size.
WINDOW_METHODS = ("window_left", "window_right")

#: Plain candidate attributes exposed as fields.
CANDIDATE_ATTRS = ("uid", "relation_type", "split")

#: Span attributes exposed as fields (``("span1", attr)`` / ``("span2", attr)``).
SPAN_ATTRS = ("text", "canonical_id", "entity_type", "word_start", "word_end", "length")

#: Sentence attributes exposed as fields (``("sentence", attr)``).
SENTENCE_ATTRS = ("words", "text", "position", "document_name")

# int64 can hold anything LF fields realistically produce; values at the
# extremes fall back to the object path so numpy never silently wraps.
_INT64_SAFE = 2**62


class Column:
    """One evaluated column: per-row values plus the rows whose read raised.

    ``values`` is a numpy array (``object``, ``int64``, or ``bool`` dtype)
    of length ``num_rows``; rows present in ``errors`` hold a neutral filler
    (``None`` / ``0`` / ``False``) and must be treated as undefined.
    """

    __slots__ = ("values", "errors")

    def __init__(self, values: np.ndarray, errors: Optional[dict[int, BaseException]] = None):
        self.values = values
        self.errors = errors or None

    def __len__(self) -> int:
        return len(self.values)


def make_column(values: list, errors: Optional[dict[int, BaseException]]) -> Column:
    """Build a :class:`Column`, auto-typing to ``int64``/``bool`` when safe."""
    if errors:
        probe = [v for i, v in enumerate(values) if i not in errors]
    else:
        probe = values
    types = {type(v) for v in probe}
    if probe and types == {bool}:
        filled = [False if errors and i in errors else v for i, v in enumerate(values)]
        return Column(np.asarray(filled, dtype=bool), errors)
    if probe and types == {int}:
        filled = [0 if errors and i in errors else v for i, v in enumerate(values)]
        try:
            array = np.asarray(filled, dtype=np.int64)
        except OverflowError:
            pass  # beyond int64 entirely: object path below
        else:
            # Range check vectorized; numpy already raised on anything that
            # does not fit int64, so min/max are exact.
            if -_INT64_SAFE < array.min() and array.max() < _INT64_SAFE:
                return Column(array, errors)
    # np.asarray would try to broadcast list-valued rows into a 2-D array;
    # empty + slice assignment keeps each row as one object.
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return Column(array, errors)


def extract_column(candidates: Sequence, reader: Callable[[Any], Any]) -> Column:
    """Apply ``reader`` to every candidate, recording per-row exceptions."""
    try:
        return make_column(list(map(reader, candidates)), None)
    except Exception:
        values: list = []
        errors: dict[int, BaseException] = {}
        for i, candidate in enumerate(candidates):
            try:
                values.append(reader(candidate))
            except Exception as exc:  # noqa: BLE001 - faithful per-row capture
                values.append(None)
                errors[i] = exc
        return make_column(values, errors)


def field_reader(key: tuple) -> Callable[[Any], Any]:
    """The per-candidate accessor a field key denotes.

    ``methodcaller``/``attrgetter`` are C-implemented, so the extraction
    loop dispatches without a Python lambda frame per candidate; they raise
    the same ``AttributeError`` a ``getattr`` chain would.
    """
    head = key[0]
    if head in WINDOW_METHODS and len(key) == 2:
        return methodcaller(head, key[1])
    if head in CANDIDATE_METHODS and len(key) == 1:
        return methodcaller(head)
    if head in ("span1", "span2") and len(key) == 2 and key[1] in SPAN_ATTRS:
        return attrgetter(f"{head}.{key[1]}")
    if head == "sentence" and len(key) == 2 and key[1] in SENTENCE_ATTRS:
        return attrgetter(f"sentence.{key[1]}")
    if head in CANDIDATE_ATTRS and len(key) == 1:
        return attrgetter(head)
    raise KeyError(f"unknown candidate field key {key!r}")


class ColumnarChunk:
    """One chunk of candidates plus the cache of every evaluated column.

    Both raw fields and derived expression columns live in one cache keyed
    by structural expression keys (see :mod:`repro.labeling.pushdown.
    program`), so any two compiled LFs whose programs contain the same
    subexpression share its evaluation within the chunk.

    Fields whose stock implementations are pure arithmetic over the span
    offsets (``token_distance``, ``span1_precedes_span2``) or a slice of the
    sentence words (``words_between``, ``text_between``) are **derived** —
    computed vectorized from the offset/words columns instead of calling the
    Python accessor per candidate.  Derivation only applies when every
    candidate in the chunk uses the canonical ``Candidate``
    implementations (an override anywhere disables it) and the source
    columns are clean; anything else falls back to per-candidate extraction,
    so results and errors are always exactly the accessor's.
    """

    __slots__ = ("candidates", "num_rows", "_cache", "_canonical")

    def __init__(self, candidates: Sequence) -> None:
        self.candidates = candidates
        self.num_rows = len(candidates)
        self._cache: dict[tuple, Column] = {}
        self._canonical: Optional[bool] = None

    def get(self, key: tuple) -> Optional[Column]:
        return self._cache.get(key)

    def put(self, key: tuple, column: Column) -> Column:
        self._cache[key] = column
        return column

    def field(self, key: tuple) -> Column:
        cached = self._cache.get(("field", key))
        if cached is None:
            column = self._derive(key)
            if column is None:
                column = extract_column(self.candidates, field_reader(key))
            cached = self.put(("field", key), column)
        return cached

    def canonical_candidates(self) -> bool:
        """Every candidate uses the stock derivable-accessor implementations."""
        if self._canonical is None:
            kinds = set(map(type, self.candidates))
            self._canonical = all(
                getattr(kind, name, None) is getattr(Candidate, name)
                for kind in kinds
                for name in _DERIVABLE_METHODS
            )
        return self._canonical

    def _derive(self, key: tuple) -> Optional[Column]:
        derive = _DERIVED_FIELDS.get(key)
        if derive is None or not self.canonical_candidates():
            return None
        try:
            return derive(self)
        except Exception:
            # Any surprise falls back to the exact per-candidate accessor.
            return None

    def _span_offsets(self):
        """``(first_end, second_start, s1_start, s2_start)`` int64 arrays, or
        ``None`` when any offset column is dirty (errors / non-int)."""
        cols = [
            self.field(("span1", "word_start")),
            self.field(("span1", "word_end")),
            self.field(("span2", "word_start")),
            self.field(("span2", "word_end")),
        ]
        if any(col.errors is not None or col.values.dtype != np.int64 for col in cols):
            return None
        s1s, s1e, s2s, s2e = (col.values for col in cols)
        ordered = s1s <= s2s  # Candidate.ordered_spans
        return np.where(ordered, s1e, s2e), np.where(ordered, s2s, s1s), s1s, s2s


def _derive_token_distance(chunk: ColumnarChunk) -> Optional[Column]:
    offsets = chunk._span_offsets()
    if offsets is None:
        return None
    first_end, second_start = offsets[0], offsets[1]
    return Column(np.maximum(0, second_start - first_end))


def _derive_precedes(chunk: ColumnarChunk) -> Optional[Column]:
    offsets = chunk._span_offsets()
    if offsets is None:
        return None
    return Column(offsets[2] < offsets[3])


def _derive_words_between(chunk: ColumnarChunk) -> Optional[Column]:
    offsets = chunk._span_offsets()
    if offsets is None:
        return None
    words_col = chunk.field(("sentence", "words"))
    if words_col.errors is not None:
        return None
    rows = words_col.values.tolist()
    values = [
        list(w[a:b])
        for w, a, b in zip(rows, offsets[0].tolist(), offsets[1].tolist())
    ]
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return Column(array, None)


def _derive_text_between(chunk: ColumnarChunk) -> Optional[Column]:
    words_col = chunk.field(("words_between",))
    if words_col.errors is not None:
        return None
    values = list(map(" ".join, words_col.values.tolist()))
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return Column(array, None)


#: Accessors the derivations above re-implement; overriding any of them on a
#: candidate class disables derivation for chunks containing that class.
_DERIVABLE_METHODS = (
    "words_between",
    "text_between",
    "token_distance",
    "span1_precedes_span2",
    "ordered_spans",
)

_DERIVED_FIELDS = {
    ("token_distance",): _derive_token_distance,
    ("span1_precedes_span2",): _derive_precedes,
    ("words_between",): _derive_words_between,
    ("text_between",): _derive_text_between,
}
