"""The columnar expression IR compiled LFs evaluate over a chunk.

A compiled LF is a :class:`CompiledProgram`: an ordered list of
:class:`Branch` es, each ``(guard, leaf)`` — the guard a boolean column
expression (the conjunction of the source path's conditions), the leaf
either a constant label or a column expression.  Evaluation walks the
branches in source order over the rows still undecided, exactly mirroring
the interpreted body's control flow; rows no branch takes abstain (the
implicit ``return None``).

Expression nodes (:class:`ColExpr` subclasses) evaluate to
:class:`~repro.labeling.pushdown.fields.Column` s and are cached in the
:class:`~repro.labeling.pushdown.fields.ColumnarChunk` under *structural*
keys, so identical subexpressions across LFs (the shared
``words_between()`` normalization, a common regex) are computed once per
chunk.

Two disciplines keep compiled output bit-identical to the interpreted path:

* **Error masking.** Any per-row evaluation may raise (``normalize(None)``,
  regex on a non-string); exceptions are carried per row in
  ``Column.errors`` and masked by the short-circuit structure —
  :class:`BoolAnd` keeps a right-operand error only where the left operand
  was truthy, :class:`IfExpCol` keeps a branch error only where the
  condition selected that branch — so a compiled LF errors on exactly the
  rows where the interpreted LF would have raised, with the same exception.
* **Canonicalization fidelity.** Leaf values replicate
  :meth:`LabelingFunction._canonicalize` exactly, including its strict
  ``isinstance(raw, int)`` / ``raw is True`` semantics: int64/bool-typed
  columns (built only from values that were exact Python ints/bools, see
  :func:`~repro.labeling.pushdown.fields.make_column`) take the vectorized
  path; anything else is canonicalized per row on the raw objects.
"""

from __future__ import annotations

import operator
import re
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

try:  # CPython's parsed-regex internals; absence just disables the prefilter.
    from re import _compiler as _sre_compiler
    from re import _constants as _sre_constants
    from re import _parser as _sre_parser
except ImportError:  # pragma: no cover - non-CPython fallback
    _sre_compiler = _sre_constants = _sre_parser = None  # type: ignore[assignment]

# Characters where regex ignore-case matching and ``str.lower`` disagree: the
# non-ASCII members of sre's case-equivalence classes (long s, dotless i,
# micro sign, ...) plus the uppercase signs whose lowercase collides with an
# ordinary letter and dotted capital I (whose ``str.lower`` changes length).
# A column containing any of these skips the lowered-literal prefilter.
if _sre_compiler is not None and hasattr(_sre_compiler, "_EXTRA_CASES"):
    _EXOTIC_CASE_RE: Optional["re.Pattern[str]"] = re.compile(
        "["
        + "".join(
            re.escape(chr(code))
            for key, group in _sre_compiler._EXTRA_CASES.items()
            for code in (key, *group)
            if code > 0x7F
        )
        + "\u0130\u1e9e\u2126\u212a\u212b]"
    )
else:  # pragma: no cover - table moved/renamed: disable ignore-case prefilter
    _EXOTIC_CASE_RE = None

from repro.exceptions import LabelingError
from repro.labeling.pushdown.fields import Column, ColumnarChunk, make_column
from repro.types import NEGATIVE, POSITIVE


def const_key(value: Any) -> tuple:
    """Structural cache-key component for a constant (id fallback if unhashable)."""
    try:
        hash(value)
    except TypeError:
        return ("id", id(value))
    return (type(value).__name__, value)


class K:
    """A constant operand riding alongside :class:`ColExpr` s in a node."""

    __slots__ = ("value", "key")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.key = ("k", const_key(value))


Operand = Union["ColExpr", K]


class _Repeat:
    """A constant pretending to be a row list (indexable, iterable)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __getitem__(self, index: int) -> Any:
        return self.value


def _rowlist(operand: Operand, chunk: ColumnarChunk):
    """Python-object row values for an operand: ``(rows, errors)``.

    Numeric columns go through ``tolist`` so per-row evaluation sees exact
    Python ints/bools (numpy scalars have different ``/`` and ``isinstance``
    semantics than the interpreted path).
    """
    if isinstance(operand, K):
        return _Repeat(operand.value), None
    column = operand.eval(chunk)
    return column.values.tolist(), column.errors


def _merge_errors(*error_dicts: Optional[dict]) -> dict[int, BaseException]:
    """Union per-row errors; the leftmost operand's exception wins per row."""
    merged: dict[int, BaseException] = {}
    for errors in error_dicts:
        if errors:
            for row, exc in errors.items():
                merged.setdefault(row, exc)
    return merged


def _map1(n: int, rows, errors: Optional[dict], fn: Callable):
    """Apply ``fn`` per row, inheriting and collecting per-row errors."""
    if not errors:
        # map() iterates at C speed; it raises at the same row a manual loop
        # would, at which point the slow path takes over from scratch.
        try:
            return list(map(fn, rows)), None
        except Exception:
            pass
    out = [None] * n
    collected = dict(errors) if errors else {}
    for i in range(n):
        if i in collected:
            continue
        try:
            out[i] = fn(rows[i])
        except Exception as exc:  # noqa: BLE001 - faithful per-row capture
            collected[i] = exc
    return out, collected or None


def _map2(n: int, a_rows, a_errors, b_rows, b_errors, fn: Callable):
    base = _merge_errors(a_errors, b_errors)
    if not base:
        # _Repeat supports the sequence protocol, so map() zips it against
        # the finite operand (at least one operand is always a real column).
        try:
            return list(map(fn, a_rows, b_rows)), None
        except Exception:
            pass
    out = [None] * n
    collected = dict(base)
    for i in range(n):
        if i in collected:
            continue
        try:
            out[i] = fn(a_rows[i], b_rows[i])
        except Exception as exc:  # noqa: BLE001
            collected[i] = exc
    return out, collected or None


def _object_column(values: list, errors: Optional[dict]) -> Column:
    array = np.empty(len(values), dtype=object)
    array[:] = values
    return Column(array, errors)


def _bool_column(values: list, errors: Optional[dict]) -> Column:
    """Bool array from per-row real booleans (error rows filled ``False``)."""
    if errors:
        filled = [False if i in errors else bool(v) for i, v in enumerate(values)]
        return Column(np.asarray(filled, dtype=bool), errors)
    return Column(np.asarray(values, dtype=bool), errors)


def as_bool_mask(column: Column, n: int) -> np.ndarray:
    """A column's truth mask (error rows ``False``); never mutates the column."""
    values = column.values
    if isinstance(values, np.ndarray) and values.dtype == np.bool_:
        return values
    if isinstance(values, np.ndarray) and values.dtype != object:
        return values.astype(bool)
    rows = values.tolist()
    errors = column.errors
    return np.fromiter(
        (False if errors and i in errors else bool(rows[i]) for i in range(n)),
        count=n,
        dtype=bool,
    )


def _is_int_operand(operand: Operand, column: Optional[Column]) -> bool:
    if isinstance(operand, K):
        return type(operand.value) is int
    return isinstance(column.values, np.ndarray) and column.values.dtype == np.int64


def _numeric_value(operand: Operand, column: Optional[Column]):
    return operand.value if isinstance(operand, K) else column.values


class ColExpr:
    """Base class: a cached, chunk-evaluable column expression."""

    __slots__ = ("key",)
    #: Evaluation yields a real boolean per row (usable as a return value).
    is_bool = False
    #: Truthiness proxy (regex match object, non-empty test): valid only in
    #: condition position, never as a value/leaf.
    cond_only = False

    def eval(self, chunk: ColumnarChunk) -> Column:
        column = chunk.get(self.key)
        if column is None:
            column = chunk.put(self.key, self._compute(chunk))
        return column

    def _compute(self, chunk: ColumnarChunk) -> Column:  # pragma: no cover
        raise NotImplementedError


class FieldCol(ColExpr):
    """A raw candidate field column."""

    __slots__ = ("field_key",)

    def __init__(self, field_key: tuple) -> None:
        self.field_key = field_key
        self.key = ("field", field_key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        return chunk.field(self.field_key)


class MapRow(ColExpr):
    """Per-row scalar transform ``fn(value)`` (normalize, str methods, casts)."""

    __slots__ = ("child", "fn", "real_bool")

    def __init__(self, child: ColExpr, fn: Callable, fn_key: tuple, is_bool: bool = False):
        self.child = child
        self.fn = fn
        self.real_bool = is_bool
        self.key = ("map", fn_key, child.key)

    @property
    def is_bool(self) -> bool:  # type: ignore[override]
        return self.real_bool

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        rows = column.values.tolist()
        values, errors = _map1(chunk.num_rows, rows, column.errors, self.fn)
        if self.real_bool:
            return _bool_column(values, errors)
        return make_column(values, errors)


class StrLower(ColExpr):
    """``normalize(value)`` (i.e. ``str.lower``) over a scalar string column.

    All-string columns lower in one ``np.char.lower`` sweep (the result is a
    unicode-dtype column; ``tolist`` hands exact Python strings downstream);
    anything else falls back to the per-row helper, raising exactly where
    the interpreted call would.
    """

    __slots__ = ("child", "fn")

    def __init__(self, child: ColExpr, fn: Callable) -> None:
        self.child = child
        self.fn = fn
        self.key = ("strlower", child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        values = column.values
        if column.errors is None and values.dtype.kind == "U":
            return Column(np.char.lower(values), None)
        rows = values.tolist()
        if column.errors is None:
            flags = None
            try:
                joined = "".join(rows)  # all-string probe, one C pass
                good = rows
            except TypeError:
                flags = np.fromiter(
                    (type(v) is str for v in rows), dtype=bool, count=len(rows)
                )
                good = [v if f else "" for v, f in zip(rows, flags.tolist())]
                joined = "".join(good)
            # numpy U-dtype round-trips drop trailing NULs, so NUL-bearing
            # text takes the exact per-row path instead.
            if "\x00" not in joined:
                lowered = np.char.lower(np.asarray(good, dtype=str))
                if flags is None:
                    return Column(lowered, None)
                out = lowered.tolist()
                errors: dict[int, BaseException] = {}
                fn = self.fn
                for i in np.nonzero(~flags)[0].tolist():
                    try:
                        out[i] = fn(rows[i])
                    except Exception as exc:  # noqa: BLE001 - faithful capture
                        errors[i] = exc
                        out[i] = None
                return make_column(out, errors or None)
        out, map_errors = _map1(chunk.num_rows, rows, column.errors, self.fn)
        return make_column(out, map_errors)


class Map2(ColExpr):
    """Per-row binary transform ``fn(a, b)`` (subscript by column, min/max)."""

    __slots__ = ("left", "right", "fn")

    def __init__(self, left: Operand, right: Operand, fn: Callable, fn_key: tuple):
        self.left = left
        self.right = right
        self.fn = fn
        self.key = ("map2", fn_key, left.key, right.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        a_rows, a_errors = _rowlist(self.left, chunk)
        b_rows, b_errors = _rowlist(self.right, chunk)
        values, errors = _map2(chunk.num_rows, a_rows, a_errors, b_rows, b_errors, self.fn)
        return make_column(values, errors)


class MapElems(ColExpr):
    """A comprehension over a sequence column: one container per row."""

    __slots__ = ("child", "elem_fn", "kind", "filter_fn")

    _BUILDERS = {"list": list, "set": set, "tuple": tuple}

    def __init__(
        self,
        child: ColExpr,
        elem_fn: Callable,
        fn_key: tuple,
        kind: str,
        filter_fn: Optional[Callable] = None,
        filter_key: tuple = (),
    ) -> None:
        self.child = child
        self.elem_fn = elem_fn
        self.kind = kind
        self.filter_fn = filter_fn
        self.key = ("elems", kind, fn_key, filter_key, child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        build = self._BUILDERS[self.kind]
        elem_fn = self.elem_fn
        filter_fn = self.filter_fn
        if filter_fn is None:
            # map() raises at the same element a comprehension would.
            row_fn = lambda row: build(map(elem_fn, row))  # noqa: E731
        else:
            row_fn = lambda row: build(elem_fn(t) for t in row if filter_fn(t))  # noqa: E731
        column = self.child.eval(chunk)
        values, errors = _map1(chunk.num_rows, column.values.tolist(), column.errors, row_fn)
        return _object_column(values, errors)


def _mandatory_literal(pattern) -> Optional[str]:
    """Longest literal substring every match of ``pattern`` must contain.

    Walks the parsed pattern collecting maximal runs of ``LITERAL`` nodes in
    mandatory positions — top level, plain groups, and repeats with
    ``min >= 1``; branches, assertions, and flag-changing groups are skipped
    conservatively (their literals are simply not claimed as mandatory).  Any
    successful match — ``search``, ``match``, or ``fullmatch`` — contains
    every mandatory run as a substring, so rows without the longest run can
    be rejected by one C-level ``in`` per row without touching the regex
    engine.  Under ``IGNORECASE`` the literal is lowercased and only claimed
    when pure ASCII; the caller must then lowercase each row before the
    ``in`` check *and* skip the prefilter for text containing the
    :data:`_EXOTIC_CASE_RE` characters, where ``str.lower`` and sre's
    case-equivalence table disagree.  Returns ``None`` when no usable run of
    length >= 2 exists or the analysis does not apply (bytes pattern, parse
    surprise).
    """
    if _sre_parser is None or isinstance(pattern.pattern, bytes):
        return None
    ignorecase = bool(pattern.flags & re.IGNORECASE)
    if ignorecase and _EXOTIC_CASE_RE is None:
        return None
    try:
        parsed = _sre_parser.parse(pattern.pattern, pattern.flags)
    except Exception:  # pragma: no cover - re.compile already accepted it
        return None
    runs: list[str] = []

    def walk(sequence) -> None:
        current: list[str] = []
        for op, arg in sequence:
            if op is _sre_constants.LITERAL:
                current.append(chr(arg))
                continue
            if current:
                runs.append("".join(current))
                current = []
            if op is _sre_constants.SUBPATTERN:
                _group, add_flags, del_flags, sub = arg
                if not add_flags and not del_flags:
                    walk(sub)
            elif op in (_sre_constants.MAX_REPEAT, _sre_constants.MIN_REPEAT):
                min_count, _max_count, sub = arg
                if min_count >= 1:
                    walk(sub)
        if current:
            runs.append("".join(current))

    try:
        walk(parsed)
    except Exception:  # pragma: no cover - defensive against parser changes
        return None
    if ignorecase:
        runs = [run.lower() for run in runs if run.isascii()]
    best = max(runs, key=len, default="")
    return best if len(best) >= 2 else None


class RegexSearch(ColExpr):
    """``pattern.search/match/fullmatch`` truthiness over a text column."""

    __slots__ = ("child", "method", "literal", "ignorecase")
    cond_only = True
    is_bool = True

    def __init__(self, pattern, method: str, child: ColExpr) -> None:
        self.child = child
        self.method = getattr(pattern, method)
        self.literal = _mandatory_literal(pattern)
        self.ignorecase = bool(pattern.flags & re.IGNORECASE)
        self.key = ("regex", pattern.pattern, pattern.flags, method, child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        method = self.method
        column = self.child.eval(chunk)
        rows = column.values.tolist()
        if not column.errors:
            literal = self.literal
            if literal is not None:
                # The prefilter is only sound over strings (`lit in v` on a
                # non-str container silently answers membership, not
                # substring); one join probes the whole column.  Ignore-case
                # additionally requires the column to be free of the exotic
                # characters where lowering and sre case folding disagree.
                try:
                    joined = "".join(rows)
                except TypeError:
                    literal = None
                else:
                    if self.ignorecase and _EXOTIC_CASE_RE.search(joined):
                        literal = None
            matches = None
            hits: Optional[list[int]] = None
            try:
                if literal is not None:
                    if self.ignorecase:
                        hits = [i for i, v in enumerate(rows) if literal in v.lower()]
                    else:
                        hits = [i for i, v in enumerate(rows) if literal in v]
                    matches = list(map(method, [rows[i] for i in hits]))
                else:
                    matches = list(map(method, rows))
            except Exception:
                matches = None
            if matches is not None:
                if hits is None:
                    values = np.fromiter(
                        (m is not None for m in matches), dtype=bool, count=len(matches)
                    )
                else:
                    values = np.zeros(chunk.num_rows, dtype=bool)
                    if hits:
                        values[hits] = np.fromiter(
                            (m is not None for m in matches), dtype=bool, count=len(hits)
                        )
                return Column(values, None)
        values, errors = _map1(
            chunk.num_rows, rows, column.errors, lambda v: method(v) is not None
        )
        return _bool_column(values, errors)


class ContainsPhrase(ColExpr):
    """Contiguous-phrase containment (``declarative._contains_phrase``)."""

    __slots__ = ("child", "phrase")
    is_bool = True

    def __init__(self, child: ColExpr, phrase: Sequence[str]) -> None:
        self.child = child
        self.phrase = tuple(phrase)
        self.key = ("phrase", self.phrase, child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        phrase = self.phrase
        n_phrase = len(phrase)
        if n_phrase == 0:
            row_fn = lambda row: False  # noqa: E731
        elif n_phrase == 1:
            first = phrase[0]

            def row_fn(row):
                if type(row) in (list, tuple):
                    return first in row
                return any(tuple(row[i : i + 1]) == phrase for i in range(len(row)))

        else:

            def row_fn(row):
                return any(
                    tuple(row[i : i + n_phrase]) == phrase for i in range(len(row) - n_phrase + 1)
                )

        column = self.child.eval(chunk)
        values, errors = _map1(chunk.num_rows, column.values.tolist(), column.errors, row_fn)
        return _bool_column(values, errors)


class AnyElem(ColExpr):
    """``any(pred(t) for t in seq)`` per row (the keyword-LF loop idiom)."""

    __slots__ = ("child", "pred", "want_all")
    is_bool = True

    def __init__(self, child: ColExpr, pred: Callable, pred_key: tuple, want_all: bool = False):
        self.child = child
        self.pred = pred
        self.want_all = want_all
        self.key = ("allelem" if want_all else "anyelem", pred_key, child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        pred = self.pred
        fold = all if self.want_all else any
        row_fn = lambda row: fold(map(pred, row))  # noqa: E731 - lazy, short-circuits
        column = self.child.eval(chunk)
        values, errors = _map1(chunk.num_rows, column.values.tolist(), column.errors, row_fn)
        return _bool_column(values, errors)


class _TokenIndex:
    """Flattened view of a token-sequence column, built once per chunk.

    The flat tokens are deduplicated lazily (``np.unique`` with inverse
    codes), so every kernel over the same source column — lowercasing,
    equality, vocabulary membership — runs over the small unique-token
    array and gathers the result back through the codes instead of
    sweeping every token again.  Non-string tokens are replaced by ``""``
    in the flat list; the rows the vectorized kernels cannot vouch for —
    rows that are not ``list``/``tuple``, or rows containing a non-string
    token — are collected in ``fallback_rows`` and :class:`TokenMatch`
    recomputes those with its exact per-row Python fallback.
    """

    __slots__ = ("rows", "offsets", "lengths", "flat", "fallback_rows",
                 "_uniques", "_inverse", "_lowered")

    def __init__(self, column: Column, n: int) -> None:
        rows = column.values.tolist()
        offsets = np.zeros(n + 1, dtype=np.int64)
        flat: list = []
        extend = flat.extend
        odd: list[int] = []
        total = 0
        for i, row in enumerate(rows):
            if type(row) in (list, tuple):
                extend(row)
                total += len(row)
            else:
                odd.append(i)
            offsets[i + 1] = total
        fallback = set(odd)
        try:
            # One C pass proving every flat token is a string; join accepts
            # nothing else.  The per-token type scan only runs on failure.
            joined = "".join(flat)
        except TypeError:
            str_flags = np.fromiter(
                (type(t) is str for t in flat), dtype=bool, count=total
            )
            flat = [t if type(t) is str else "" for t in flat]
            bad = np.zeros(total + 1, dtype=np.int64)
            np.cumsum(~str_flags, out=bad[1:])
            fallback.update(np.nonzero(bad[offsets[1:]] - bad[offsets[:-1]])[0].tolist())
            joined = "".join(flat)
        if "\x00" in joined:
            # numpy U-dtype round-trips drop trailing NULs; hand every row
            # to the exact per-row fallback rather than risk a mismatch.
            fallback = set(range(n))
        self.rows = rows
        self.offsets = offsets
        self.lengths = np.diff(offsets)
        self.flat = flat
        self.fallback_rows = fallback
        self._uniques = None
        self._inverse = None
        self._lowered = None

    def _unique(self) -> tuple[np.ndarray, np.ndarray]:
        if self._uniques is None:
            if self.flat:
                u = np.asarray(self.flat, dtype=str)
            else:
                u = np.empty(0, dtype="<U1")
            self._uniques, self._inverse = np.unique(u, return_inverse=True)
        return self._uniques, self._inverse

    def _unique_needles(self, lower: bool) -> np.ndarray:
        uniques, _ = self._unique()
        if not lower:
            return uniques
        if self._lowered is None:
            # np.char.lower applies str.lower element-wise over the (small)
            # unique array, so values match the interpreted normalize().
            self._lowered = np.char.lower(uniques)
        return self._lowered

    def match_eq(self, needle: str, lower: bool) -> np.ndarray:
        mask_u = self._unique_needles(lower) == needle
        return self.row_any(mask_u[self._inverse])

    def match_isin(self, members: list, lower: bool) -> np.ndarray:
        uniques = self._unique_needles(lower)
        if members:
            mask_u = np.isin(uniques, np.asarray(members, dtype=str))
        else:
            mask_u = np.zeros(len(uniques), dtype=bool)
        return self.row_any(mask_u[self._inverse])

    def row_any(self, token_mask: np.ndarray) -> np.ndarray:
        """Per-row ``any(token matched)`` via a cumulative-sum difference."""
        counts = np.zeros(len(token_mask) + 1, dtype=np.int64)
        np.cumsum(token_mask, out=counts[1:])
        return (counts[self.offsets[1:]] - counts[self.offsets[:-1]]) > 0


def _token_index(chunk: ColumnarChunk, child: ColExpr, column: Column) -> _TokenIndex:
    key = ("tokidx", child.key)
    index = chunk.get(key)
    if index is None:
        index = chunk.put(key, _TokenIndex(column, chunk.num_rows))  # type: ignore[arg-type]
    return index  # type: ignore[return-value]


class TokenMatch(ColExpr):
    """Vectorized any-token predicate over a token-sequence column.

    The compiler lowers three hot idioms to this node — single-token phrase
    containment over a normalized list, ``any(normalize(t) in VOCAB ...)``
    keyword membership (and the equivalent set-intersection truthiness),
    and non-emptiness of a derived container — replacing their per-row
    Python loops with one flattened sweep per chunk: tokens are flattened
    once per source column (cached), lowercased with ``np.char.lower`` when
    the idiom normalizes, and the per-row ``any`` is a cumsum difference
    over row offsets.  Rows the index cannot vouch for are recomputed with
    ``row_fallback`` — the exact per-row Python equivalent — so values and
    errors stay bit-identical to the interpreted path.
    """

    __slots__ = ("child", "mode", "needle", "lower", "row_fallback")
    is_bool = True

    def __init__(
        self,
        child: ColExpr,
        mode: str,
        needle: Any,
        lower: bool,
        row_fallback: Callable,
    ) -> None:
        self.child = child
        self.mode = mode  # "eq" | "isin" | "nonempty"
        self.needle = needle
        self.lower = lower
        self.row_fallback = row_fallback
        self.key = ("tokmatch", mode, bool(lower), const_key(needle), child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        index = _token_index(chunk, self.child, column)
        if self.mode == "nonempty":
            values = index.lengths > 0
        elif self.mode == "eq":
            values = index.match_eq(self.needle, self.lower)
        else:
            # Non-string members can never equal a string token, so the
            # vector sweep only checks the string members; rows with
            # non-string tokens are in fallback_rows and recomputed.
            members = [m for m in self.needle if type(m) is str]
            values = index.match_isin(members, self.lower)
        errors = dict(column.errors) if column.errors else {}
        if index.fallback_rows:
            fallback = self.row_fallback
            rows = index.rows
            for i in sorted(index.fallback_rows):
                if i in errors:
                    continue
                try:
                    values[i] = bool(fallback(rows[i]))
                except Exception as exc:  # noqa: BLE001 - faithful capture
                    values[i] = False
                    errors[i] = exc
        if errors:
            values[np.fromiter(errors, dtype=np.int64)] = False
        return Column(values, errors or None)


class Contains(ColExpr):
    """Membership ``item in container`` (either side a column or constant)."""

    __slots__ = ("item", "container", "negate")
    is_bool = True

    def __init__(self, item: Operand, container: Operand, negate: bool = False) -> None:
        self.item = item
        self.container = container
        self.negate = negate
        self.key = ("in", negate, item.key, container.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        if isinstance(self.container, K) and not self.negate:
            # `x in s` dispatches to s.__contains__ — mapping the bound C
            # method over the rows skips a Python lambda frame per row.
            contains = getattr(self.container.value, "__contains__", None)
            if contains is not None:
                a_rows, a_errors = _rowlist(self.item, chunk)
                values, errors = _map1(chunk.num_rows, a_rows, a_errors, contains)
                return _bool_column(values, errors)
        a_rows, a_errors = _rowlist(self.item, chunk)
        b_rows, b_errors = _rowlist(self.container, chunk)
        fn = (lambda a, b: a not in b) if self.negate else (lambda a, b: a in b)
        values, errors = _map2(chunk.num_rows, a_rows, a_errors, b_rows, b_errors, fn)
        return _bool_column(values, errors)


_CMP_OPS = {
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
    "eq": operator.eq,
    "ne": operator.ne,
    "is": operator.is_,
    "is_not": operator.is_not,
}

#: Comparison ops safe to vectorize on numeric arrays (numpy semantics match
#: Python's for int/bool operands).
_VECTOR_CMP = {"lt", "le", "gt", "ge", "eq", "ne"}


class Compare(ColExpr):
    """One binary comparison; numeric operands vectorize, the rest go per row."""

    __slots__ = ("op", "left", "right")
    is_bool = True

    def __init__(self, op: str, left: Operand, right: Operand) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.key = ("cmp", op, left.key, right.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        left_col = self.left.eval(chunk) if isinstance(self.left, ColExpr) else None
        right_col = self.right.eval(chunk) if isinstance(self.right, ColExpr) else None
        if (
            self.op in _VECTOR_CMP
            and _is_int_operand(self.left, left_col)
            and _is_int_operand(self.right, right_col)
        ):
            values = _CMP_OPS[self.op](
                _numeric_value(self.left, left_col), _numeric_value(self.right, right_col)
            )
            errors = _merge_errors(
                left_col.errors if left_col is not None else None,
                right_col.errors if right_col is not None else None,
            )
            if errors:
                values = values.copy()
                values[np.fromiter(errors, dtype=np.int64)] = False
            return Column(values, errors or None)
        a_rows, a_errors = _rowlist(self.left, chunk)
        b_rows, b_errors = _rowlist(self.right, chunk)
        values, errors = _map2(
            chunk.num_rows, a_rows, a_errors, b_rows, b_errors, _CMP_OPS[self.op]
        )
        return _bool_column(values, errors)


class ConstBool(ColExpr):
    """A boolean constant broadcast over the chunk (folded conditions)."""

    __slots__ = ("value",)
    is_bool = True

    def __init__(self, value: bool) -> None:
        self.value = bool(value)
        self.key = ("boolconst", self.value)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        return Column(np.full(chunk.num_rows, self.value, dtype=bool), None)


class BoolAnd(ColExpr):
    """Short-circuit ``and`` of two boolean columns with error masking."""

    __slots__ = ("left", "right")
    is_bool = True

    def __init__(self, left: ColExpr, right: ColExpr) -> None:
        self.left = left
        self.right = right
        self.key = ("and", left.key, right.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        n = chunk.num_rows
        left = self.left.eval(chunk)
        right = self.right.eval(chunk)
        left_mask = as_bool_mask(left, n)
        values = left_mask & as_bool_mask(right, n)
        errors = dict(left.errors) if left.errors else {}
        if right.errors:
            # Short-circuit fidelity: the right operand only runs (and can
            # only raise) where the left operand was truthy.
            for row, exc in right.errors.items():
                if row not in errors and left_mask[row]:
                    errors[row] = exc
        if errors:
            values = values.copy() if values is left_mask else values
            values[np.fromiter(errors, dtype=np.int64)] = False
        return Column(values, errors or None)


class BoolOr(ColExpr):
    """Short-circuit ``or`` of two boolean columns with error masking."""

    __slots__ = ("left", "right")
    is_bool = True

    def __init__(self, left: ColExpr, right: ColExpr) -> None:
        self.left = left
        self.right = right
        self.key = ("or", left.key, right.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        n = chunk.num_rows
        left = self.left.eval(chunk)
        right = self.right.eval(chunk)
        left_mask = as_bool_mask(left, n)
        values = left_mask | as_bool_mask(right, n)
        errors = dict(left.errors) if left.errors else {}
        if right.errors:
            for row, exc in right.errors.items():
                if row not in errors and not left_mask[row]:
                    errors[row] = exc
        if errors:
            values = values.copy() if values is left_mask else values
            values[np.fromiter(errors, dtype=np.int64)] = False
        return Column(values, errors or None)


class NotCol(ColExpr):
    """Boolean negation."""

    __slots__ = ("child",)
    is_bool = True

    def __init__(self, child: ColExpr) -> None:
        self.child = child
        self.key = ("not", child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        values = ~as_bool_mask(column, chunk.num_rows)
        if column.errors:
            values[np.fromiter(column.errors, dtype=np.int64)] = False
        return Column(values, column.errors)


class Truthy(ColExpr):
    """``bool(value)`` per row — a condition-position truthiness proxy."""

    __slots__ = ("child",)
    is_bool = True
    cond_only = True

    def __init__(self, child: ColExpr) -> None:
        self.child = child
        self.key = ("truthy", child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        values = column.values
        if isinstance(values, np.ndarray) and values.dtype == np.bool_:
            return column
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            # String truthiness is non-emptiness.
            return Column(values != "", column.errors)
        if isinstance(values, np.ndarray) and values.dtype != object:
            return Column(values != 0, column.errors)
        rows, errors = _map1(chunk.num_rows, values.tolist(), column.errors, bool)
        return _bool_column(rows, errors)


class IfExpCol(ColExpr):
    """Conditional expression merge with branch-selected error masking."""

    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: ColExpr, then: Operand, other: Operand) -> None:
        self.cond = cond
        self.then = then
        self.other = other
        self.key = ("ifexp", cond.key, then.key, other.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        n = chunk.num_rows
        cond = self.cond.eval(chunk)
        mask = as_bool_mask(cond, n)
        then_rows, then_errors = _rowlist(self.then, chunk)
        other_rows, other_errors = _rowlist(self.other, chunk)
        errors = dict(cond.errors) if cond.errors else {}
        if then_errors:
            for row, exc in then_errors.items():
                if row not in errors and mask[row]:
                    errors[row] = exc
        if other_errors:
            for row, exc in other_errors.items():
                if row not in errors and not mask[row]:
                    errors[row] = exc
        values = [
            t if m else o for m, t, o in zip(mask.tolist(), then_rows, other_rows)
        ]
        return make_column(values, errors or None)


class TupleCol(ColExpr):
    """Per-row container literal (tuple / list / set of item expressions)."""

    __slots__ = ("items", "kind")

    _BUILDERS = {"tuple": tuple, "list": list, "set": set}

    def __init__(self, items: Sequence[Operand], kind: str = "tuple") -> None:
        self.items = tuple(items)
        self.kind = kind
        self.key = ("container", kind) + tuple(item.key for item in self.items)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        build = self._BUILDERS[self.kind]
        rows_per_item = []
        error_dicts = []
        for item in self.items:
            rows, errors = _rowlist(item, chunk)
            rows_per_item.append(rows)
            error_dicts.append(errors)
        errors = _merge_errors(*error_dicts)
        # zip() stops at the finite column operands (at least one exists;
        # all-constant containers are folded by the compiler).
        if self.kind == "tuple":
            values = list(zip(*rows_per_item))
        else:
            values = [build(t) for t in zip(*rows_per_item)]
        return _object_column(values, errors or None)


_BIN_OPS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "truediv": operator.truediv,
    "floordiv": operator.floordiv,
    "mod": operator.mod,
    "pow": operator.pow,
    "and_": operator.and_,
    "or_": operator.or_,
    "xor": operator.xor,
}

class BinCol(ColExpr):
    """Binary operator (arithmetic, set algebra) over two operands.

    ``vectorize`` is granted by the *compiler* only for add/sub over
    magnitude-bounded integer operands — a blanket int64 fast path could
    silently wrap where Python promotes to big ints.
    """

    __slots__ = ("op", "left", "right", "vectorize")

    def __init__(self, op: str, left: Operand, right: Operand, vectorize: bool = False):
        self.op = op
        self.left = left
        self.right = right
        self.vectorize = vectorize
        self.key = ("bin", op, left.key, right.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        left_col = self.left.eval(chunk) if isinstance(self.left, ColExpr) else None
        right_col = self.right.eval(chunk) if isinstance(self.right, ColExpr) else None
        if (
            self.vectorize
            and _is_int_operand(self.left, left_col)
            and _is_int_operand(self.right, right_col)
        ):
            values = _BIN_OPS[self.op](
                _numeric_value(self.left, left_col), _numeric_value(self.right, right_col)
            )
            errors = _merge_errors(
                left_col.errors if left_col is not None else None,
                right_col.errors if right_col is not None else None,
            )
            return Column(values, errors or None)
        a_rows, a_errors = _rowlist(self.left, chunk)
        b_rows, b_errors = _rowlist(self.right, chunk)
        values, errors = _map2(
            chunk.num_rows, a_rows, a_errors, b_rows, b_errors, _BIN_OPS[self.op]
        )
        return make_column(values, errors)


class NegCol(ColExpr):
    """Unary minus."""

    __slots__ = ("child",)

    def __init__(self, child: ColExpr) -> None:
        self.child = child
        self.key = ("neg", child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        if isinstance(column.values, np.ndarray) and column.values.dtype == np.int64:
            return Column(-column.values, column.errors)
        values, errors = _map1(
            chunk.num_rows, column.values.tolist(), column.errors, operator.neg
        )
        return make_column(values, errors)


class LenCol(ColExpr):
    """``len(value)`` per row as an int64 column."""

    __slots__ = ("child",)

    def __init__(self, child: ColExpr) -> None:
        self.child = child
        self.key = ("len", child.key)

    def _compute(self, chunk: ColumnarChunk) -> Column:
        column = self.child.eval(chunk)
        values, errors = _map1(chunk.num_rows, column.values.tolist(), column.errors, len)
        if errors:
            values = [0 if i in errors else v for i, v in enumerate(values)]
        return Column(np.asarray(values, dtype=np.int64), errors)


class Branch:
    """One compiled return site: guard (path condition) and leaf."""

    __slots__ = ("guard", "value", "column")

    def __init__(
        self,
        guard: Optional[ColExpr],
        value: Optional[int] = None,
        column: Optional[ColExpr] = None,
    ) -> None:
        self.guard = guard
        self.value = value
        self.column = column


class CompiledProgram:
    """A compiled LF body: ordered branches over columnar expressions.

    :meth:`evaluate` returns ``(labels, errors)`` — an ``(n,)`` int64 label
    array (0 = abstain) and a per-row exception dict — bit-identical in
    labels and error placement to running the wrapped
    :class:`LabelingFunction` on every candidate.
    """

    __slots__ = ("branches", "lf_name", "cardinality")

    def __init__(self, branches: Sequence[Branch], lf_name: str, cardinality: int) -> None:
        self.branches = list(branches)
        self.lf_name = lf_name
        self.cardinality = cardinality

    def evaluate(self, chunk: ColumnarChunk) -> tuple[np.ndarray, dict[int, BaseException]]:
        n = chunk.num_rows
        labels = np.zeros(n, dtype=np.int64)
        undecided = np.ones(n, dtype=bool)
        errors: dict[int, BaseException] = {}
        for branch in self.branches:
            if not undecided.any():
                break
            if branch.guard is None:
                take = undecided.copy()
            else:
                guard = branch.guard.eval(chunk)
                if guard.errors:
                    for row, exc in guard.errors.items():
                        if undecided[row]:
                            errors[row] = exc
                            undecided[row] = False
                take = undecided & as_bool_mask(guard, n)
            if branch.column is None:
                if branch.value:
                    labels[take] = branch.value
                undecided &= ~take
                continue
            column = branch.column.eval(chunk)
            decided = take.copy()
            if column.errors:
                for row, exc in column.errors.items():
                    if take[row]:
                        errors[row] = exc
                        take[row] = False
            self._canonicalize_into(labels, column, take, errors)
            undecided &= ~decided
        return labels, errors

    # ------------------------------------------------------- canonicalization
    def _canonicalize_into(
        self,
        labels: np.ndarray,
        column: Column,
        take: np.ndarray,
        errors: dict[int, BaseException],
    ) -> None:
        """Scatter canonical labels for ``take`` rows, mirroring
        :meth:`LabelingFunction._canonicalize` (including its error text)."""
        values = column.values
        if isinstance(values, np.ndarray) and values.dtype == np.bool_:
            # Exact Python bools only (see make_column): True → +1, False → -1
            # before any range check, exactly like the interpreted branch.
            labels[take] = np.where(values[take], POSITIVE, NEGATIVE)
            return
        if isinstance(values, np.ndarray) and values.dtype == np.int64:
            # Exact Python ints only: the vectorized range check.
            if self.cardinality == 2:
                bad = take & ((values < -1) | (values > 1))
            else:
                bad = take & ((values < 0) | (values > self.cardinality))
            for row in np.nonzero(bad)[0]:
                errors[int(row)] = self._range_error(int(values[row]))
                take[row] = False
            labels[take] = values[take]
            return
        rows = values.tolist()
        for row in np.nonzero(take)[0]:
            try:
                labels[row] = self._canonicalize_raw(rows[row])
            except LabelingError as exc:
                errors[int(row)] = exc
                take[row] = False

    def _canonicalize_raw(self, raw: Any) -> int:
        if raw is None:
            return 0
        if raw is True:
            return POSITIVE
        if raw is False:
            return NEGATIVE
        if isinstance(raw, (int,)) and not isinstance(raw, bool):
            value = int(raw)
            if self.cardinality == 2:
                if value in (-1, 0, 1):
                    return value
                raise self._range_error(value)
            if 0 <= value <= self.cardinality:
                return value
            raise self._range_error(value)
        raise LabelingError(
            f"labeling function {self.lf_name!r} returned {raw!r} of type "
            f"{type(raw).__name__}; expected True/False/None or an integer label"
        )

    def _range_error(self, value: int) -> LabelingError:
        if self.cardinality == 2:
            return LabelingError(
                f"labeling function {self.lf_name!r} returned {value}, expected one of "
                f"{{-1, 0, 1}} (binary task)"
            )
        return LabelingError(
            f"labeling function {self.lf_name!r} returned {value}, "
            f"expected 0..{self.cardinality}"
        )
