"""The pushdown chunk task: compiled-kernel LF application over the engine.

:func:`build_plan` partitions an LF suite into compiled programs (every LF
the analyzer classifies ``COMPILABLE`` *and* the compiler accepts) and
interpreted fallbacks, producing a :class:`PushdownPlan`.  The plan is the
payload of :func:`label_chunk_pushdown`, a drop-in
:data:`~repro.labeling.engine.executors.ChunkTask`: same signature, same
:class:`~repro.labeling.engine.accumulator.ChunkResult` contract, same
deterministic CSR triples — so it composes unchanged with the sequential /
threads / processes executors, windowed submission, and the accumulator
merge.  :func:`label_pushdown_and_featurize_chunk` is the fused variant
(labels + features in one pass), mirroring
:func:`~repro.labeling.engine.tasks.label_and_featurize_chunk`.

Equivalence contract (enforced by ``tests/test_pushdown.py``): for any
suite, chunking, and backend, the triples, error counts, and error type
breakdowns are **bit-identical** to :func:`apply_chunk` — compiled kernels
emit entries in the same row-major (row, col) order, fault-tolerant error
accounting matches per LF and per exception type, and a non-fault-tolerant
run raises the same exception the interpreted row-major scan would have hit
first.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.labeling.engine.accumulator import ChunkResult, LFErrorDetail
from repro.labeling.engine.tasks import featurize_chunk
from repro.labeling.pushdown.compiler import CompileError, compile_lf
from repro.labeling.pushdown.fields import ColumnarChunk
from repro.labeling.pushdown.program import CompiledProgram
from repro.types import ABSTAIN

__all__ = [
    "CompiledLF",
    "PushdownPlan",
    "PushdownSummary",
    "build_fused_worker_payload",
    "build_plan",
    "build_worker_payload",
    "label_chunk_pushdown",
    "label_pushdown_and_featurize_chunk",
]


@dataclass
class CompiledLF:
    """One LF compiled to a columnar program, with its matrix column."""

    name: str
    column: int
    program: CompiledProgram


@dataclass
class PushdownPlan:
    """The compiled/fallback partition of one LF suite.

    ``compiled`` and ``fallback`` together cover every column exactly once;
    ``fallback_reasons`` records, per fallback LF name, why it was not
    compiled (the analyzer's OPAQUE detail or the compiler's refusal) —
    surfaced by ``LFApplier(pushdown="require")`` diagnostics and the
    ``ApplyReport.pushdown`` summary.
    """

    num_lfs: int
    compiled: list[CompiledLF] = field(default_factory=list)
    #: ``(column, lf)`` pairs evaluated by the interpreted per-candidate loop.
    fallback: list = field(default_factory=list)
    fallback_reasons: dict[str, str] = field(default_factory=dict)
    compile_seconds: float = 0.0
    cardinality: int = 2

    @property
    def compiled_names(self) -> list[str]:
        return [clf.name for clf in self.compiled]

    @property
    def fallback_names(self) -> list[str]:
        return [lf.name for _column, lf in self.fallback]


@dataclass
class PushdownSummary:
    """What pushdown did during one apply run (``ApplyReport.pushdown``).

    ``compiled`` / ``fallback`` partition the suite by execution tier;
    ``fallback`` maps each interpreted LF to the reason it was not compiled
    (the analyzer's OPAQUE detail or the compiler's refusal).  The
    per-tier second totals come from the engine's per-LF wall-clock
    accounting, summed over chunks; note that shared per-chunk work (field
    extraction, token indexes) is attributed to the first LF that triggers
    it, so per-tier seconds describe where time was spent, not marginal
    per-LF costs.
    """

    compiled: list[str] = field(default_factory=list)
    fallback: dict[str, str] = field(default_factory=dict)
    compile_seconds: float = 0.0
    compiled_seconds: float = 0.0
    fallback_seconds: float = 0.0

    @classmethod
    def from_run(
        cls, plan: "PushdownPlan", lf_seconds: dict[str, float]
    ) -> "PushdownSummary":
        return cls(
            compiled=plan.compiled_names,
            fallback=dict(plan.fallback_reasons),
            compile_seconds=plan.compile_seconds,
            compiled_seconds=sum(
                lf_seconds.get(name, 0.0) for name in plan.compiled_names
            ),
            fallback_seconds=sum(
                lf_seconds.get(name, 0.0) for name in plan.fallback_names
            ),
        )


def build_plan(
    lfs: Sequence,
    cardinality: Optional[int] = None,
    backend: Optional[str] = None,
) -> PushdownPlan:
    """Compile what the analyzer admits; everything else falls back.

    The ``COMPILABLE`` verdict gates compilation (the classifier's hazard
    demotion — randomness, mutation, I/O — applies before any kernel is
    built), and the memoized :func:`repro.analysis.analyze_lf` pass is shared
    with ``validate=`` so one suite is analyzed once per process.
    """
    from repro.analysis import analyze_lf

    start = time.perf_counter()
    plan = PushdownPlan(num_lfs=len(lfs), cardinality=cardinality if cardinality else 2)
    for column, lf in enumerate(lfs):
        result = analyze_lf(lf, cardinality=cardinality, backend=backend)
        if not result.pushdown.compilable:
            plan.fallback.append((column, lf))
            plan.fallback_reasons[lf.name] = (
                result.pushdown.detail or "classified OPAQUE"
            )
            continue
        try:
            program = compile_lf(lf, cardinality=cardinality)
        except CompileError as exc:
            plan.fallback.append((column, lf))
            plan.fallback_reasons[lf.name] = f"compiler refused: {exc}"
            continue
        plan.compiled.append(CompiledLF(name=lf.name, column=column, program=program))
        if cardinality is None:
            plan.cardinality = program.cardinality
    plan.compile_seconds = time.perf_counter() - start
    return plan


def build_worker_payload(config: tuple) -> PushdownPlan:
    """Worker-side :class:`~repro.labeling.engine.runtime.TaskSpec` builder.

    A compiled :class:`PushdownPlan` holds kernel closures and cannot cross
    a pipe, so the persistent worker runtime ships the *configuration*
    instead — ``(lfs, cardinality, backend)`` — and each worker compiles its
    own plan once at attach time.  Compilation is deterministic, so every
    worker's plan (and therefore every emitted triple) matches the
    master-side plan bit for bit.
    """
    lfs, cardinality, backend = config
    return build_plan(list(lfs), cardinality=cardinality, backend=backend)


def build_fused_worker_payload(config: tuple) -> tuple:
    """Like :func:`build_worker_payload` for the fused label+featurize task:
    ``(lfs, cardinality, backend, featurizer)`` → ``(plan, featurizer)``."""
    lfs, cardinality, backend, featurizer = config
    return (build_plan(list(lfs), cardinality=cardinality, backend=backend), featurizer)


def _wrap_error(lf_name: str, exc: BaseException) -> BaseException:
    """The exception a non-fault-tolerant interpreted run would propagate.

    :meth:`LabelingFunction.__call__` wraps user exceptions in a
    :class:`LabelingError` (canonicalization errors pass through unwrapped);
    compiled columns carry the raw user exception, so re-wrap here.
    """
    if isinstance(exc, LabelingError):
        return exc
    wrapped = LabelingError(
        f"labeling function {lf_name!r} raised {type(exc).__name__}: {exc}"
    )
    wrapped.__cause__ = exc
    return wrapped


def label_chunk_pushdown(
    plan: PushdownPlan,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: Sequence,
) -> ChunkResult:
    """Apply a :class:`PushdownPlan` to one chunk (the pushdown worker kernel)."""
    start = time.perf_counter()
    chunk = ColumnarChunk(candidates)
    n = chunk.num_rows
    names: dict[int, str] = {}
    column_labels: dict[int, np.ndarray] = {}
    column_errors: dict[int, dict[int, BaseException]] = {}
    lf_seconds: dict[str, float] = {}

    for clf in plan.compiled:
        lf_start = time.perf_counter()
        labels, errors = clf.program.evaluate(chunk)
        lf_seconds[clf.name] = time.perf_counter() - lf_start
        names[clf.column] = clf.name
        column_labels[clf.column] = labels
        column_errors[clf.column] = errors

    for column, lf in plan.fallback:
        lf_start = time.perf_counter()
        labels = np.zeros(n, dtype=np.int64)
        errors: dict[int, BaseException] = {}
        for offset, candidate in enumerate(candidates):
            try:
                label = lf(candidate)
            except Exception as exc:  # noqa: BLE001 - mirror apply_chunk
                errors[offset] = exc
                continue
            if label != ABSTAIN:
                labels[offset] = label
        lf_seconds[lf.name] = time.perf_counter() - lf_start
        names[column] = lf.name
        column_labels[column] = labels
        column_errors[column] = errors

    if not fault_tolerant:
        first: Optional[tuple[int, int]] = None
        for column, errors in column_errors.items():
            for row in errors:
                if first is None or (row, column) < first:
                    first = (row, column)
        if first is not None:
            row, column = first
            raise _wrap_error(names[column], column_errors[column][row])

    error_counts: dict[str, int] = {}
    error_details: dict[str, LFErrorDetail] = {}
    for column in sorted(column_errors):
        errors = column_errors[column]
        if not errors:
            continue
        name = names[column]
        error_counts[name] = error_counts.get(name, 0) + len(errors)
        detail = error_details.setdefault(name, LFErrorDetail())
        for row in sorted(errors):
            exc = errors[row]
            cause = (
                exc.__cause__
                if isinstance(exc, LabelingError) and exc.__cause__
                else exc
            )
            formatted = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            detail.record(type(cause).__name__, formatted)

    row_blocks: list[np.ndarray] = []
    col_blocks: list[np.ndarray] = []
    value_blocks: list[np.ndarray] = []
    for column in sorted(column_labels):
        labels = column_labels[column]
        nonzero = np.nonzero(labels)[0]
        if nonzero.size == 0:
            continue
        row_blocks.append(nonzero)
        col_blocks.append(np.full(nonzero.size, column, dtype=np.int64))
        value_blocks.append(labels[nonzero])
    empty = np.empty(0, dtype=np.int64)
    if row_blocks:
        rows = np.concatenate(row_blocks)
        cols = np.concatenate(col_blocks)
        values = np.concatenate(value_blocks)
        # apply_chunk emits candidate-major: ascending row, then column.
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
    else:
        rows = cols = values = empty
    return ChunkResult(
        index=index,
        start_row=start_row,
        num_candidates=n,
        row_offsets=rows,
        cols=cols,
        values=values,
        errors=error_counts,
        error_details=error_details,
        seconds=time.perf_counter() - start,
        lf_seconds=lf_seconds,
    )


def label_pushdown_and_featurize_chunk(
    payload: tuple,
    fault_tolerant: bool,
    index: int,
    start_row: int,
    candidates: Sequence,
) -> ChunkResult:
    """Fused pushdown labeling + featurization (``payload`` is
    ``(plan, featurizer)``), mirroring
    :func:`~repro.labeling.engine.tasks.label_and_featurize_chunk`."""
    plan, featurizer = payload
    result = label_chunk_pushdown(plan, fault_tolerant, index, start_row, candidates)
    result.features = featurize_chunk(featurizer, fault_tolerant, index, start_row, candidates)
    result.seconds += result.features.seconds
    return result
