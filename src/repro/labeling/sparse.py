"""Sparse (CSR-style) storage of label matrices.

Real labeling-function suites have low coverage: most entries of Λ are the
abstain value, so dense ``(m, n)`` storage wastes both memory and FLOPs on
zeros.  :class:`SparseLabelMatrix` stores only the non-abstain entries in
compressed-sparse-row form — ``indptr`` / ``indices`` / ``data`` exactly as in
``scipy.sparse.csr_matrix`` — plus a cached column-major (CSC) view for the
column-sliced access patterns of the label model and structure learner.

The canonical representation is three numpy arrays, so the backend works
without SciPy; when :mod:`scipy.sparse` is importable the heavy conversions
and matvecs are routed through it (``to_scipy`` shares the arrays, no copy).
All label-model hot paths (:mod:`repro.labelmodel.generative`,
:mod:`repro.labelmodel.gibbs`, :mod:`repro.labelmodel.structure`) consume this
storage directly without densifying.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import LabelingError
from repro.types import ABSTAIN

try:  # pragma: no cover - exercised implicitly on scipy-equipped machines
    import scipy.sparse as _scipy_sparse

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - the pure-numpy fallback
    _scipy_sparse = None
    HAVE_SCIPY = False

#: Set to True (e.g. by tests) to force the pure-numpy code paths even when
#: scipy is installed, so both backends stay covered.
FORCE_NUMPY_FALLBACK = False


def _use_scipy() -> bool:
    return HAVE_SCIPY and not FORCE_NUMPY_FALLBACK


def ranges_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]`` vectorized.

    The workhorse behind CSC slice gathers: with ``starts = col_indptr[cols]``
    and ``counts = col_indptr[cols + 1] - starts`` it yields the absolute CSC
    positions of every entry of the given columns, in column order — e.g. one
    color class of the sampler-plan graph coloring
    (:mod:`repro.labelmodel.kernels`) in a single call.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(starts, counts)


#: Backwards-compatible alias of :func:`ranges_gather` (pre-kernels name).
_ranges_gather = ranges_gather


def intersect_sorted(values_a: np.ndarray, values_b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Positions of the common values of two sorted, duplicate-free arrays.

    Returns ``(in_a, in_b)`` with ``values_a[in_a] == values_b[in_b]`` — the
    same contract as ``np.intersect1d(..., assume_unique=True,
    return_indices=True)`` minus the values themselves, but via a single
    ``searchsorted`` instead of a concatenated sort.  This is the alignment
    primitive shared by the sampler-plan compiler, the correlation-discount
    computation, and the structure learner's node-wise design assembly: all
    of them intersect per-column CSC row slices, which are sorted and unique
    by construction.
    """
    values_a = np.asarray(values_a)
    values_b = np.asarray(values_b)
    if values_a.size == 0 or values_b.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    positions = np.searchsorted(values_b, values_a)
    bounded = np.minimum(positions, values_b.size - 1)
    in_a = np.flatnonzero(values_b[bounded] == values_a)
    return in_a, positions[in_a]


class SparseLabelMatrix:
    """CSR storage of the non-abstain entries of a label matrix Λ.

    Parameters
    ----------
    indptr, indices, data:
        Standard CSR arrays: row ``i``'s entries live at positions
        ``indptr[i]:indptr[i + 1]``, with column ids ``indices`` and label
        values ``data`` (never ``ABSTAIN``; column ids strictly increasing
        within each row).
    shape:
        ``(num_candidates, num_lfs)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()
        self._csc_cache: Optional[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None
        self._entry_rows: Optional[np.ndarray] = None
        self._entry_cols_csc: Optional[np.ndarray] = None

    def _validate(self) -> None:
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise LabelingError(
                f"indptr must have length {m + 1} for {m} rows, got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise LabelingError("indptr must start at 0 and be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape != (nnz,) or self.data.shape != (nnz,):
            raise LabelingError(
                f"indices/data must have length {nnz}, got {self.indices.shape}/{self.data.shape}"
            )
        if nnz and (self.indices.min() < 0 or self.indices.max() >= n):
            raise LabelingError(f"column indices out of range for {n} labeling functions")
        if np.any(self.data == ABSTAIN):
            raise LabelingError("sparse label storage must not contain abstain entries")

    # ------------------------------------------------------------- construction
    @classmethod
    def from_dense(cls, values: np.ndarray) -> "SparseLabelMatrix":
        """Compress a dense label matrix (abstains dropped)."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise LabelingError(f"label matrix must be 2-dimensional, got shape {values.shape}")
        rows, cols = np.nonzero(values != ABSTAIN)
        data = values[rows, cols].astype(np.int64)
        indptr = np.zeros(values.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=values.shape[0]), out=indptr[1:])
        return cls(indptr, cols.astype(np.int64), data, values.shape)

    @classmethod
    def from_triples(
        cls,
        rows: Sequence[int] | np.ndarray,
        cols: Sequence[int] | np.ndarray,
        values: Sequence[int] | np.ndarray,
        shape: tuple[int, int],
    ) -> "SparseLabelMatrix":
        """Build from ``(row, col, value)`` triples (any order; abstains dropped)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
            raise LabelingError("rows, cols and values must be 1-D arrays of equal length")
        m, n = int(shape[0]), int(shape[1])
        keep = values != ABSTAIN
        rows, cols, values = rows[keep], cols[keep], values[keep]
        if rows.size:
            if rows.min() < 0 or rows.max() >= m or cols.min() < 0 or cols.max() >= n:
                raise LabelingError(f"triples out of range for shape {(m, n)}")
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]
        if rows.size > 1:
            duplicate = (np.diff(rows) == 0) & (np.diff(cols) == 0)
            if np.any(duplicate):
                where = int(np.flatnonzero(duplicate)[0])
                raise LabelingError(
                    f"duplicate entry at (row={int(rows[where])}, col={int(cols[where])})"
                )
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])
        return cls(indptr, cols, values, (m, n))

    @classmethod
    def from_scipy(cls, matrix) -> "SparseLabelMatrix":
        """Convert any scipy sparse matrix (zeros pruned away)."""
        if not HAVE_SCIPY:  # pragma: no cover - only reachable without scipy
            raise LabelingError("scipy is not available in this environment")
        csr = matrix.tocsr().astype(np.int64)
        csr.sum_duplicates()
        csr.eliminate_zeros()
        csr.sort_indices()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    def to_scipy(self):
        """View as a ``scipy.sparse.csr_matrix`` (shares the underlying arrays)."""
        if not HAVE_SCIPY:  # pragma: no cover - only reachable without scipy
            raise LabelingError("scipy is not available in this environment")
        return _scipy_sparse.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``(m, n)`` integer matrix (abstains as 0)."""
        dense = np.full(self.shape, ABSTAIN, dtype=np.int64)
        dense[self.entry_rows(), self.indices] = self.data
        return dense

    # ------------------------------------------------------------------- basics
    @property
    def nnz(self) -> int:
        """Number of stored (non-abstain) entries."""
        return int(self.indptr[-1])

    def entry_rows(self) -> np.ndarray:
        """Row id of every stored entry, in CSR order (cached)."""
        if self._entry_rows is None:
            self._entry_rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
        return self._entry_rows

    def row_nnz(self) -> np.ndarray:
        """Per-row count of non-abstain entries."""
        return np.diff(self.indptr)

    def col_nnz(self) -> np.ndarray:
        """Per-column count of non-abstain entries."""
        return np.bincount(self.indices, minlength=self.shape[1]).astype(np.int64)

    # ---------------------------------------------------------------- CSC view
    def csc(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Column-major view: ``(col_indptr, rows, values)``.

        Column ``j``'s entries live at ``col_indptr[j]:col_indptr[j + 1]``,
        with row ids sorted ascending.  The view is computed once and cached.
        """
        col_indptr, rows, values, _ = self._csc_full()
        return col_indptr, rows, values

    def _csc_full(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._csc_cache is None:
            order = np.argsort(self.indices, kind="stable")
            col_indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
            np.cumsum(self.col_nnz(), out=col_indptr[1:])
            self._csc_cache = (
                col_indptr,
                self.entry_rows()[order],
                self.data[order],
                order,
            )
        return self._csc_cache

    def entry_cols(self) -> np.ndarray:
        """Column id of every stored entry, in CSC order (cached).

        The companion of :meth:`entry_rows` for the column-major view: with
        ``(col_indptr, rows, values) = csc()``, ``entry_cols()[p]`` is the
        column that owns CSC position ``p``.  Shared by the EM estimators,
        the Gibbs sampler, and the sampler-plan compiler, which all need
        per-entry column lookups (weight gathers, per-column reductions).
        """
        if self._entry_cols_csc is None:
            col_indptr, _, _ = self.csc()
            self._entry_cols_csc = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), np.diff(col_indptr)
            )
        return self._entry_cols_csc

    def column(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Non-abstain entries of column ``j`` as ``(row_ids, values)``."""
        col_indptr, rows, values = self.csc()
        window = slice(int(col_indptr[j]), int(col_indptr[j + 1]))
        return rows[window], values[window]

    def with_csc_data(self, new_values: np.ndarray) -> "SparseLabelMatrix":
        """Same sparsity pattern with new entry values given in CSC order."""
        col_indptr, rows, _, order = self._csc_full()
        new_values = np.asarray(new_values, dtype=np.int64)
        if new_values.shape != (self.nnz,):
            raise LabelingError(
                f"expected {self.nnz} values, got shape {new_values.shape}"
            )
        if np.any(new_values == ABSTAIN):
            raise LabelingError("sparse label storage must not contain abstain entries")
        csr_data = np.empty_like(new_values)
        csr_data[order] = new_values
        # The pattern arrays are this matrix's own (already validated), and
        # the values were just checked, so skip the full constructor scan —
        # the samplers call this once per chain.
        result = SparseLabelMatrix.__new__(SparseLabelMatrix)
        result.indptr = self.indptr
        result.indices = self.indices
        result.data = csr_data
        result.shape = self.shape
        # The pattern is unchanged, so the CSC view carries over — pre-seed
        # the cache to spare the next consumer the O(nnz log nnz) argsort.
        result._csc_cache = (col_indptr, rows, new_values, order)
        result._entry_rows = self._entry_rows
        result._entry_cols_csc = self._entry_cols_csc
        return result

    # ------------------------------------------------------------- linear algebra
    def matvec(self, column_weights: np.ndarray) -> np.ndarray:
        """Per-row sums ``Σ_j data_{i,j} · w_j`` (the sparse ``Λ @ w``)."""
        column_weights = np.asarray(column_weights, dtype=float)
        if column_weights.shape != (self.shape[1],):
            raise LabelingError(
                f"expected {self.shape[1]} weights, got shape {column_weights.shape}"
            )
        if _use_scipy():
            return self.to_scipy() @ column_weights
        return np.bincount(
            self.entry_rows(),
            weights=self.data * column_weights[self.indices],
            minlength=self.shape[0],
        )

    def row_sums(self) -> np.ndarray:
        """Per-row sum of the stored entries (the unweighted vote ``f_1``)."""
        return np.bincount(
            self.entry_rows(), weights=self.data, minlength=self.shape[0]
        ).astype(float)

    def count_per_row(self, value: int) -> np.ndarray:
        """Per-row count of entries equal to ``value``."""
        mask = self.data == value
        return np.bincount(self.entry_rows()[mask], minlength=self.shape[0])

    def count_per_col(self, value: int) -> np.ndarray:
        """Per-column count of entries equal to ``value``."""
        mask = self.data == value
        return np.bincount(self.indices[mask], minlength=self.shape[1])

    # ------------------------------------------------------------------ slicing
    @staticmethod
    def _normalize_indices(indices, length: int) -> np.ndarray:
        """Index list from either integer indices or a boolean mask."""
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (length,):
                raise LabelingError(
                    f"boolean index mask must have length {length}, got shape {indices.shape}"
                )
            return np.flatnonzero(indices)
        return indices.astype(np.int64)

    def select_rows(self, row_indices: Sequence[int] | np.ndarray) -> "SparseLabelMatrix":
        """Restrict (and reorder) to the given rows (indices or boolean mask)."""
        row_indices = self._normalize_indices(row_indices, self.shape[0])
        if _use_scipy():
            return SparseLabelMatrix.from_scipy(self.to_scipy()[row_indices])
        starts = self.indptr[row_indices]
        counts = self.indptr[row_indices + 1] - starts
        gather = _ranges_gather(starts, counts)
        indptr = np.zeros(row_indices.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return SparseLabelMatrix(
            indptr, self.indices[gather], self.data[gather], (row_indices.size, self.shape[1])
        )

    def select_columns(self, col_indices: Sequence[int] | np.ndarray) -> "SparseLabelMatrix":
        """Restrict (and reorder) to the given columns (indices or boolean mask)."""
        col_indices = self._normalize_indices(col_indices, self.shape[1])
        if _use_scipy():
            return SparseLabelMatrix.from_scipy(self.to_scipy()[:, col_indices])
        keep_positions = []
        new_cols = []
        for new_j, old_j in enumerate(col_indices):
            positions = np.flatnonzero(self.indices == old_j)
            keep_positions.append(positions)
            new_cols.append(np.full(positions.size, new_j, dtype=np.int64))
        positions = np.concatenate(keep_positions) if keep_positions else np.empty(0, np.int64)
        cols = np.concatenate(new_cols) if new_cols else np.empty(0, np.int64)
        return SparseLabelMatrix.from_triples(
            self.entry_rows()[positions],
            cols,
            self.data[positions],
            (self.shape[0], col_indices.size),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        m, n = self.shape
        density = self.nnz / (m * n) if m and n else 0.0
        return f"SparseLabelMatrix(shape={self.shape}, nnz={self.nnz}, density={density:.4f})"


def class_vote_counts(
    label_matrix,
    cardinality: int,
    column_weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-row, per-class vote counts (or weighted vote sums) in a single pass.

    Returns an ``(m, cardinality)`` float array whose ``[i, c - 1]`` entry is
    the number of labeling functions voting class ``c`` on row ``i`` — or,
    with ``column_weights`` given, the sum of their weights.  The reduction is
    one flattened ``bincount`` over the non-abstain entries for both storages
    (sparse inputs are never densified), instead of one pass per class.
    Shared by :class:`repro.labelmodel.majority.MultiClassMajorityVoter` and
    the multi-class generative posterior.

    Labels must be categorical (``1..cardinality``; ``0`` = abstain) — signed
    binary matrices are rejected rather than silently miscounted.
    """
    from repro.labeling.matrix import LabelMatrix  # local import: avoid a cycle

    if cardinality < 2:
        raise LabelingError(f"cardinality must be >= 2, got {cardinality}")
    sparse = as_sparse_storage(label_matrix)
    if sparse is not None:
        num_rows = sparse.shape[0]
        rows, cols, vals = sparse.entry_rows(), sparse.indices, sparse.data
    else:
        values = (
            label_matrix.values
            if isinstance(label_matrix, LabelMatrix)
            else np.asarray(label_matrix, dtype=np.int64)
        )
        num_rows = values.shape[0]
        rows, cols = np.nonzero(values != ABSTAIN)
        vals = values[rows, cols]
    if vals.size and (vals.min() < 1 or vals.max() > cardinality):
        raise LabelingError(
            f"class_vote_counts expects categorical labels in 1..{cardinality} "
            f"(0 = abstain), got values in [{int(vals.min())}, {int(vals.max())}]"
        )
    weights = None if column_weights is None else np.asarray(column_weights, dtype=float)[cols]
    flat = np.bincount(
        rows * cardinality + (vals - 1), weights=weights, minlength=num_rows * cardinality
    )
    return flat.reshape(num_rows, cardinality).astype(float)


def as_sparse_storage(label_matrix) -> Optional[SparseLabelMatrix]:
    """Return the :class:`SparseLabelMatrix` behind ``label_matrix``, if any.

    Accepts a sparse-backed :class:`repro.labeling.matrix.LabelMatrix`, a raw
    :class:`SparseLabelMatrix`, or a scipy sparse matrix; returns ``None`` for
    dense inputs so callers can fall through to their dense implementation.
    """
    from repro.labeling.matrix import LabelMatrix  # local import: avoid a cycle

    if isinstance(label_matrix, SparseLabelMatrix):
        return label_matrix
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.storage if label_matrix.is_sparse else None
    if HAVE_SCIPY and _scipy_sparse.issparse(label_matrix):
        return SparseLabelMatrix.from_scipy(label_matrix)
    return None
