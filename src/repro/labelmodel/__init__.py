"""The generative label model and its surrounding machinery.

This package is the reproduction of the paper's core technical contribution
(Sections 2.2 and 3):

* :mod:`repro.labelmodel.majority` — unweighted and weighted majority vote,
* :mod:`repro.labelmodel.factor_graph` — the factor definitions (labeling
  propensity, accuracy, pairwise correlation),
* :mod:`repro.labelmodel.gibbs` — the Gibbs sampler used during training,
* :mod:`repro.labelmodel.kernels` — the vectorized sampling kernel layer:
  graph-colored :class:`SamplerPlan` compilation (one plan per abstention
  pattern and spec) and :class:`SamplerWorkspace` scratch reuse, which turn
  a sweep's O(n)-column Python loop into O(#colors) fused numpy updates,
* :mod:`repro.labelmodel.generative` — the generative model trained by SGD
  interleaved with Gibbs sampling (contrastive-divergence style),
* :mod:`repro.labelmodel.online` — the online incremental estimator:
  :class:`OnlineGenerativeModel` folds chunks into EM sufficient statistics
  at O(chunk) cost, supports LF add/remove without a full refit, serves
  versioned posteriors under a staleness bound, and drains to a
  bit-identical batch fit,
* :mod:`repro.labelmodel.dawid_skene` — a Dawid–Skene EM estimator used for
  the multi-class crowdsourcing task and as a related-work baseline,
* :mod:`repro.labelmodel.advantage` — the modeling advantage A_w, optimal
  advantage A*, and the optimizer's upper bound Ã*,
* :mod:`repro.labelmodel.structure` — pseudolikelihood-style structure
  learning of pairwise LF correlations with an ℓ1 selection threshold,
* :mod:`repro.labelmodel.elbow` — elbow-point selection over the threshold
  sweep,
* :mod:`repro.labelmodel.optimizer` — the Algorithm-1 modeling-strategy
  optimizer,
* :mod:`repro.labelmodel.theory` — the low/high-density bounds of Section 3.1.

Every estimator here accepts both dense label matrices and the CSR backend
(:class:`repro.labeling.sparse.SparseLabelMatrix`, or a sparse-backed
:class:`repro.labeling.LabelMatrix`), dispatching on the storage
automatically.  The hot paths — EM in :mod:`generative`, the Gibbs sweeps in
:mod:`gibbs`, and the node-wise regressions in :mod:`structure` — consume the
sparse storage without densifying, so fit cost scales with the number of
emitted labels (O(nnz)) rather than with ``m·n``; both storages produce
numerically identical results.

Two label vocabularies are supported throughout: the paper's signed binary
encoding (``{-1, 0, +1}``) and categorical labels (``0`` = abstain, classes
``1..k``).  :class:`GenerativeModel`, :class:`GibbsSampler`, the factor
graph, and the structure learner dispatch on the task's cardinality — the
binary estimators are kept as bit-compatible specializations, and
categorical inputs run the k-ary generalizations (symmetric per-LF accuracy
against ``k - 1`` uniform wrong classes, softmax posteriors, a damped
k-vector class-balance re-estimate) — so multi-class tasks such as the
crowdsourcing experiment train through the main factor-graph model, with
:class:`DawidSkeneModel` retained as a cross-check baseline.
"""

from repro.labelmodel.advantage import (
    estimate_advantage_bound,
    modeling_advantage,
    optimal_advantage,
)
from repro.labelmodel.dawid_skene import DawidSkeneModel
from repro.labelmodel.elbow import select_elbow_point
from repro.labelmodel.factor_graph import FactorGraphSpec
from repro.labelmodel.generative import GenerativeModel
from repro.labelmodel.gibbs import GibbsSampler
from repro.labelmodel.kernels import KERNELS, SamplerPlan, SamplerWorkspace, color_columns
from repro.labelmodel.majority import (
    MajorityVoter,
    MultiClassMajorityVoter,
    WeightedMajorityVoter,
)
from repro.labelmodel.online import OnlineGenerativeModel, ServedPosteriors
from repro.labelmodel.optimizer import ModelingStrategy, ModelingStrategyOptimizer
from repro.labelmodel.structure import StructureLearner, learn_structure
from repro.labelmodel.theory import high_density_upper_bound, low_density_upper_bound

__all__ = [
    "GibbsSampler",
    "KERNELS",
    "SamplerPlan",
    "SamplerWorkspace",
    "color_columns",
    "MajorityVoter",
    "MultiClassMajorityVoter",
    "WeightedMajorityVoter",
    "FactorGraphSpec",
    "GenerativeModel",
    "OnlineGenerativeModel",
    "ServedPosteriors",
    "DawidSkeneModel",
    "modeling_advantage",
    "optimal_advantage",
    "estimate_advantage_bound",
    "StructureLearner",
    "learn_structure",
    "select_elbow_point",
    "ModelingStrategy",
    "ModelingStrategyOptimizer",
    "low_density_upper_bound",
    "high_density_upper_bound",
]
