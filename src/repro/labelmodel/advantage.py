"""Modeling advantage: when does the generative model beat majority vote?

This module implements the quantities of paper Section 3.1:

* :func:`modeling_advantage` — the empirical advantage ``A_w(Λ, y)`` of a
  weighted majority vote with weights ``w`` over the unweighted vote
  (Definition 1),
* :func:`optimal_advantage` — ``A* = A_{w*}`` using the optimal (true
  log-odds) weights,
* :func:`estimate_advantage_bound` — the label-matrix-only upper bound
  ``Ã*(Λ)`` used by the Algorithm-1 optimizer (Proposition 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.labeling.matrix import LabelMatrix
from repro.labeling.sparse import as_sparse_storage
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, validate_ground_truth
from repro.utils.mathutils import accuracy_to_log_odds, sigmoid

#: Default weight-range assumption of the optimizer: accuracies between 62%
#: and 82% with an average of 73% (paper Section 3.1.2, footnote 8).
DEFAULT_WEIGHT_RANGE: tuple[float, float, float] = (0.5, 1.0, 1.5)


def _as_array(label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.values
    return np.asarray(label_matrix, dtype=np.int64)


def modeling_advantage(
    label_matrix: LabelMatrix | np.ndarray,
    gold_labels: Sequence[int] | np.ndarray,
    weights: Sequence[float] | np.ndarray,
) -> float:
    """Empirical modeling advantage ``A_w(Λ, y)`` (paper Definition 1).

    ``A_w`` counts, per data point, whether the weighted majority vote
    ``f_w(Λ_i) = Σ_j w_j Λ_{i,j}`` correctly disagrees with the unweighted
    vote ``f_1`` (a gain) or incorrectly disagrees (a loss), averaged over the
    dataset.
    """
    gold = validate_ground_truth(gold_labels).astype(float)
    weights = np.asarray(weights, dtype=float)
    sparse = as_sparse_storage(label_matrix)
    shape = sparse.shape if sparse is not None else _as_array(label_matrix).shape
    if shape[0] != gold.shape[0]:
        raise ValueError(
            f"label matrix has {shape[0]} rows but {gold.shape[0]} gold labels given"
        )
    if shape[1] != weights.shape[0]:
        raise ValueError(
            f"label matrix has {shape[1]} LFs but {weights.shape[0]} weights given"
        )
    if sparse is not None:
        weighted_scores = sparse.matvec(weights)
        unweighted_scores = sparse.row_sums()
    else:
        matrix = _as_array(label_matrix).astype(float)
        weighted_scores = matrix @ weights
        unweighted_scores = matrix.sum(axis=1)
    weighted_correct = gold * weighted_scores > 0
    unweighted_correct = gold * unweighted_scores > 0
    gains = np.logical_and(weighted_correct, ~unweighted_correct)
    losses = np.logical_and(~weighted_correct, unweighted_correct)
    return float(gains.mean() - losses.mean())


def optimal_advantage(
    label_matrix: LabelMatrix | np.ndarray,
    gold_labels: Sequence[int] | np.ndarray,
    lf_accuracies: Sequence[float] | np.ndarray,
) -> float:
    """Advantage ``A*`` of the optimally weighted vote (WMV*).

    The optimal weights are the true log-odds of the labeling-function
    accuracies, ``w*_j = 0.5 log(α_j / (1 - α_j))`` (paper Appendix A.1).
    """
    weights = np.asarray(accuracy_to_log_odds(np.asarray(lf_accuracies, dtype=float)))
    return modeling_advantage(label_matrix, gold_labels, weights)


@dataclass(frozen=True)
class AdvantageBoundDetail:
    """Per-dataset breakdown of the optimizer's advantage bound."""

    bound: float
    label_density: float
    num_candidates: int
    num_disagreement_rows: int


def estimate_advantage_bound(
    label_matrix: LabelMatrix | np.ndarray,
    weight_range: tuple[float, float, float] = DEFAULT_WEIGHT_RANGE,
) -> float:
    """The optimizer's upper bound ``Ã*(Λ)`` on the expected advantage.

    Implements the estimator of paper Section 3.1.2 / Proposition 2::

        Φ(Λ_i, y)  = 1{ c_y(Λ_i)·w_max  >  c_{-y}(Λ_i)·w_min }
        Ã*(Λ) = (1/m) Σ_i Σ_{y∈±1} 1{ y f_1(Λ_i) ≤ 0 } Φ(Λ_i, y) σ(2 f_w̄(Λ_i) y)

    where ``c_y`` counts the votes for class ``y``, ``f_1`` is the unweighted
    majority vote, and ``f_w̄`` is the vote with all weights set to the
    assumed mean ``w̄``.
    """
    return estimate_advantage_bound_detail(label_matrix, weight_range).bound


def estimate_advantage_bound_detail(
    label_matrix: LabelMatrix | np.ndarray,
    weight_range: tuple[float, float, float] = DEFAULT_WEIGHT_RANGE,
) -> AdvantageBoundDetail:
    """Like :func:`estimate_advantage_bound`, but with diagnostic detail."""
    w_min, w_mean, w_max = weight_range
    if not 0 < w_min <= w_mean <= w_max:
        raise ValueError(
            f"weight range must satisfy 0 < w_min <= w_mean <= w_max, got {weight_range}"
        )
    sparse = as_sparse_storage(label_matrix)
    if sparse is not None:
        m = sparse.shape[0]
        if m == 0:
            return AdvantageBoundDetail(0.0, 0.0, 0, 0)
        positive_counts = sparse.count_per_row(POSITIVE).astype(float)
        negative_counts = sparse.count_per_row(NEGATIVE).astype(float)
    else:
        matrix = _as_array(label_matrix)
        m = matrix.shape[0]
        if m == 0:
            return AdvantageBoundDetail(0.0, 0.0, 0, 0)
        positive_counts = (matrix == POSITIVE).sum(axis=1).astype(float)
        negative_counts = (matrix == NEGATIVE).sum(axis=1).astype(float)
    unweighted = positive_counts - negative_counts
    mean_weighted = w_mean * unweighted

    total = 0.0
    disagreement_rows = 0
    for y, own_counts, other_counts in (
        (POSITIVE, positive_counts, negative_counts),
        (NEGATIVE, negative_counts, positive_counts),
    ):
        mv_not_correct = y * unweighted <= 0
        could_flip = own_counts * w_max > other_counts * w_min
        eligible = np.logical_and(mv_not_correct, could_flip)
        disagreement_rows += int(eligible.sum())
        total += float(np.sum(eligible * sigmoid(2.0 * mean_weighted * y)))

    if sparse is not None:
        label_density = float(sparse.nnz / m)
    else:
        label_density = float((matrix != ABSTAIN).sum(axis=1).mean())
    return AdvantageBoundDetail(
        bound=total / m,
        label_density=label_density,
        num_candidates=m,
        num_disagreement_rows=disagreement_rows,
    )
