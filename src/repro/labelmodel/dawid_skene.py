"""Dawid–Skene estimation of source accuracies via EM.

The paper's high-density analysis (Theorem 1) is stated for the symmetric
Dawid–Skene model, and the Crowd task treats each crowd worker as a labeling
function.  This module implements the classic Dawid & Skene (1979) EM
estimator for multi-class tasks with abstentions, with an optional symmetric
(single accuracy per worker) parameterization.  It serves two roles:

* the label model for the multi-class crowdsourcing task (Section 4.1.2),
* a related-work baseline for comparing against the factor-graph model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import LabelModelError, NotFittedError
from repro.labeling.matrix import LabelMatrix
from repro.utils.rng import SeedLike, ensure_rng


def _as_array(label_matrix: LabelMatrix | np.ndarray) -> np.ndarray:
    if isinstance(label_matrix, LabelMatrix):
        return label_matrix.values
    return np.asarray(label_matrix, dtype=np.int64)


class DawidSkeneModel:
    """EM estimator of worker confusion matrices and latent class posteriors.

    The label matrix uses ``0`` for abstentions and classes ``1..cardinality``
    otherwise.  Binary ``{-1, +1}`` matrices are accepted and recoded
    transparently (``-1 → 1``, ``+1 → 2``) so the same class can back binary
    crowd tasks.

    Parameters
    ----------
    cardinality:
        Number of classes.
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence threshold on the mean absolute change of the posteriors.
    smoothing:
        Additive (Laplace) smoothing applied to confusion-matrix counts.
    symmetric:
        If ``True``, each worker is modeled by a single accuracy (uniform
        error across wrong classes) — the symmetric Dawid–Skene model of the
        paper's Theorem 1.
    """

    def __init__(
        self,
        cardinality: int,
        max_iter: int = 100,
        tol: float = 1e-5,
        smoothing: float = 0.01,
        symmetric: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        if cardinality < 2:
            raise LabelModelError(f"cardinality must be >= 2, got {cardinality}")
        self.cardinality = cardinality
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.symmetric = symmetric
        self.seed = seed
        self.class_priors: Optional[np.ndarray] = None
        self.confusion: Optional[np.ndarray] = None  # (num_workers, K, K)
        self.posteriors_: Optional[np.ndarray] = None
        self._binary_recode = False

    # ------------------------------------------------------------------ fitting
    def fit(self, label_matrix: LabelMatrix | np.ndarray) -> "DawidSkeneModel":
        """Run EM on the label matrix."""
        matrix = self._recode_fit(_as_array(label_matrix))
        num_items, num_workers = matrix.shape
        k = self.cardinality
        rng = ensure_rng(self.seed)

        # Initialize posteriors from per-item vote fractions (majority vote soft start).
        posteriors = np.full((num_items, k), 1.0 / k)
        for klass in range(1, k + 1):
            posteriors[:, klass - 1] += (matrix == klass).sum(axis=1)
        posteriors /= posteriors.sum(axis=1, keepdims=True)

        confusion = np.zeros((num_workers, k, k))
        class_priors = np.full(k, 1.0 / k)
        for _ in range(self.max_iter):
            # M-step: class priors and per-worker confusion matrices.
            class_priors = posteriors.mean(axis=0)
            class_priors = np.clip(class_priors, 1e-12, None)
            class_priors /= class_priors.sum()
            for worker in range(num_workers):
                counts = np.full((k, k), self.smoothing)
                voted = matrix[:, worker] != 0
                votes = matrix[voted, worker] - 1
                counts_update = np.zeros((k, k))
                np.add.at(counts_update, (slice(None), votes), posteriors[voted].T)
                counts += counts_update
                confusion[worker] = counts / counts.sum(axis=1, keepdims=True)
            if self.symmetric:
                confusion = self._symmetrize(confusion)

            # E-step: posterior over the true class per item.
            log_posterior = np.log(class_priors)[None, :].repeat(num_items, axis=0)
            for worker in range(num_workers):
                voted = matrix[:, worker] != 0
                votes = matrix[voted, worker] - 1
                log_posterior[voted] += np.log(
                    np.clip(confusion[worker][:, votes].T, 1e-12, None)
                )
            shifted = log_posterior - log_posterior.max(axis=1, keepdims=True)
            new_posteriors = np.exp(shifted)
            new_posteriors /= new_posteriors.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posteriors - posteriors).mean())
            posteriors = new_posteriors
            if delta < self.tol:
                break

        self.class_priors = class_priors
        self.confusion = confusion
        self.posteriors_ = posteriors
        return self

    def _symmetrize(self, confusion: np.ndarray) -> np.ndarray:
        """Collapse each worker's confusion matrix to a single accuracy."""
        k = self.cardinality
        symmetric = np.empty_like(confusion)
        for worker in range(confusion.shape[0]):
            accuracy = float(np.mean(np.diag(confusion[worker])))
            off_diagonal = (1.0 - accuracy) / (k - 1)
            symmetric[worker] = np.full((k, k), off_diagonal)
            np.fill_diagonal(symmetric[worker], accuracy)
        return symmetric

    def _recode_fit(self, matrix: np.ndarray) -> np.ndarray:
        """Decide the label encoding at fit time and recode accordingly.

        Signed binary ``{-1, 0, +1}`` matrices set ``_binary_recode`` and are
        mapped to ``{0, 1, 2}``; categorical matrices pass through.  The
        decision is remembered so held-out matrices are recoded the same way
        (see :meth:`_apply_recode`).
        """
        if matrix.min() < 0:
            if self.cardinality != 2:
                raise LabelModelError(
                    "negative labels are only supported for binary (cardinality=2) tasks"
                )
            self._binary_recode = True
        else:
            self._binary_recode = False
        return self._apply_recode(matrix)

    def _apply_recode(self, matrix: np.ndarray) -> np.ndarray:
        """Recode a matrix under the encoding fixed at fit time.

        Regression guard: re-deciding the encoding per matrix misindexes
        classes — a held-out signed matrix with no negative entries (e.g.
        abstains and positives only) would be read as categorical, sending
        the ``+1`` votes to class 1 (which the fitted confusion matrices
        learned as the *negative* class).
        """
        if self._binary_recode:
            if matrix.size and (matrix.min() < -1 or matrix.max() > 1):
                raise LabelModelError(
                    "model was fit on signed binary labels; expected values in "
                    f"{{-1, 0, +1}}, got range [{int(matrix.min())}, {int(matrix.max())}]"
                )
            recoded = np.zeros_like(matrix)
            recoded[matrix == -1] = 1
            recoded[matrix == 1] = 2
            return recoded
        if matrix.size and (matrix.min() < 0 or matrix.max() > self.cardinality):
            raise LabelModelError(
                f"model was fit on categorical labels in 0..{self.cardinality}, got "
                f"range [{int(matrix.min())}, {int(matrix.max())}]"
            )
        return matrix

    # ---------------------------------------------------------------- inference
    def _require_fitted(self) -> np.ndarray:
        if self.posteriors_ is None or self.confusion is None:
            raise NotFittedError("DawidSkeneModel must be fit before inference")
        return self.posteriors_

    def predict_proba(self, label_matrix: Optional[LabelMatrix | np.ndarray] = None) -> np.ndarray:
        """Posterior class probabilities (rows sum to one).

        With no argument, the training-set posteriors are returned.  With a
        new label matrix, posteriors are computed under the fitted confusion
        matrices and class priors; it is recoded under the encoding fixed at
        fit time, so a signed held-out matrix scores against the same class
        indexing the model was trained with.
        """
        if label_matrix is None:
            return self._require_fitted().copy()
        self._require_fitted()
        matrix = self._apply_recode(_as_array(label_matrix))
        num_items = matrix.shape[0]
        log_posterior = np.log(np.clip(self.class_priors, 1e-12, None))[None, :].repeat(
            num_items, axis=0
        )
        for worker in range(matrix.shape[1]):
            voted = matrix[:, worker] != 0
            votes = matrix[voted, worker] - 1
            log_posterior[voted] += np.log(
                np.clip(self.confusion[worker][:, votes].T, 1e-12, None)
            )
        shifted = log_posterior - log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(shifted)
        return posterior / posterior.sum(axis=1, keepdims=True)

    def predict(self, label_matrix: Optional[LabelMatrix | np.ndarray] = None) -> np.ndarray:
        """Hard class predictions.

        Multi-class tasks return classes ``1..cardinality``; binary tasks that
        were recoded return labels in ``{-1, +1}``.
        """
        posterior = self.predict_proba(label_matrix)
        classes = posterior.argmax(axis=1) + 1
        if self._binary_recode:
            return np.where(classes == 2, 1, -1).astype(np.int64)
        return classes.astype(np.int64)

    def worker_accuracies(self) -> np.ndarray:
        """Mean diagonal of each worker's confusion matrix (overall accuracy)."""
        self._require_fitted()
        return np.array([float(np.mean(np.diag(c))) for c in self.confusion])
