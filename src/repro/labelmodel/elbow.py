"""Elbow-point selection over the correlation-threshold sweep.

Structure learning depends on a threshold ε: lower thresholds admit more
correlations, and beyond an "elbow" the count explodes (paper Section 3.2.2).
The paper selects the ε at the point of greatest absolute difference from its
neighbors in the (ε, #correlations) curve; this module implements that rule
plus a kneedle-style alternative for robustness checks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def select_elbow_point(
    thresholds: Sequence[float], correlation_counts: Sequence[int]
) -> float:
    """Pick the threshold at the elbow of the (ε, #correlations) curve.

    The rule follows the paper: order points by decreasing threshold (the
    direction of the sweep in Figure 5), and choose the point whose
    correlation count has the greatest absolute difference from its
    neighbors.  With fewer than three points the largest threshold is
    returned (no structure unless the sweep says otherwise).
    """
    thresholds = list(thresholds)
    counts = list(correlation_counts)
    if len(thresholds) != len(counts):
        raise ConfigurationError(
            f"got {len(thresholds)} thresholds but {len(counts)} correlation counts"
        )
    if not thresholds:
        raise ConfigurationError("cannot select an elbow point from an empty sweep")
    order = np.argsort(thresholds)[::-1]
    ordered_thresholds = [float(thresholds[i]) for i in order]
    ordered_counts = [int(counts[i]) for i in order]
    if len(ordered_thresholds) < 3:
        return ordered_thresholds[0]
    best_index = 1
    best_score = -1.0
    for i in range(1, len(ordered_counts) - 1):
        score = abs(ordered_counts[i] - ordered_counts[i - 1]) + abs(
            ordered_counts[i + 1] - ordered_counts[i]
        )
        if score > best_score:
            best_score = score
            best_index = i
    return ordered_thresholds[best_index]


def select_elbow_point_kneedle(
    thresholds: Sequence[float], correlation_counts: Sequence[int]
) -> float:
    """Kneedle-style elbow detection (Satopää et al.), used as a cross-check.

    Normalizes both axes to [0, 1] and picks the point of maximum vertical
    distance from the chord connecting the endpoints of the curve.
    """
    thresholds_arr = np.asarray(thresholds, dtype=float)
    counts_arr = np.asarray(correlation_counts, dtype=float)
    if thresholds_arr.shape != counts_arr.shape:
        raise ConfigurationError("thresholds and correlation_counts must have the same shape")
    if thresholds_arr.size == 0:
        raise ConfigurationError("cannot select an elbow point from an empty sweep")
    if thresholds_arr.size < 3:
        return float(thresholds_arr.max())
    order = np.argsort(thresholds_arr)[::-1]
    x = thresholds_arr[order]
    y = counts_arr[order]
    x_span = x[0] - x[-1] or 1.0
    y_span = (y.max() - y.min()) or 1.0
    x_norm = (x[0] - x) / x_span
    y_norm = (y - y.min()) / y_span
    chord = x_norm * (y_norm[-1] - y_norm[0]) + y_norm[0]
    distances = np.abs(y_norm - chord)
    return float(x[int(np.argmax(distances))])
