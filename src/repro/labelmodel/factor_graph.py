"""Factor-graph specification for the generative label model.

The paper encodes the generative model ``p_w(Λ, Y)`` with three factor
types per data point ``i`` (Section 2.2):

* labeling propensity   ``φ_Lab_{i,j}(Λ, Y)  = 1{Λ_{i,j} ≠ ∅}``
* accuracy              ``φ_Acc_{i,j}(Λ, Y)  = 1{Λ_{i,j} = y_i}``
* pairwise correlation  ``φ_Corr_{i,j,k}(Λ, Y) = 1{Λ_{i,j} = Λ_{i,k}}`` for (j, k) ∈ C

The concatenated factor vector has dimension ``2 n + |C|`` and the model is
``p_w(Λ, Y) = Z_w^{-1} exp(Σ_i wᵀ φ_i(Λ_i, y_i))``.

All three factor types are *equality indicators*, so the same specification
covers both label vocabularies: the paper's signed binary encoding
(``Λ_{i,j}, y_i ∈ {-1, +1}`` with ``0`` = abstain) and the categorical
encoding of multi-class tasks (``Λ_{i,j}, y_i ∈ {1..k}`` with ``0`` =
abstain).  ``cardinality`` records which vocabulary the graph is defined
over; it changes no factor definition, only the label domain the samplers
and estimators range over and the chance level implied by a zero accuracy
weight (``1/k`` rather than ``1/2``).

:class:`FactorGraphSpec` owns the bookkeeping: which correlation pairs are
modeled, how the weight vector is laid out, and how to evaluate the factor
vector and the row-wise energy for observed or sampled assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import LabelModelError
from repro.types import ABSTAIN


@dataclass(frozen=True)
class WeightLayout:
    """Index ranges of the flat weight vector ``w ∈ R^{2n + |C|}``."""

    num_lfs: int
    num_correlations: int

    @property
    def size(self) -> int:
        """Total number of parameters."""
        return 2 * self.num_lfs + self.num_correlations

    @property
    def propensity_slice(self) -> slice:
        """Slice of the labeling-propensity weights (length ``n``)."""
        return slice(0, self.num_lfs)

    @property
    def accuracy_slice(self) -> slice:
        """Slice of the accuracy weights (length ``n``)."""
        return slice(self.num_lfs, 2 * self.num_lfs)

    @property
    def correlation_slice(self) -> slice:
        """Slice of the correlation weights (length ``|C|``)."""
        return slice(2 * self.num_lfs, 2 * self.num_lfs + self.num_correlations)


class FactorGraphSpec:
    """The factor structure of the generative model for one task.

    Parameters
    ----------
    num_lfs:
        Number of labeling functions ``n``.
    correlations:
        Iterable of ``(j, k)`` labeling-function index pairs to model as
        correlated (the set ``C``).  Pairs are canonicalized to ``j < k`` and
        de-duplicated.
    cardinality:
        Number of classes of the task's label vocabulary: ``2`` for the
        signed binary encoding ``{-1, 0, +1}`` (the default), ``k > 2`` for
        categorical labels ``{0, 1, .., k}`` with ``0`` = abstain.
    """

    def __init__(
        self,
        num_lfs: int,
        correlations: Iterable[tuple[int, int]] = (),
        cardinality: int = 2,
    ) -> None:
        if num_lfs <= 0:
            raise LabelModelError(f"num_lfs must be positive, got {num_lfs}")
        if cardinality < 2:
            raise LabelModelError(f"cardinality must be >= 2, got {cardinality}")
        self.num_lfs = num_lfs
        self.cardinality = cardinality
        canonical: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for j, k in correlations:
            if j == k:
                raise LabelModelError(f"correlation pair ({j}, {k}) is a self-pair")
            if not (0 <= j < num_lfs and 0 <= k < num_lfs):
                raise LabelModelError(
                    f"correlation pair ({j}, {k}) out of range for {num_lfs} labeling functions"
                )
            pair = (min(j, k), max(j, k))
            if pair not in seen:
                seen.add(pair)
                canonical.append(pair)
        self.correlations: list[tuple[int, int]] = canonical
        self.layout = WeightLayout(num_lfs=num_lfs, num_correlations=len(canonical))
        self._neighbor_cache: list[list[tuple[int, int]]] | None = None

    # ------------------------------------------------------------------ weights
    def initial_weights(
        self, accuracy_init: float = 0.7, propensity_init: float = 0.0
    ) -> np.ndarray:
        """A sensible starting weight vector.

        Accuracy weights start at the log-odds implied by ``accuracy_init``
        (the paper's prior that LFs are better than random); propensity and
        correlation weights start at ``propensity_init`` / zero.  For
        ``cardinality > 2`` the accuracy weight is the symmetric
        (Dawid–Skene-style) log-odds against the ``k - 1`` uniform wrong
        classes, ``0.5·log(a·(k-1)/(1-a))`` — a zero weight means chance
        (``a = 1/k``) in both vocabularies.
        """
        weights = np.zeros(self.layout.size)
        weights[self.layout.propensity_slice] = propensity_init
        accuracy_weight = 0.5 * np.log(
            accuracy_init * (self.cardinality - 1) / (1.0 - accuracy_init)
        )
        weights[self.layout.accuracy_slice] = accuracy_weight
        return weights

    def split_weights(self, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split a flat weight vector into (propensity, accuracy, correlation)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.layout.size,):
            raise LabelModelError(
                f"expected weight vector of length {self.layout.size}, got shape {weights.shape}"
            )
        return (
            weights[self.layout.propensity_slice],
            weights[self.layout.accuracy_slice],
            weights[self.layout.correlation_slice],
        )

    # ------------------------------------------------------------------ factors
    def factor_vector(self, lf_row: np.ndarray, y: int) -> np.ndarray:
        """Evaluate ``φ_i(Λ_i, y_i)`` for one data point."""
        lf_row = np.asarray(lf_row)
        phi = np.zeros(self.layout.size)
        phi[self.layout.propensity_slice] = (lf_row != ABSTAIN).astype(float)
        phi[self.layout.accuracy_slice] = (lf_row == y).astype(float)
        for index, (j, k) in enumerate(self.correlations):
            phi[2 * self.num_lfs + index] = float(lf_row[j] == lf_row[k])
        return phi

    def factor_matrix(self, label_matrix: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate factor vectors for every row; returns shape ``(m, 2n+|C|)``."""
        label_matrix = np.asarray(label_matrix)
        y = np.asarray(y)
        m = label_matrix.shape[0]
        phi = np.zeros((m, self.layout.size))
        phi[:, self.layout.propensity_slice] = (label_matrix != ABSTAIN).astype(float)
        phi[:, self.layout.accuracy_slice] = (label_matrix == y[:, None]).astype(float)
        for index, (j, k) in enumerate(self.correlations):
            phi[:, 2 * self.num_lfs + index] = (
                label_matrix[:, j] == label_matrix[:, k]
            ).astype(float)
        return phi

    def energy(self, weights: np.ndarray, label_matrix: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Row-wise unnormalized log-probability ``wᵀ φ_i(Λ_i, y_i)``."""
        return self.factor_matrix(label_matrix, y) @ np.asarray(weights, dtype=float)

    # ----------------------------------------------------------------- topology
    def correlation_index(self, j: int, k: int) -> int:
        """Position of the (j, k) correlation weight within the weight vector."""
        pair = (min(j, k), max(j, k))
        try:
            offset = self.correlations.index(pair)
        except ValueError:
            raise LabelModelError(f"pair {pair} is not modeled as correlated") from None
        return 2 * self.num_lfs + offset

    def neighbors(self, j: int) -> list[tuple[int, int]]:
        """Correlation partners of LF ``j`` as ``(partner_index, weight_index)``.

        The adjacency is built once and cached — the samplers query it per
        column per sweep, and an O(|C|) rescan per call turns quadratic on
        wide suites.
        """
        if self._neighbor_cache is None:
            adjacency: list[list[tuple[int, int]]] = [[] for _ in range(self.num_lfs)]
            for offset, (a, b) in enumerate(self.correlations):
                weight_index = 2 * self.num_lfs + offset
                adjacency[a].append((b, weight_index))
                adjacency[b].append((a, weight_index))
            self._neighbor_cache = adjacency
        return self._neighbor_cache[j]

    def neighbor_sets(self) -> list[set[int]]:
        """Correlation partners of every LF as index sets (no weight indices).

        The adjacency view the sampler-plan graph coloring runs over.
        """
        return [{partner for partner, _ in self.neighbors(j)} for j in range(self.num_lfs)]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"FactorGraphSpec(num_lfs={self.num_lfs}, "
            f"num_correlations={len(self.correlations)}, "
            f"cardinality={self.cardinality})"
        )
